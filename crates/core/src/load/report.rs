//! The service-level report a load run produces.
//!
//! A [`LoadReport`] is the artifact later scalability PRs regress
//! against: `ci/load-gate.sh` serializes it as `BENCH_load.json` and
//! compares runs across thread counts byte for byte. Every field is
//! integer-valued virtual time, so bit-identity is meaningful.

use std::fmt::Write as _;

use simkit::{VirtualNanos, VtHistogram};

/// Latency percentiles plus mass, lifted from a [`VtHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LatencySummary {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub total: VirtualNanos,
    /// Median.
    pub p50: VirtualNanos,
    /// 99th percentile.
    pub p99: VirtualNanos,
    /// 99.9th percentile.
    pub p999: VirtualNanos,
}

impl LatencySummary {
    /// Summarizes `h` (zero everywhere when the histogram is empty).
    #[must_use]
    pub fn of(h: &VtHistogram) -> Self {
        LatencySummary {
            count: h.count(),
            total: h.total(),
            p50: h.quantile(0.50),
            p99: h.quantile(0.99),
            p999: h.quantile(0.999),
        }
    }

    pub(crate) fn json(&self, out: &mut String) {
        let _ = write!(
            out,
            "{{\"count\":{},\"total_ns\":{},\"p50_ns\":{},\"p99_ns\":{},\"p999_ns\":{}}}",
            self.count,
            self.total.as_nanos(),
            self.p50.as_nanos(),
            self.p99.as_nanos(),
            self.p999.as_nanos()
        );
    }
}

/// Per-op-name aggregates across the run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpStats {
    /// The op name (unique per report; sorted lexicographically).
    pub name: String,
    /// Latency of this op's successful executions.
    pub latency: LatencySummary,
    /// Executions that returned an error.
    pub failures: u64,
}

/// What a load run measured. Constructed by
/// [`LoadHarness::run`](crate::load::LoadHarness::run); `PartialEq` plus
/// the canonical [`to_json`](Self::to_json) encoding are the determinism
/// oracle — same seed must mean the same report, bit for bit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LoadReport {
    /// The base seed the run derived everything from.
    pub seed: u64,
    /// Sessions offered by the arrival process.
    pub sessions: u64,
    /// Sessions served to completion.
    pub completed: u64,
    /// Sessions that waited past their patience and left.
    pub giveups: u64,
    /// Sessions whose VM never launched.
    pub launch_failures: u64,
    /// Ops executed by served sessions.
    pub ops_run: u64,
    /// Ops that returned an error.
    pub op_failures: u64,
    /// Commutative fold of all served sessions' workload checksums.
    pub checksum: u64,
    /// Peak sessions simultaneously in the system (virtual time).
    pub peak_concurrent: u64,
    /// Peak admission-queue depth (virtual time).
    pub peak_queue_depth: u64,
    /// Virtual time of the last arrival.
    pub horizon: VirtualNanos,
    /// Virtual time of the last departure.
    pub makespan: VirtualNanos,
    /// Offered load: milli-sessions per virtual second
    /// (`sessions * 1e12 / horizon_ns`, integer math).
    pub offered_mps: u64,
    /// Sustained throughput: milli-sessions per virtual second over the
    /// makespan.
    pub sustained_mps: u64,
    /// Whole-session sojourn latency (arrival to departure).
    pub session_latency: LatencySummary,
    /// All-op service latency.
    pub op_latency: LatencySummary,
    /// Per-op-name breakdown, sorted by name.
    pub per_op: Vec<OpStats>,
}

impl LoadReport {
    /// Canonical JSON encoding: fixed key order, integer-only values, no
    /// whitespace — two equal reports serialize to identical bytes.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(512);
        let _ = write!(
            out,
            "{{\"seed\":{},\"sessions\":{},\"completed\":{},\"giveups\":{},\
             \"launch_failures\":{},\"ops_run\":{},\"op_failures\":{},\"checksum\":{},\
             \"peak_concurrent\":{},\"peak_queue_depth\":{},\"horizon_ns\":{},\
             \"makespan_ns\":{},\"offered_mps\":{},\"sustained_mps\":{}",
            self.seed,
            self.sessions,
            self.completed,
            self.giveups,
            self.launch_failures,
            self.ops_run,
            self.op_failures,
            self.checksum,
            self.peak_concurrent,
            self.peak_queue_depth,
            self.horizon.as_nanos(),
            self.makespan.as_nanos(),
            self.offered_mps,
            self.sustained_mps
        );
        out.push_str(",\"session_latency\":");
        self.session_latency.json(&mut out);
        out.push_str(",\"op_latency\":");
        self.op_latency.json(&mut out);
        out.push_str(",\"per_op\":[");
        for (i, op) in self.per_op.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{{\"name\":{:?},\"failures\":{},\"latency\":", op.name, op.failures);
            op.latency.json(&mut out);
            out.push('}');
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> LoadReport {
        let h = VtHistogram::new();
        h.record(VirtualNanos::from_nanos(100));
        h.record(VirtualNanos::from_nanos(200));
        LoadReport {
            seed: 42,
            sessions: 2,
            completed: 2,
            giveups: 0,
            launch_failures: 0,
            ops_run: 4,
            op_failures: 0,
            checksum: 7,
            peak_concurrent: 2,
            peak_queue_depth: 1,
            horizon: VirtualNanos::from_nanos(300),
            makespan: VirtualNanos::from_nanos(500),
            offered_mps: 1,
            sustained_mps: 1,
            session_latency: LatencySummary::of(&h),
            op_latency: LatencySummary::of(&h),
            per_op: vec![OpStats {
                name: "va".into(),
                latency: LatencySummary::of(&h),
                failures: 0,
            }],
        }
    }

    #[test]
    fn json_is_stable_and_self_equal() {
        let a = sample();
        let b = sample();
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        let j = a.to_json();
        assert!(j.starts_with("{\"seed\":42,"), "{j}");
        assert!(j.contains("\"per_op\":[{\"name\":\"va\""), "{j}");
        assert!(j.ends_with("}]}"), "{j}");
    }

    #[test]
    fn json_reflects_field_changes() {
        let a = sample();
        let mut b = sample();
        b.checksum = 8;
        assert_ne!(a, b);
        assert_ne!(a.to_json(), b.to_json());
    }
}
