//! Tenant profiles and op mixes for the load harness.
//!
//! The harness itself is workload-agnostic: a [`TenantOp`] is a named
//! closure run against a launched [`VpimVm`] with a per-op seed, returning
//! an [`OpOutcome`] (its virtual-time cost plus a checksum folded into the
//! report). Concrete mixes — the PrIM apps, the UPIS index search — are
//! assembled by higher layers (`vpim_system::loadmix`), which keeps the
//! dependency graph acyclic (those crates already depend on `vpim`).

use std::fmt;
use std::sync::Arc;

use simkit::{SimRng, VirtualNanos};

use crate::error::VpimError;
use crate::system::{TenantSpec, VpimVm};

/// One scripted operation of a tenant session. Receives the session's VM
/// and a per-op seed; must derive all randomness from that seed so the
/// outcome is a pure function of `(op, seed)` regardless of when or on
/// which thread the op runs.
pub type OpFn = Arc<dyn Fn(&VpimVm, u64) -> Result<OpOutcome, VpimError> + Send + Sync>;

/// What one [`TenantOp`] produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpOutcome {
    /// The op's virtual-time cost (service time it contributes to the
    /// session).
    pub cost: VirtualNanos,
    /// A workload-defined checksum; the report folds all checksums with a
    /// commutative sum so any divergence anywhere shows up.
    pub checksum: u64,
}

impl OpOutcome {
    /// An outcome costing `cost` with checksum `checksum`.
    #[must_use]
    pub fn new(cost: VirtualNanos, checksum: u64) -> Self {
        OpOutcome { cost, checksum }
    }
}

/// A named op in a tenant's script.
#[derive(Clone)]
pub struct TenantOp {
    name: String,
    run: OpFn,
}

impl TenantOp {
    /// An op called `name` running `f`.
    #[must_use]
    pub fn new(name: impl Into<String>, f: OpFn) -> Self {
        TenantOp { name: name.into(), run: f }
    }

    /// The op's name (the per-op latency key in the report).
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs the op.
    ///
    /// # Errors
    ///
    /// Whatever the workload surfaces.
    pub fn run(&self, vm: &VpimVm, seed: u64) -> Result<OpOutcome, VpimError> {
        (self.run)(vm, seed)
    }
}

impl fmt::Debug for TenantOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("TenantOp").field("name", &self.name).finish_non_exhaustive()
    }
}

/// One kind of tenant: a [`TenantSpec`] template, the scripted op list a
/// session of this kind executes in order, a closed-loop think-time mean
/// between ops, and a weight within the [`TenantMix`].
#[derive(Debug, Clone)]
pub struct TenantProfile {
    name: String,
    template: TenantSpec,
    ops: Vec<TenantOp>,
    think_mean_ns: u64,
    weight: u64,
}

impl TenantProfile {
    /// A profile called `name` whose sessions launch from `template`
    /// (weight 1, no think time, empty script).
    #[must_use]
    pub fn new(name: impl Into<String>, template: TenantSpec) -> Self {
        TenantProfile {
            name: name.into(),
            template,
            ops: Vec::new(),
            think_mean_ns: 0,
            weight: 1,
        }
    }

    /// Appends an op to the script.
    #[must_use]
    pub fn op(mut self, op: TenantOp) -> Self {
        self.ops.push(op);
        self
    }

    /// Mean closed-loop think time between ops (virtual nanoseconds,
    /// exponentially distributed; 0 disables thinking).
    #[must_use]
    pub fn think_mean_ns(mut self, mean: u64) -> Self {
        self.think_mean_ns = mean;
        self
    }

    /// This profile's weight in the mix (clamped to at least 1).
    #[must_use]
    pub fn weight(mut self, w: u64) -> Self {
        self.weight = w.max(1);
        self
    }

    /// The profile name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The launch template.
    #[must_use]
    pub fn template(&self) -> &TenantSpec {
        &self.template
    }

    /// The scripted ops.
    #[must_use]
    pub fn ops(&self) -> &[TenantOp] {
        &self.ops
    }

    /// The think-time mean.
    #[must_use]
    pub fn think_mean(&self) -> u64 {
        self.think_mean_ns
    }
}

/// A weighted set of [`TenantProfile`]s. Each session draws its profile
/// from this mix with a pure per-session RNG stream.
#[derive(Debug, Clone, Default)]
pub struct TenantMix {
    profiles: Vec<TenantProfile>,
}

impl TenantMix {
    /// An empty mix.
    #[must_use]
    pub fn new() -> Self {
        TenantMix::default()
    }

    /// Adds a profile.
    #[must_use]
    pub fn profile(mut self, p: TenantProfile) -> Self {
        self.profiles.push(p);
        self
    }

    /// The profiles, in insertion order.
    #[must_use]
    pub fn profiles(&self) -> &[TenantProfile] {
        &self.profiles
    }

    /// Weighted draw of a profile index.
    ///
    /// # Panics
    ///
    /// Panics if the mix is empty.
    #[must_use]
    pub fn pick(&self, rng: &mut SimRng) -> usize {
        assert!(!self.profiles.is_empty(), "TenantMix must hold at least one profile");
        let total: u64 = self.profiles.iter().map(|p| p.weight).sum();
        let mut ticket = rng.u64_below(total);
        for (i, p) in self.profiles.iter().enumerate() {
            if ticket < p.weight {
                return i;
            }
            ticket -= p.weight;
        }
        self.profiles.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noop(name: &str) -> TenantOp {
        TenantOp::new(name, Arc::new(|_vm, seed| Ok(OpOutcome::new(VirtualNanos::ZERO, seed))))
    }

    #[test]
    fn weighted_pick_respects_weights() {
        let mix = TenantMix::new()
            .profile(TenantProfile::new("heavy", TenantSpec::new("h")).weight(9))
            .profile(TenantProfile::new("light", TenantSpec::new("l")).weight(1));
        let mut rng = SimRng::seeded(3);
        let mut counts = [0usize; 2];
        for _ in 0..2000 {
            counts[mix.pick(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[1] * 5, "{counts:?}");
        assert!(counts[1] > 0, "{counts:?}");
    }

    #[test]
    fn profile_builder_round_trips() {
        let p = TenantProfile::new("p", TenantSpec::new("t").devices(2).mem_mib(16))
            .op(noop("a"))
            .op(noop("b"))
            .think_mean_ns(500)
            .weight(0);
        assert_eq!(p.name(), "p");
        assert_eq!(p.ops().len(), 2);
        assert_eq!(p.ops()[0].name(), "a");
        assert_eq!(p.think_mean(), 500);
        assert_eq!(p.template().n_devices(), 2);
        assert_eq!(p.template().guest_mem_mib(), 16);
    }
}
