//! A seeded open/closed-loop traffic harness (ROADMAP item 3).
//!
//! Nothing in the reproduction measured vPIM as a *service*: every test
//! drives a handful of VMs to completion and exits. This module generates
//! production-shaped traffic — open-loop arrivals ([`Arrival`]: Poisson,
//! bursty ON-OFF, uniform) feeding closed-loop think-time sessions
//! ([`TenantProfile`]) — and reports service-level metrics
//! ([`LoadReport`]: offered vs. sustained throughput, p50/p99/p999
//! latency, admission-queue depth, giveups).
//!
//! # Two phases, one invariant
//!
//! A run has two phases. **Phase A** really executes every session body
//! through [`VpimSystem::launch`]: boot a tenant microVM, run the
//! scripted ops against its frontends, release the ranks. Each op's cost
//! is *virtual time* derived from the work description, and each
//! session's randomness comes from a pure per-index RNG stream
//! ([`simkit::SimRng::stream`]), so the measurements do not depend on
//! execution order — phase A may run sequentially or fan out on a
//! [`simkit::WorkerPool`]. **Phase B** replays the measured service times
//! through a c-server FCFS queue fed by the arrival trace, in pure
//! integer math.
//!
//! The determinism invariant follows: **same seed ⇒ bit-identical
//! [`LoadReport`]** across [`Execution::Sequential`] vs.
//! [`Execution::Pooled`] phase-A execution, across host dispatch modes,
//! and across `RUST_TEST_THREADS` settings. `ci/load-gate.sh` enforces
//! exactly that, and "thousands of concurrent sessions" is measured where
//! it is meaningful — in virtual time, as overlapping
//! arrival-to-departure intervals — while wall-clock execution stays
//! bounded by the worker pool.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use vpim::prelude::*;
//! use vpim::load::{TenantOp, OpOutcome};
//!
//! let machine = PimMachine::new(PimConfig::small());
//! let sys = Arc::new(VpimSystem::start(
//!     Arc::new(UpmemDriver::new(machine)),
//!     VpimConfig::full(),
//!     StartOpts::default(),
//! ));
//! let mix = TenantMix::new().profile(
//!     TenantProfile::new("ping", TenantSpec::new("ping").mem_mib(16)).op(TenantOp::new(
//!         "write",
//!         Arc::new(|vm, _seed| {
//!             let r = vm.frontend(0).write_rank(&[(0, 0, &[7u8; 512])])?;
//!             Ok(OpOutcome::new(r.duration(), 7))
//!         }),
//!     )),
//! );
//! let spec = LoadSpec::new(42, 8).arrival(Arrival::Poisson { mean_gap_ns: 1_000 });
//! let report = LoadHarness::run(&sys, &spec, &mix);
//! assert_eq!(report.completed, 8);
//! ```

mod arrival;
mod report;
pub(crate) mod session;
mod tenant;

pub use arrival::Arrival;
pub use report::{LatencySummary, LoadReport, OpStats};
pub use tenant::{OpFn, OpOutcome, TenantMix, TenantOp, TenantProfile};

use std::collections::BTreeMap;
use std::sync::Arc;

use simkit::{VirtualNanos, VtHistogram, WorkerPool};

use crate::system::VpimSystem;
use session::{run_session, simulate_queue, Admission, FAILED_OP};

/// How phase A executes the session bodies. Both modes must produce the
/// same [`LoadReport`]; `Pooled` is simply faster on the wall clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Execution {
    /// One session body at a time, in index order.
    Sequential,
    /// Fan out on a [`WorkerPool`]; at most `workers` VMs are alive at
    /// once, so guest memory stays bounded.
    #[default]
    Pooled,
}

/// What to run: the seed, the offered traffic, and the virtual service
/// capacity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LoadSpec {
    seed: u64,
    sessions: usize,
    arrival: Arrival,
    servers: usize,
    workers: usize,
    exec: Execution,
    patience: Option<VirtualNanos>,
}

impl LoadSpec {
    /// `sessions` sessions from base seed `seed`, with uniform 1 µs
    /// arrivals, auto-sized servers and workers, pooled execution, and
    /// infinite patience.
    #[must_use]
    pub fn new(seed: u64, sessions: usize) -> Self {
        LoadSpec {
            seed,
            sessions,
            arrival: Arrival::Uniform { gap_ns: 1_000 },
            servers: 0,
            workers: 0,
            exec: Execution::default(),
            patience: None,
        }
    }

    /// The open-loop arrival process.
    #[must_use]
    pub fn arrival(mut self, a: Arrival) -> Self {
        self.arrival = a;
        self
    }

    /// Virtual servers in the phase-B queue (0 = the host's physical rank
    /// count).
    #[must_use]
    pub fn servers(mut self, n: usize) -> Self {
        self.servers = n;
        self
    }

    /// Worker threads for pooled phase-A execution (0 = `min(servers,
    /// 8)`); also the cap on simultaneously live VMs.
    #[must_use]
    pub fn workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// The phase-A execution mode.
    #[must_use]
    pub fn execution(mut self, e: Execution) -> Self {
        self.exec = e;
        self
    }

    /// Maximum virtual wait before a queued session gives up.
    #[must_use]
    pub fn patience(mut self, p: VirtualNanos) -> Self {
        self.patience = Some(p);
        self
    }

    /// The base seed.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// The session count.
    #[must_use]
    pub fn n_sessions(&self) -> usize {
        self.sessions
    }

    /// The configured arrival process.
    #[must_use]
    pub fn arrival_process(&self) -> Arrival {
        self.arrival
    }

    /// The configured phase-B server count (0 = host rank count).
    #[must_use]
    pub fn server_count(&self) -> usize {
        self.servers
    }

    /// The configured worker-thread count (0 = auto).
    #[must_use]
    pub fn worker_threads(&self) -> usize {
        self.workers
    }

    /// The phase-A execution mode.
    #[must_use]
    pub fn execution_mode(&self) -> Execution {
        self.exec
    }

    /// The configured patience bound, if any.
    #[must_use]
    pub fn patience_limit(&self) -> Option<VirtualNanos> {
        self.patience
    }
}

/// The harness: runs a [`LoadSpec`] × [`TenantMix`] against one host and
/// reports.
#[derive(Debug)]
pub struct LoadHarness;

impl LoadHarness {
    /// Runs the load and assembles the report. Workload failures are
    /// counted, never propagated — the report is total so CI can compare
    /// it byte for byte.
    ///
    /// Also records into the host registry: `load.op.latency` and
    /// `load.session.latency` histograms, plus `load.sessions.{offered,
    /// completed,giveups,launch_failures}` and `load.ops.{run,failed}`
    /// counters (cumulative across runs on the same host).
    #[must_use]
    pub fn run(sys: &Arc<VpimSystem>, spec: &LoadSpec, mix: &TenantMix) -> LoadReport {
        let n = spec.sessions;
        let servers = if spec.servers == 0 { sys.driver().rank_count() } else { spec.servers };
        let servers = servers.max(1);
        let workers = if spec.workers == 0 { servers.min(8) } else { spec.workers }.max(1);

        // Offered trace (pure in the seed).
        let arrivals: Vec<u64> =
            spec.arrival.times(spec.seed, n).iter().map(|t| t.as_nanos()).collect();

        // Phase A: execute every session body, order-free.
        let runs = match spec.exec {
            Execution::Sequential => {
                (0..n).map(|i| run_session(sys, mix, spec.seed, i)).collect::<Vec<_>>()
            }
            Execution::Pooled => {
                let pool = WorkerPool::new(workers);
                let mix = Arc::new(mix.clone());
                let jobs = (0..n)
                    .map(|i| {
                        let sys = sys.clone();
                        let mix = mix.clone();
                        let seed = spec.seed;
                        move || run_session(&sys, &mix, seed, i)
                    })
                    .collect::<Vec<_>>();
                pool.run_all(jobs)
            }
        };

        // Phase B: the virtual-time queue.
        let q = simulate_queue(
            &arrivals,
            &runs,
            servers,
            spec.patience.map(|p| p.as_nanos()),
        );

        // Aggregate. Only *served* sessions contribute latency samples and
        // checksums; giveups and launch failures are counted apart.
        let session_hist = VtHistogram::new();
        let op_hist = VtHistogram::new();
        let mut per_op: BTreeMap<&str, (VtHistogram, u64)> = BTreeMap::new();
        let mut completed = 0u64;
        let mut launch_failures = 0u64;
        let mut ops_run = 0u64;
        let mut op_failures = 0u64;
        let mut checksum = 0u64;
        for (i, run) in runs.iter().enumerate() {
            match q.admissions[i] {
                Admission::Failed => launch_failures += 1,
                Admission::GaveUp(_) => {}
                Admission::Served(_, depart) => {
                    completed += 1;
                    checksum = checksum.wrapping_add(run.checksum);
                    session_hist.record(VirtualNanos::from_nanos(depart - arrivals[i]));
                    let profile = &mix.profiles()[run.profile];
                    for (j, &cost) in run.op_costs.iter().enumerate() {
                        ops_run += 1;
                        let name = profile.ops()[j].name();
                        let entry =
                            per_op.entry(name).or_insert_with(|| (VtHistogram::new(), 0));
                        if cost == FAILED_OP {
                            op_failures += 1;
                            entry.1 += 1;
                        } else {
                            let d = VirtualNanos::from_nanos(cost);
                            op_hist.record(d);
                            entry.0.record(d);
                        }
                    }
                }
            }
        }

        let horizon = arrivals.last().copied().unwrap_or(0);
        let report = LoadReport {
            seed: spec.seed,
            sessions: n as u64,
            completed,
            giveups: q.giveups,
            launch_failures,
            ops_run,
            op_failures,
            checksum,
            peak_concurrent: q.peak_in_system,
            peak_queue_depth: q.peak_queue_depth,
            horizon: VirtualNanos::from_nanos(horizon),
            makespan: VirtualNanos::from_nanos(q.makespan_ns),
            offered_mps: rate_milli_per_sec(n as u64, horizon),
            sustained_mps: rate_milli_per_sec(completed, q.makespan_ns),
            session_latency: LatencySummary::of(&session_hist),
            op_latency: LatencySummary::of(&op_hist),
            per_op: per_op
                .into_iter()
                .map(|(name, (hist, failures))| OpStats {
                    name: name.to_string(),
                    latency: LatencySummary::of(&hist),
                    failures,
                })
                .collect(),
        };

        // Host-registry mirror (cumulative, observability only — the
        // report above is the determinism oracle).
        let reg = sys.registry();
        reg.histogram("load.session.latency").merge_from(&session_hist);
        reg.histogram("load.op.latency").merge_from(&op_hist);
        reg.counter("load.sessions.offered").add(report.sessions);
        reg.counter("load.sessions.completed").add(report.completed);
        reg.counter("load.sessions.giveups").add(report.giveups);
        reg.counter("load.sessions.launch_failures").add(report.launch_failures);
        reg.counter("load.ops.run").add(report.ops_run);
        reg.counter("load.ops.failed").add(report.op_failures);
        report
    }
}

/// `count` events over `span_ns` nanoseconds, in milli-events per virtual
/// second — integer math so reports compare bit for bit.
pub(crate) fn rate_milli_per_sec(count: u64, span_ns: u64) -> u64 {
    if span_ns == 0 {
        return 0;
    }
    ((u128::from(count) * 1_000_000_000_000u128) / u128::from(span_ns)) as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::VpimConfig;
    use crate::system::{StartOpts, TenantSpec};
    use upmem_driver::UpmemDriver;
    use upmem_sim::{PimConfig, PimMachine};

    fn host() -> Arc<VpimSystem> {
        let machine = PimMachine::new(PimConfig::small());
        Arc::new(VpimSystem::start(
            Arc::new(UpmemDriver::new(machine)),
            VpimConfig::full(),
            StartOpts::default(),
        ))
    }

    fn ping_mix() -> TenantMix {
        TenantMix::new().profile(
            TenantProfile::new("ping", TenantSpec::new("ping").mem_mib(16))
                .op(TenantOp::new(
                    "write",
                    Arc::new(|vm, seed| {
                        let data = vec![(seed & 0xff) as u8; 512];
                        let r = vm.frontend(0).write_rank(&[(0, 0, &data)])?;
                        Ok(OpOutcome::new(r.duration(), seed))
                    }),
                ))
                .think_mean_ns(500),
        )
    }

    #[test]
    fn sequential_and_pooled_agree() {
        let spec = LoadSpec::new(7, 12).arrival(Arrival::Poisson { mean_gap_ns: 2_000 });
        let a = LoadHarness::run(&host(), &spec.execution(Execution::Sequential), &ping_mix());
        let b = LoadHarness::run(&host(), &spec.execution(Execution::Pooled), &ping_mix());
        assert_eq!(a, b);
        assert_eq!(a.to_json(), b.to_json());
        assert_eq!(a.completed, 12);
        assert_eq!(a.ops_run, 12);
        assert!(a.session_latency.p99 >= a.session_latency.p50);
    }

    #[test]
    fn rates_are_integer_and_guarded() {
        assert_eq!(rate_milli_per_sec(10, 0), 0);
        // 10 events in 1 s = 10_000 milli-events/s.
        assert_eq!(rate_milli_per_sec(10, 1_000_000_000), 10_000);
    }
}
