//! The virtio-PIM specification (Appendix A.1 of the paper).
//!
//! * **Device ID**: 42.
//! * **Virtqueues**: `transferq` (512 slots — data and commands to/from the
//!   PIM device, carrying GPAs so data moves without copies) and `controlq`
//!   (manager synchronization; a boolean suffices).
//! * **Feature bits**: none.
//! * **Device configuration layout**: clock division, memory region size,
//!   number of control interfaces, processing-unit frequency, power
//!   management information.
//! * **Device operations**: requesting configuration, sending commands,
//!   reading commands, writing to the PIM device, reading from the PIM
//!   device.
//!
//! This module defines the wire encoding of requests and responses carried
//! by `transferq`. Encodings are explicit little-endian byte layouts (what
//! would cross a guest/host boundary), with exhaustive round-trip tests.

use pim_virtio::mmio::VIRTIO_ID_PIM;

use crate::error::VpimError;

/// Queue index of `transferq`.
pub const TRANSFERQ: u32 = 0;
/// Queue index of `controlq`.
pub const CONTROLQ: u32 = 1;
/// `transferq` size (Appendix A.1: "This queue has 512 slots").
pub const TRANSFERQ_SIZE: u16 = 512;
/// `controlq` size.
pub const CONTROLQ_SIZE: u16 = 16;
/// The virtio device id for PIM devices.
pub const DEVICE_ID: u32 = VIRTIO_ID_PIM;

/// The device configuration space layout (read by the frontend during
/// initialization and re-exposed verbatim to guest userspace so the SDK
/// sees the same parameters as on the host — §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PimDeviceConfig {
    /// DPU clock division setting.
    pub clock_division: u32,
    /// MRAM bytes per DPU.
    pub mram_size: u64,
    /// Number of control interfaces (chips) in the rank.
    pub nr_cis: u32,
    /// Number of functional DPUs in the rank.
    pub nr_dpus: u32,
    /// DPU frequency in MHz.
    pub freq_mhz: u32,
    /// Power-management capability word.
    pub power_mgmt: u32,
}

impl PimDeviceConfig {
    /// Size of the encoded config space.
    pub const ENCODED_LEN: usize = 32;

    /// Encodes into the MMIO config space format.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::ENCODED_LEN);
        out.extend_from_slice(&self.clock_division.to_le_bytes());
        out.extend_from_slice(&self.mram_size.to_le_bytes());
        out.extend_from_slice(&self.nr_cis.to_le_bytes());
        out.extend_from_slice(&self.nr_dpus.to_le_bytes());
        out.extend_from_slice(&self.freq_mhz.to_le_bytes());
        out.extend_from_slice(&self.power_mgmt.to_le_bytes());
        out
    }

    /// Decodes from the MMIO config space format.
    ///
    /// # Errors
    ///
    /// [`VpimError::BadRequest`] if the buffer is too short.
    pub fn decode(bytes: &[u8]) -> Result<Self, VpimError> {
        if bytes.len() < Self::ENCODED_LEN {
            return Err(VpimError::BadRequest(format!(
                "config space too short: {} bytes",
                bytes.len()
            )));
        }
        Ok(PimDeviceConfig {
            clock_division: u32::from_le_bytes(bytes[0..4].try_into().expect("len checked")),
            mram_size: u64::from_le_bytes(bytes[4..12].try_into().expect("len checked")),
            nr_cis: u32::from_le_bytes(bytes[12..16].try_into().expect("len checked")),
            nr_dpus: u32::from_le_bytes(bytes[16..20].try_into().expect("len checked")),
            freq_mhz: u32::from_le_bytes(bytes[20..24].try_into().expect("len checked")),
            power_mgmt: u32::from_le_bytes(bytes[24..28].try_into().expect("len checked")),
        })
    }
}

/// A request sent from the frontend to the backend over `transferq`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Fetch the device configuration.
    Configure,
    /// `write-to-rank`: a serialized transfer matrix for `nr_dpus` DPUs
    /// follows in the descriptor chain.
    WriteRank {
        /// DPUs covered by the matrix.
        nr_dpus: u32,
    },
    /// `read-from-rank`: like `WriteRank` but the data pages are
    /// device-writable.
    ReadRank {
        /// DPUs covered by the matrix.
        nr_dpus: u32,
    },
    /// Load a program image by name onto the given DPUs (CI operation).
    LoadProgram {
        /// Registry name of the program.
        name: String,
        /// Target DPUs (empty = all).
        dpus: Vec<u32>,
    },
    /// Boot the loaded program (CI operation).
    Launch {
        /// Target DPUs (empty = all).
        dpus: Vec<u32>,
        /// Tasklets per DPU.
        nr_tasklets: u32,
    },
    /// Poll one DPU's status (CI operation).
    PollStatus {
        /// Target DPU.
        dpu: u32,
    },
    /// Write a host symbol on one DPU; the payload follows in the chain.
    WriteSymbol {
        /// Target DPU.
        dpu: u32,
        /// Symbol name.
        name: String,
        /// Payload length in bytes.
        len: u32,
    },
    /// Read a host symbol from one DPU into a device-writable buffer.
    ReadSymbol {
        /// Target DPU.
        dpu: u32,
        /// Symbol name.
        name: String,
        /// Expected length in bytes.
        len: u32,
    },
    /// Write one `u32` host symbol on many DPUs in a single request — the
    /// SDK's per-DPU argument push (`dpu_push_xfer` on a symbol), which
    /// costs one guest↔VMM transition for the whole rank.
    ScatterSymbol {
        /// Symbol name.
        name: String,
        /// `(dpu, value)` pairs.
        entries: Vec<(u32, u32)>,
    },
    /// Detach from the physical rank (device→manager release path).
    ReleaseRank,
}

const OP_CONFIGURE: u32 = 0;
const OP_WRITE_RANK: u32 = 1;
const OP_READ_RANK: u32 = 2;
const OP_LOAD: u32 = 3;
const OP_LAUNCH: u32 = 4;
const OP_POLL: u32 = 5;
const OP_WRITE_SYM: u32 = 6;
const OP_READ_SYM: u32 = 7;
const OP_RELEASE: u32 = 8;
const OP_SCATTER_SYM: u32 = 9;

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u16).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn get_str(bytes: &[u8], pos: &mut usize) -> Result<String, VpimError> {
    let raw_len: [u8; 2] = bytes
        .get(*pos..*pos + 2)
        .and_then(|b| b.try_into().ok())
        .ok_or_else(|| VpimError::BadRequest("truncated string length".into()))?;
    let len = usize::from(u16::from_le_bytes(raw_len));
    *pos += 2;
    let raw = bytes
        .get(*pos..*pos + len)
        .ok_or_else(|| VpimError::BadRequest("truncated string body".into()))?;
    *pos += len;
    String::from_utf8(raw.to_vec())
        .map_err(|_| VpimError::BadRequest("string is not utf-8".into()))
}

fn put_u32s(out: &mut Vec<u8>, vs: &[u32]) {
    out.extend_from_slice(&(vs.len() as u32).to_le_bytes());
    for v in vs {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

fn get_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, VpimError> {
    let raw = bytes
        .get(*pos..*pos + 4)
        .ok_or_else(|| VpimError::BadRequest("truncated u32".into()))?;
    *pos += 4;
    Ok(u32::from_le_bytes(raw.try_into().expect("4 bytes")))
}

fn get_u32s(bytes: &[u8], pos: &mut usize) -> Result<Vec<u32>, VpimError> {
    let n = get_u32(bytes, pos)? as usize;
    if n > 64 {
        return Err(VpimError::ProtocolViolation(format!("{n} dpus in one request")));
    }
    (0..n).map(|_| get_u32(bytes, pos)).collect()
}

impl Request {
    /// Encodes the request into its `transferq` wire form.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(32);
        match self {
            Request::Configure => out.extend_from_slice(&OP_CONFIGURE.to_le_bytes()),
            Request::WriteRank { nr_dpus } => {
                out.extend_from_slice(&OP_WRITE_RANK.to_le_bytes());
                out.extend_from_slice(&nr_dpus.to_le_bytes());
            }
            Request::ReadRank { nr_dpus } => {
                out.extend_from_slice(&OP_READ_RANK.to_le_bytes());
                out.extend_from_slice(&nr_dpus.to_le_bytes());
            }
            Request::LoadProgram { name, dpus } => {
                out.extend_from_slice(&OP_LOAD.to_le_bytes());
                put_str(&mut out, name);
                put_u32s(&mut out, dpus);
            }
            Request::Launch { dpus, nr_tasklets } => {
                out.extend_from_slice(&OP_LAUNCH.to_le_bytes());
                out.extend_from_slice(&nr_tasklets.to_le_bytes());
                put_u32s(&mut out, dpus);
            }
            Request::PollStatus { dpu } => {
                out.extend_from_slice(&OP_POLL.to_le_bytes());
                out.extend_from_slice(&dpu.to_le_bytes());
            }
            Request::WriteSymbol { dpu, name, len } => {
                out.extend_from_slice(&OP_WRITE_SYM.to_le_bytes());
                out.extend_from_slice(&dpu.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
                put_str(&mut out, name);
            }
            Request::ReadSymbol { dpu, name, len } => {
                out.extend_from_slice(&OP_READ_SYM.to_le_bytes());
                out.extend_from_slice(&dpu.to_le_bytes());
                out.extend_from_slice(&len.to_le_bytes());
                put_str(&mut out, name);
            }
            Request::ScatterSymbol { name, entries } => {
                out.extend_from_slice(&OP_SCATTER_SYM.to_le_bytes());
                put_str(&mut out, name);
                out.extend_from_slice(&(entries.len() as u32).to_le_bytes());
                for (d, v) in entries {
                    out.extend_from_slice(&d.to_le_bytes());
                    out.extend_from_slice(&v.to_le_bytes());
                }
            }
            Request::ReleaseRank => out.extend_from_slice(&OP_RELEASE.to_le_bytes()),
        }
        out
    }

    /// Decodes a request from its wire form.
    ///
    /// # Errors
    ///
    /// [`VpimError::BadRequest`] on truncation or an unknown opcode;
    /// [`VpimError::ProtocolViolation`] on out-of-range counts.
    pub fn decode(bytes: &[u8]) -> Result<Self, VpimError> {
        let mut pos = 0usize;
        let op = get_u32(bytes, &mut pos)?;
        Ok(match op {
            OP_CONFIGURE => Request::Configure,
            OP_WRITE_RANK => Request::WriteRank { nr_dpus: get_u32(bytes, &mut pos)? },
            OP_READ_RANK => Request::ReadRank { nr_dpus: get_u32(bytes, &mut pos)? },
            OP_LOAD => {
                let name = get_str(bytes, &mut pos)?;
                let dpus = get_u32s(bytes, &mut pos)?;
                Request::LoadProgram { name, dpus }
            }
            OP_LAUNCH => {
                let nr_tasklets = get_u32(bytes, &mut pos)?;
                let dpus = get_u32s(bytes, &mut pos)?;
                Request::Launch { dpus, nr_tasklets }
            }
            OP_POLL => Request::PollStatus { dpu: get_u32(bytes, &mut pos)? },
            OP_WRITE_SYM => {
                let dpu = get_u32(bytes, &mut pos)?;
                let len = get_u32(bytes, &mut pos)?;
                let name = get_str(bytes, &mut pos)?;
                Request::WriteSymbol { dpu, name, len }
            }
            OP_READ_SYM => {
                let dpu = get_u32(bytes, &mut pos)?;
                let len = get_u32(bytes, &mut pos)?;
                let name = get_str(bytes, &mut pos)?;
                Request::ReadSymbol { dpu, name, len }
            }
            OP_SCATTER_SYM => {
                let name = get_str(bytes, &mut pos)?;
                let n = get_u32(bytes, &mut pos)? as usize;
                if n > 64 {
                    return Err(VpimError::ProtocolViolation(format!(
                        "{n} scatter entries in one request"
                    )));
                }
                let mut entries = Vec::with_capacity(n);
                for _ in 0..n {
                    let d = get_u32(bytes, &mut pos)?;
                    let v = get_u32(bytes, &mut pos)?;
                    entries.push((d, v));
                }
                Request::ScatterSymbol { name, entries }
            }
            OP_RELEASE => Request::ReleaseRank,
            other => return Err(VpimError::BadRequest(format!("unknown opcode {other}"))),
        })
    }
}

/// The backend's response, written into the chain's device-writable status
/// buffer. Carries the device-side virtual-time accounting the frontend
/// folds into its operation report.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Response {
    /// 0 on success; a nonzero code plus `error` text otherwise.
    pub status: u32,
    /// [`simkit::ErrorKind`] wire code ([`simkit::ErrorKind::code`]) of the
    /// failure, or 0 on success. Lets the guest recover the error class
    /// even when the status collapses many causes (e.g. `STATUS_HW`).
    pub kind: u32,
    /// Human-readable error (empty on success).
    pub error: String,
    /// Backend deserialization time, ns.
    pub deser_ns: u64,
    /// GPA→HVA translation time, ns.
    pub translate_ns: u64,
    /// Rank data transfer time (incl. interleaving), ns.
    pub transfer_ns: u64,
    /// The DDR-bus portion of `transfer_ns` (contends across ranks), ns.
    pub ddr_ns: u64,
    /// For launches: the slowest DPU's cycle count.
    pub launch_cycles: u64,
    /// Inline payload (config data, symbol reads, poll status).
    pub payload: Vec<u8>,
}

impl Response {
    /// Size of the fixed part of the encoding.
    pub const FIXED_LEN: usize = 4 + 4 + 2 + 8 * 5 + 4;

    /// An error response.
    #[must_use]
    pub fn err(code: u32, kind: simkit::ErrorKind, message: impl Into<String>) -> Self {
        Response {
            status: code,
            kind: kind.code(),
            error: message.into(),
            ..Response::default()
        }
    }

    /// Encodes into the status buffer format.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(Self::FIXED_LEN + self.payload.len());
        out.extend_from_slice(&self.status.to_le_bytes());
        out.extend_from_slice(&self.kind.to_le_bytes());
        put_str(&mut out, &self.error);
        out.extend_from_slice(&self.deser_ns.to_le_bytes());
        out.extend_from_slice(&self.translate_ns.to_le_bytes());
        out.extend_from_slice(&self.transfer_ns.to_le_bytes());
        out.extend_from_slice(&self.ddr_ns.to_le_bytes());
        out.extend_from_slice(&self.launch_cycles.to_le_bytes());
        out.extend_from_slice(&(self.payload.len() as u32).to_le_bytes());
        out.extend_from_slice(&self.payload);
        out
    }

    /// Decodes from the status buffer format.
    ///
    /// # Errors
    ///
    /// [`VpimError::BadRequest`] on truncation.
    pub fn decode(bytes: &[u8]) -> Result<Self, VpimError> {
        let mut pos = 0usize;
        let status = get_u32(bytes, &mut pos)?;
        let kind = get_u32(bytes, &mut pos)?;
        let error = get_str(bytes, &mut pos)?;
        let get_u64 = |pos: &mut usize| -> Result<u64, VpimError> {
            let raw = bytes
                .get(*pos..*pos + 8)
                .ok_or_else(|| VpimError::BadRequest("truncated u64".into()))?;
            *pos += 8;
            Ok(u64::from_le_bytes(raw.try_into().expect("8 bytes")))
        };
        let deser_ns = get_u64(&mut pos)?;
        let translate_ns = get_u64(&mut pos)?;
        let transfer_ns = get_u64(&mut pos)?;
        let ddr_ns = get_u64(&mut pos)?;
        let launch_cycles = get_u64(&mut pos)?;
        let payload_len = get_u32(bytes, &mut pos)? as usize;
        let payload = bytes
            .get(pos..pos + payload_len)
            .ok_or_else(|| VpimError::BadRequest("truncated payload".into()))?
            .to_vec();
        Ok(Response {
            status,
            kind,
            error,
            deser_ns,
            translate_ns,
            transfer_ns,
            ddr_ns,
            launch_cycles,
            payload,
        })
    }

    /// Whether the backend reported success.
    #[must_use]
    pub fn is_ok(&self) -> bool {
        self.status == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn config_space_roundtrip() {
        let cfg = PimDeviceConfig {
            clock_division: 2,
            mram_size: 64 << 20,
            nr_cis: 8,
            nr_dpus: 64,
            freq_mhz: 350,
            power_mgmt: 1,
        };
        let enc = cfg.encode();
        assert!(enc.len() <= PimDeviceConfig::ENCODED_LEN);
        let mut padded = enc;
        padded.resize(PimDeviceConfig::ENCODED_LEN, 0);
        assert_eq!(PimDeviceConfig::decode(&padded).unwrap(), cfg);
        assert!(PimDeviceConfig::decode(&[0; 8]).is_err());
    }

    #[test]
    fn request_roundtrips() {
        let cases = vec![
            Request::Configure,
            Request::WriteRank { nr_dpus: 64 },
            Request::ReadRank { nr_dpus: 1 },
            Request::LoadProgram { name: "va_kernel".into(), dpus: vec![0, 1, 2] },
            Request::Launch { dpus: vec![], nr_tasklets: 16 },
            Request::PollStatus { dpu: 63 },
            Request::WriteSymbol { dpu: 2, name: "partition_size".into(), len: 4 },
            Request::ReadSymbol { dpu: 2, name: "zero_count".into(), len: 4 },
            Request::ScatterSymbol {
                name: "n".into(),
                entries: vec![(0, 7), (1, 8), (63, 9)],
            },
            Request::ReleaseRank,
        ];
        for req in cases {
            let enc = req.encode();
            assert_eq!(Request::decode(&enc).unwrap(), req, "{req:?}");
        }
    }

    #[test]
    fn unknown_opcode_and_truncation_rejected() {
        assert!(Request::decode(&999u32.to_le_bytes()).is_err());
        assert!(Request::decode(&[1]).is_err());
        let mut enc = Request::LoadProgram { name: "abc".into(), dpus: vec![] }.encode();
        enc.truncate(6);
        assert!(Request::decode(&enc).is_err());
    }

    #[test]
    fn oversized_dpu_list_rejected() {
        let req = Request::Launch { dpus: (0..65).collect(), nr_tasklets: 1 };
        assert!(matches!(
            Request::decode(&req.encode()),
            Err(VpimError::ProtocolViolation(_))
        ));
    }

    #[test]
    fn response_roundtrip_with_payload() {
        let resp = Response {
            status: 0,
            kind: 0,
            error: String::new(),
            deser_ns: 123,
            translate_ns: 456,
            transfer_ns: 789,
            ddr_ns: 300,
            launch_cycles: 42,
            payload: vec![1, 2, 3, 4, 5],
        };
        let dec = Response::decode(&resp.encode()).unwrap();
        assert_eq!(dec, resp);
        assert!(dec.is_ok());
    }

    #[test]
    fn error_response_roundtrip() {
        let resp = Response::err(7, simkit::ErrorKind::OutOfBounds, "mram access out of bounds");
        let dec = Response::decode(&resp.encode()).unwrap();
        assert!(!dec.is_ok());
        assert_eq!(dec.status, 7);
        assert_eq!(dec.error, "mram access out of bounds");
        assert_eq!(
            simkit::ErrorKind::from_code(dec.kind),
            Some(simkit::ErrorKind::OutOfBounds)
        );
    }

    proptest! {
        #[test]
        fn arbitrary_request_fields_roundtrip(
            name in "[a-z_]{0,32}",
            dpus in proptest::collection::vec(0u32..64, 0..64),
            tasklets in 1u32..24,
        ) {
            let req = Request::Launch { dpus: dpus.clone(), nr_tasklets: tasklets };
            prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
            let req = Request::LoadProgram { name: name.clone(), dpus };
            prop_assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }

        #[test]
        fn decode_never_panics_on_noise(noise in proptest::collection::vec(any::<u8>(), 0..128)) {
            let _ = Request::decode(&noise);
            let _ = Response::decode(&noise);
        }
    }
}
