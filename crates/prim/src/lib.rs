//! # prim — the PrIM benchmark suite, reimplemented for the vPIM reproduction
//!
//! PrIM (Gómez-Luna et al., 2021/2022) is the benchmark suite the vPIM
//! paper evaluates with: 16 real workloads spanning dense/sparse linear
//! algebra, databases, data analytics, graph processing, neural networks,
//! bioinformatics, image processing and parallel primitives (Table 1).
//!
//! Every application here follows the original structure: a host program
//! written against [`upmem_sdk::DpuSet`] (so it runs unmodified both
//! natively and under vPIM — requirement R3) and an SPMD DPU kernel
//! ([`upmem_sim::DpuKernel`]) doing the real computation, verified against
//! a CPU reference. The per-application data-transfer idiosyncrasies the
//! paper calls out are preserved:
//!
//! * SEL and UNI retrieve results **serially** (one DPU at a time), and
//!   SpMV and BFS load input serially — which is why those four get
//!   *slower* with more DPUs (Fig. 8, bottom row);
//! * RED, SCAN-SSA, SCAN-RSS, HST-S and HST-L perform one small
//!   `read-from-rank` in their Inter-DPU/DPU-CPU step — the pattern that
//!   trips vPIM's prefetch cache into over-fetching (Takeaway 1);
//! * NW and TRNS issue very large numbers of small transfers — the
//!   worst-case pattern for para-virtualization (Takeaway 2);
//! * BFS synchronizes every level through the host (Inter-DPU
//!   handshakes).
//!
//! The [`catalog`] lists all 16 applications for the figure harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod apps;
pub mod common;
pub mod workload;

pub use common::{AppRun, PrimApp, ScaleParams};
pub use workload::{run_on_vm, WorkloadRun};

use std::sync::Arc;

use upmem_sim::PimMachine;

/// All 16 PrIM applications, in Table 1 order.
#[must_use]
pub fn catalog() -> Vec<Arc<dyn PrimApp>> {
    vec![
        Arc::new(apps::va::Va),
        Arc::new(apps::gemv::Gemv),
        Arc::new(apps::spmv::Spmv),
        Arc::new(apps::sel::Sel),
        Arc::new(apps::uni::Uni),
        Arc::new(apps::bs::Bs),
        Arc::new(apps::ts::Ts),
        Arc::new(apps::bfs::Bfs),
        Arc::new(apps::mlp::Mlp),
        Arc::new(apps::nw::Nw),
        Arc::new(apps::hst::HstS),
        Arc::new(apps::hst::HstL),
        Arc::new(apps::red::Red),
        Arc::new(apps::scan::ScanSsa),
        Arc::new(apps::scan::ScanRss),
        Arc::new(apps::trns::Trns),
    ]
}

/// Looks up an application by its short name (case-insensitive).
#[must_use]
pub fn by_name(name: &str) -> Option<Arc<dyn PrimApp>> {
    catalog()
        .into_iter()
        .find(|a| a.name().eq_ignore_ascii_case(name))
}

/// Registers every application's DPU kernels on a machine (the equivalent
/// of installing the compiled DPU binaries).
pub fn register_all(machine: &PimMachine) {
    for app in catalog() {
        app.register(machine);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn catalog_matches_table1() {
        let names: Vec<&str> = catalog().iter().map(|a| a.name()).collect();
        assert_eq!(
            names,
            vec![
                "VA", "GEMV", "SpMV", "SEL", "UNI", "BS", "TS", "BFS", "MLP", "NW", "HST-S",
                "HST-L", "RED", "SCAN-SSA", "SCAN-RSS", "TRNS"
            ]
        );
        assert_eq!(names.len(), 16);
    }

    #[test]
    fn lookup_is_case_insensitive() {
        assert!(by_name("va").is_some());
        assert!(by_name("Scan-SSA").is_some());
        assert!(by_name("nope").is_none());
    }

    #[test]
    fn domains_cover_table1() {
        let domains: std::collections::BTreeSet<&str> =
            catalog().iter().map(|a| a.domain()).collect();
        for d in [
            "Dense linear algebra",
            "Sparse linear algebra",
            "Databases",
            "Data analytics",
            "Graph processing",
            "Neural networks",
            "Bioinformatics",
            "Image processing",
            "Parallel primitives",
        ] {
            assert!(domains.contains(d), "missing domain {d}");
        }
    }
}
