//! GEMV — Matrix-Vector Multiply (dense linear algebra).
//!
//! The matrix is row-partitioned across DPUs; the dense vector is
//! broadcast. Each tasklet computes a stripe of output rows, streaming one
//! row at a time through WRAM.

use simkit::AppSegment;
use upmem_sdk::{DpuSet, SdkError};
use upmem_sim::error::DpuFault;
use upmem_sim::kernel::{DpuKernel, KernelImage, SymbolDef};
use upmem_sim::{DpuContext, PimMachine};

use crate::common::{
    bytes_to_u32s, fnv1a_u32, gen_u32s, partition, u32s_to_bytes, AppRun, PrimApp, ScaleParams,
};

/// Columns of the dense matrix (rows scale with the problem size).
pub const COLS: usize = 64;

/// The DPU kernel: `y[r] = Σ_c m[r][c] · x[c]` over the local row stripe.
#[derive(Debug)]
pub struct GemvKernel;

impl DpuKernel for GemvKernel {
    fn image(&self) -> KernelImage {
        KernelImage::new("gemv_kernel", 8 << 10)
            .with_symbol(SymbolDef::u32("rows"))
            .with_symbol(SymbolDef::u32("cols"))
            .with_symbol(SymbolDef::u32("off_x"))
            .with_symbol(SymbolDef::u32("off_y"))
    }

    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
        let rows = ctx.host_u32("rows")? as usize;
        let cols = ctx.host_u32("cols")? as usize;
        let off_x = u64::from(ctx.host_u32("off_x")?);
        let off_y = u64::from(ctx.host_u32("off_y")?);
        let tasklets = ctx.nr_tasklets();
        ctx.parallel(|t| {
            let stripes = partition(rows, tasklets);
            let stripe = stripes[t.id()].clone();
            if stripe.is_empty() {
                return Ok(());
            }
            t.wram_alloc(2 * cols * 4 + 64)?;
            let mut x = vec![0u32; cols];
            t.mram_read_u32s(off_x, &mut x)?;
            let mut row = vec![0u32; cols];
            let mut y = Vec::with_capacity(stripe.len());
            for r in stripe.clone() {
                t.mram_read_u32s((r * cols * 4) as u64, &mut row)?;
                let mut acc = 0u32;
                for c in 0..cols {
                    acc = acc.wrapping_add(row[c].wrapping_mul(x[c]));
                }
                t.charge(3 * cols as u64);
                y.push(acc);
            }
            t.mram_write_u32s(off_y + (stripe.start * 4) as u64, &y)?;
            Ok(())
        })
    }
}

/// The GEMV application.
#[derive(Debug)]
pub struct Gemv;

impl PrimApp for Gemv {
    fn name(&self) -> &'static str {
        "GEMV"
    }

    fn domain(&self) -> &'static str {
        "Dense linear algebra"
    }

    fn long_name(&self) -> &'static str {
        "Matrix-Vector Multiply"
    }

    fn register(&self, machine: &PimMachine) {
        machine.register_kernel(std::sync::Arc::new(GemvKernel));
    }

    fn run(&self, set: &mut DpuSet, scale: &ScaleParams, seed: u64) -> Result<AppRun, SdkError> {
        let rows_total = (scale.elements / COLS).max(set.nr_dpus());
        let n_dpus = set.nr_dpus();
        let ranges = partition(rows_total, n_dpus);
        let max_rows = ranges.iter().map(std::ops::Range::len).max().unwrap_or(0);
        let mat_bytes = ((max_rows * COLS * 4) as u64).div_ceil(4096) * 4096;
        let off_x = mat_bytes;
        let off_y = mat_bytes + 4096;

        let m = gen_u32s(seed, rows_total * COLS, 1 << 16);
        let x = gen_u32s(seed ^ 0xabcd, COLS, 1 << 16);

        set.load("gemv_kernel")?;
        set.set_segment(AppSegment::CpuToDpu);
        let mat_bufs: Vec<Vec<u8>> = ranges
            .iter()
            .map(|r| u32s_to_bytes(&m[r.start * COLS..r.end * COLS]))
            .collect();
        let x_bufs: Vec<Vec<u8>> = (0..n_dpus).map(|_| u32s_to_bytes(&x)).collect();
        let rows: Vec<u32> = ranges.iter().map(|r| r.len() as u32).collect();
        set.scatter_symbol_u32("rows", &rows)?;
        set.broadcast_symbol_u32("cols", COLS as u32)?;
        set.broadcast_symbol_u32("off_x", off_x as u32)?;
        set.broadcast_symbol_u32("off_y", off_y as u32)?;
        set.push_to_heap(0, &mat_bufs)?;
        set.push_to_heap(off_x, &x_bufs)?;

        set.set_segment(AppSegment::Dpu);
        set.launch(self.default_tasklets())?;

        set.set_segment(AppSegment::DpuToCpu);
        let outs = set.push_from_heap(off_y, max_rows * 4)?;
        let mut y = Vec::with_capacity(rows_total);
        for (out, r) in outs.iter().zip(&ranges) {
            y.extend_from_slice(&bytes_to_u32s(out)[..r.len()]);
        }

        let mut reference = Vec::with_capacity(rows_total);
        for r in 0..rows_total {
            let mut acc = 0u32;
            for c in 0..COLS {
                acc = acc.wrapping_add(m[r * COLS + c].wrapping_mul(x[c]));
            }
            reference.push(acc);
        }
        let verified = y == reference;
        Ok(if verified { AppRun::ok(fnv1a_u32(&y)) } else { AppRun::mismatch(fnv1a_u32(&y)) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::native_vs_vpim;

    #[test]
    fn gemv_native_matches_vpim() {
        native_vs_vpim(&Gemv, 8192);
    }
}
