//! SpMV — Sparse Matrix-Vector Multiply (sparse linear algebra, CSR).
//!
//! Rows are partitioned across DPUs. Faithful to PrIM's implementation
//! detail the paper highlights (§5.2): the **CPU-DPU step is serial** (one
//! DPU at a time), so input loading time *grows* with the DPU count — one
//! of the four applications whose total time increases from 60 to 480
//! DPUs.

use simkit::AppSegment;
use upmem_sdk::{DpuSet, SdkError};
use upmem_sim::error::DpuFault;
use upmem_sim::kernel::{DpuKernel, KernelImage, SymbolDef};
use upmem_sim::{DpuContext, PimMachine};

use crate::common::{
    bytes_to_u32s, fnv1a_u32, partition, u32s_to_bytes, AppRun, PrimApp, ScaleParams,
};
use simkit::SimRng;

/// Dense vector length (column count).
pub const COLS: usize = 128;
/// Non-zeros per row.
pub const NNZ_PER_ROW: usize = 8;

/// A CSR matrix partition layout in MRAM:
/// `[row_ptr][col_idx][vals][x][y]`, offsets passed via symbols.
#[derive(Debug)]
pub struct SpmvKernel;

impl DpuKernel for SpmvKernel {
    fn image(&self) -> KernelImage {
        KernelImage::new("spmv_kernel", 10 << 10)
            .with_symbol(SymbolDef::u32("rows"))
            .with_symbol(SymbolDef::u32("off_col"))
            .with_symbol(SymbolDef::u32("off_val"))
            .with_symbol(SymbolDef::u32("off_x"))
            .with_symbol(SymbolDef::u32("off_y"))
    }

    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
        let rows = ctx.host_u32("rows")? as usize;
        let off_col = u64::from(ctx.host_u32("off_col")?);
        let off_val = u64::from(ctx.host_u32("off_val")?);
        let off_x = u64::from(ctx.host_u32("off_x")?);
        let off_y = u64::from(ctx.host_u32("off_y")?);
        let tasklets = ctx.nr_tasklets();
        ctx.parallel(|t| {
            let stripes = partition(rows, tasklets);
            let stripe = stripes[t.id()].clone();
            if stripe.is_empty() {
                return Ok(());
            }
            t.wram_alloc(COLS * 4 + 3 * 256)?;
            let mut x = vec![0u32; COLS];
            t.mram_read_u32s(off_x, &mut x)?;
            // row_ptr entries for the stripe (+1 for the end pointer).
            let mut row_ptr = vec![0u32; stripe.len() + 1];
            t.mram_read_u32s((stripe.start * 4) as u64, &mut row_ptr)?;
            let mut y = Vec::with_capacity(stripe.len());
            for (k, _r) in stripe.clone().enumerate() {
                let lo = row_ptr[k] as usize;
                let hi = row_ptr[k + 1] as usize;
                let nnz = hi - lo;
                let mut cols = vec![0u32; nnz];
                let mut vals = vec![0u32; nnz];
                if nnz > 0 {
                    t.mram_read_u32s(off_col + (lo * 4) as u64, &mut cols)?;
                    t.mram_read_u32s(off_val + (lo * 4) as u64, &mut vals)?;
                }
                let mut acc = 0u32;
                for i in 0..nnz {
                    acc = acc.wrapping_add(vals[i].wrapping_mul(x[cols[i] as usize % COLS]));
                }
                t.charge(4 * nnz as u64 + 6);
                y.push(acc);
            }
            t.mram_write_u32s(off_y + (stripe.start * 4) as u64, &y)?;
            Ok(())
        })
    }
}

/// The SpMV application.
#[derive(Debug)]
pub struct Spmv;

impl PrimApp for Spmv {
    fn name(&self) -> &'static str {
        "SpMV"
    }

    fn domain(&self) -> &'static str {
        "Sparse linear algebra"
    }

    fn long_name(&self) -> &'static str {
        "Sparse Matrix-Vector Multiply"
    }

    fn register(&self, machine: &PimMachine) {
        machine.register_kernel(std::sync::Arc::new(SpmvKernel));
    }

    fn run(&self, set: &mut DpuSet, scale: &ScaleParams, seed: u64) -> Result<AppRun, SdkError> {
        let rows_total = (scale.elements / NNZ_PER_ROW).max(set.nr_dpus());
        let n_dpus = set.nr_dpus();
        let ranges = partition(rows_total, n_dpus);

        // Generate a CSR matrix with NNZ_PER_ROW entries per row.
        let mut rng = SimRng::seeded(seed);
        let mut col_idx = Vec::with_capacity(rows_total * NNZ_PER_ROW);
        let mut vals = Vec::with_capacity(rows_total * NNZ_PER_ROW);
        for _ in 0..rows_total * NNZ_PER_ROW {
            col_idx.push(rng.u64_below(COLS as u64) as u32);
            vals.push(rng.u64_below(1 << 16) as u32);
        }
        let x: Vec<u32> = (0..COLS).map(|_| rng.u64_below(1 << 16) as u32).collect();

        set.load("spmv_kernel")?;
        set.set_segment(AppSegment::CpuToDpu);

        let max_rows = ranges.iter().map(std::ops::Range::len).max().unwrap_or(0);
        let ptr_bytes = (((max_rows + 1) * 4) as u64).div_ceil(4096) * 4096;
        let nnz_bytes = ((max_rows * NNZ_PER_ROW * 4) as u64).div_ceil(4096) * 4096;
        let off_col = ptr_bytes;
        let off_val = off_col + nnz_bytes;
        let off_x = off_val + nnz_bytes;
        let off_y = off_x + 4096;

        // Faithful PrIM detail: serial per-DPU input distribution.
        for (d, r) in ranges.iter().enumerate() {
            let local_ptr: Vec<u32> =
                (0..=r.len()).map(|k| (k * NNZ_PER_ROW) as u32).collect();
            let lo = r.start * NNZ_PER_ROW;
            let hi = r.end * NNZ_PER_ROW;
            set.copy_to_heap(d, 0, &u32s_to_bytes(&local_ptr))?;
            set.copy_to_heap(d, off_col, &u32s_to_bytes(&col_idx[lo..hi]))?;
            set.copy_to_heap(d, off_val, &u32s_to_bytes(&vals[lo..hi]))?;
            set.copy_to_heap(d, off_x, &u32s_to_bytes(&x))?;
        }
        let rows: Vec<u32> = ranges.iter().map(|r| r.len() as u32).collect();
        set.scatter_symbol_u32("rows", &rows)?;
        set.broadcast_symbol_u32("off_col", off_col as u32)?;
        set.broadcast_symbol_u32("off_val", off_val as u32)?;
        set.broadcast_symbol_u32("off_x", off_x as u32)?;
        set.broadcast_symbol_u32("off_y", off_y as u32)?;

        set.set_segment(AppSegment::Dpu);
        set.launch(self.default_tasklets())?;

        set.set_segment(AppSegment::DpuToCpu);
        let outs = set.push_from_heap(off_y, max_rows * 4)?;
        let mut y = Vec::with_capacity(rows_total);
        for (out, r) in outs.iter().zip(&ranges) {
            y.extend_from_slice(&bytes_to_u32s(out)[..r.len()]);
        }

        let mut reference = Vec::with_capacity(rows_total);
        for r in 0..rows_total {
            let mut acc = 0u32;
            for k in 0..NNZ_PER_ROW {
                let i = r * NNZ_PER_ROW + k;
                acc = acc
                    .wrapping_add(vals[i].wrapping_mul(x[col_idx[i] as usize % COLS]));
            }
            reference.push(acc);
        }
        let verified = y == reference;
        Ok(if verified { AppRun::ok(fnv1a_u32(&y)) } else { AppRun::mismatch(fnv1a_u32(&y)) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::native_vs_vpim;

    #[test]
    fn spmv_native_matches_vpim() {
        native_vs_vpim(&Spmv, 4096);
    }
}
