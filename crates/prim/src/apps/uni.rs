//! UNI — Unique (databases).
//!
//! Removes *consecutive* duplicates (like `uniq(1)` / PrIM's UNI). Each
//! DPU compacts its partition; the host stitches partition boundaries
//! (dropping a partition's first survivor when it equals the previous
//! partition's last). Like SEL, the DPU-CPU step is **serial** (§5.2).

use simkit::AppSegment;
use upmem_sdk::{DpuSet, SdkError};
use upmem_sim::error::DpuFault;
use upmem_sim::kernel::{DpuKernel, KernelImage, SymbolDef};
use upmem_sim::{DpuContext, PimMachine};

use crate::common::{
    bytes_to_u32s, fnv1a_u32, partition, u32s_to_bytes, AppRun, PrimApp, ScaleParams,
};
use simkit::SimRng;

/// The DPU kernel: single-pass consecutive-duplicate removal.
///
/// Tasklet stripes need the element *before* their stripe to decide the
/// first element, so each tasklet reads one extra leading element.
#[derive(Debug)]
pub struct UniKernel;

impl DpuKernel for UniKernel {
    fn image(&self) -> KernelImage {
        KernelImage::new("uni_kernel", 7 << 10)
            .with_symbol(SymbolDef::u32("n"))
            .with_symbol(SymbolDef::u32("off_out"))
            .with_symbol(SymbolDef::u32("out_count"))
    }

    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
        let n = ctx.host_u32("n")? as usize;
        let off_out = u64::from(ctx.host_u32("off_out")?);
        let tasklets = ctx.nr_tasklets();
        // Phase 1: count survivors per stripe.
        let mut counts = vec![0u32; tasklets];
        ctx.parallel(|t| {
            let ranges = partition(n, tasklets);
            let range = ranges[t.id()].clone();
            if range.is_empty() {
                return Ok(());
            }
            t.wram_alloc(2048)?;
            let mut prev: Option<u32> = None;
            if range.start > 0 {
                let mut lead = [0u32; 1];
                t.mram_read_u32s(((range.start - 1) * 4) as u64, &mut lead)?;
                prev = Some(lead[0]);
            }
            let mut buf = vec![0u32; 256];
            let mut pos = range.start;
            let mut kept = 0u32;
            while pos < range.end {
                let take = 256.min(range.end - pos);
                t.mram_read_u32s((pos * 4) as u64, &mut buf[..take])?;
                for &v in &buf[..take] {
                    if prev != Some(v) {
                        kept += 1;
                    }
                    prev = Some(v);
                }
                t.charge(3 * take as u64);
                pos += take;
            }
            counts[t.id()] = kept;
            Ok(())
        })?;
        let mut prefix = vec![0u32; tasklets];
        let mut acc = 0u32;
        for (i, c) in counts.iter().enumerate() {
            prefix[i] = acc;
            acc += c;
        }
        let total = acc;
        // Phase 2: compact.
        ctx.parallel(|t| {
            let ranges = partition(n, tasklets);
            let range = ranges[t.id()].clone();
            if range.is_empty() {
                return Ok(());
            }
            let mut prev: Option<u32> = None;
            if range.start > 0 {
                let mut lead = [0u32; 1];
                t.mram_read_u32s(((range.start - 1) * 4) as u64, &mut lead)?;
                prev = Some(lead[0]);
            }
            let mut buf = vec![0u32; 256];
            let mut out = Vec::new();
            let mut pos = range.start;
            while pos < range.end {
                let take = 256.min(range.end - pos);
                t.mram_read_u32s((pos * 4) as u64, &mut buf[..take])?;
                for &v in &buf[..take] {
                    if prev != Some(v) {
                        out.push(v);
                    }
                    prev = Some(v);
                }
                t.charge(4 * take as u64);
                pos += take;
            }
            if !out.is_empty() {
                t.mram_write_u32s(off_out + u64::from(prefix[t.id()]) * 4, &out)?;
            }
            Ok(())
        })?;
        ctx.set_host_u32("out_count", total)?;
        Ok(())
    }
}

/// The UNI application.
#[derive(Debug)]
pub struct Uni;

impl PrimApp for Uni {
    fn name(&self) -> &'static str {
        "UNI"
    }

    fn domain(&self) -> &'static str {
        "Databases"
    }

    fn long_name(&self) -> &'static str {
        "Unique"
    }

    fn register(&self, machine: &PimMachine) {
        machine.register_kernel(std::sync::Arc::new(UniKernel));
    }

    fn run(&self, set: &mut DpuSet, scale: &ScaleParams, seed: u64) -> Result<AppRun, SdkError> {
        let n_dpus = set.nr_dpus();
        let ranges = partition(scale.elements, n_dpus);
        let max_per = ranges.iter().map(std::ops::Range::len).max().unwrap_or(0);
        let off_out = ((max_per * 4) as u64).div_ceil(4096) * 4096;

        // Runs of repeated values make the workload meaningful.
        let mut rng = SimRng::seeded(seed);
        let mut input = Vec::with_capacity(scale.elements);
        let mut v = 0u32;
        while input.len() < scale.elements {
            v = rng.u64_below(1 << 16) as u32;
            let run = 1 + rng.usize_below(4);
            for _ in 0..run.min(scale.elements - input.len()) {
                input.push(v);
            }
        }
        let _ = v;

        set.load("uni_kernel")?;
        set.set_segment(AppSegment::CpuToDpu);
        let bufs: Vec<Vec<u8>> =
            ranges.iter().map(|r| u32s_to_bytes(&input[r.clone()])).collect();
        let ns: Vec<u32> = ranges.iter().map(|r| r.len() as u32).collect();
        set.scatter_symbol_u32("n", &ns)?;
        set.broadcast_symbol_u32("off_out", off_out as u32)?;
        set.push_to_heap(0, &bufs)?;

        set.set_segment(AppSegment::Dpu);
        set.launch(self.default_tasklets())?;

        // Serial retrieval + host-side boundary stitching (Inter-DPU).
        set.set_segment(AppSegment::DpuToCpu);
        let mut unique = Vec::new();
        for (d, r) in ranges.iter().enumerate() {
            let count = set.symbol_u32(d, "out_count")? as usize;
            if count == 0 {
                continue;
            }
            let raw = set.copy_from_heap(d, off_out, count * 4)?;
            let vals = bytes_to_u32s(&raw);
            // DPUs compact within their partition; a partition whose first
            // element equals the previous partition's last element keeps
            // it (the kernel has no cross-DPU context) — drop it here.
            let skip = usize::from(
                r.start > 0 && unique.last() == vals.first() && !vals.is_empty(),
            );
            unique.extend_from_slice(&vals[skip..]);
        }

        let mut reference = Vec::new();
        for &x in &input {
            if reference.last() != Some(&x) {
                reference.push(x);
            }
        }
        let verified = unique == reference;
        Ok(if verified {
            AppRun::ok(fnv1a_u32(&unique))
        } else {
            AppRun::mismatch(fnv1a_u32(&unique))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::native_vs_vpim;

    #[test]
    fn uni_native_matches_vpim() {
        native_vs_vpim(&Uni, 4096);
    }
}
