//! TS — Time Series Analysis (data analytics).
//!
//! A simplified matrix-profile-style workload: given a long series and a
//! short query, every DPU scans its chunk (with overlap of `QUERY-1`
//! elements, like PrIM's tiling) and reports the minimum squared euclidean
//! distance between the query and any aligned window, plus its position.
//! The host reduces per-DPU minima (Inter-DPU).

use simkit::AppSegment;
use upmem_sdk::{DpuSet, SdkError};
use upmem_sim::error::DpuFault;
use upmem_sim::kernel::{DpuKernel, KernelImage, SymbolDef};
use upmem_sim::{DpuContext, PimMachine};

use crate::common::{fnv1a_u32, gen_u32s, partition, u32s_to_bytes, AppRun, PrimApp, ScaleParams};

/// Query (window) length.
pub const QUERY: usize = 16;

fn window_distance(series: &[u32], query: &[u32]) -> u64 {
    series
        .iter()
        .zip(query)
        .map(|(s, q)| {
            let d = i64::from(*s) - i64::from(*q);
            (d * d) as u64
        })
        .sum()
}

/// The DPU kernel: sliding-window distance scan over the local chunk.
#[derive(Debug)]
pub struct TsKernel;

impl DpuKernel for TsKernel {
    fn image(&self) -> KernelImage {
        KernelImage::new("ts_kernel", 9 << 10)
            .with_symbol(SymbolDef::u32("n"))
            .with_symbol(SymbolDef::u32("off_q"))
            .with_symbol(SymbolDef::u64("best"))
            .with_symbol(SymbolDef::u32("best_pos"))
    }

    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
        let n = ctx.host_u32("n")? as usize;
        let off_q = u64::from(ctx.host_u32("off_q")?);
        ctx.set_host_u64("best", u64::MAX)?;
        let tasklets = ctx.nr_tasklets();
        let windows = n.saturating_sub(QUERY - 1);
        let mut bests = vec![(u64::MAX, 0u32); tasklets];
        ctx.parallel(|t| {
            let stripes = partition(windows, tasklets);
            let stripe = stripes[t.id()].clone();
            if stripe.is_empty() {
                return Ok(());
            }
            t.wram_alloc(2048)?;
            let mut q = vec![0u32; QUERY];
            t.mram_read_u32s(off_q, &mut q)?;
            // Stream the stripe plus QUERY-1 overlap.
            let span = stripe.len() + QUERY - 1;
            let mut chunk = vec![0u32; span];
            t.mram_read_u32s((stripe.start * 4) as u64, &mut chunk)?;
            let mut best = (u64::MAX, 0u32);
            for w in 0..stripe.len() {
                let d = window_distance(&chunk[w..w + QUERY], &q);
                if d < best.0 {
                    best = (d, (stripe.start + w) as u32);
                }
            }
            t.charge((stripe.len() * QUERY * 4) as u64);
            bests[t.id()] = best;
            Ok(())
        })?;
        let overall = bests
            .iter()
            .copied()
            .min_by_key(|(d, pos)| (*d, *pos))
            .unwrap_or((u64::MAX, 0));
        ctx.set_host_u64("best", overall.0)?;
        ctx.set_host_u32("best_pos", overall.1)?;
        Ok(())
    }
}

/// The TS application.
#[derive(Debug)]
pub struct Ts;

impl PrimApp for Ts {
    fn name(&self) -> &'static str {
        "TS"
    }

    fn domain(&self) -> &'static str {
        "Data analytics"
    }

    fn long_name(&self) -> &'static str {
        "Time Series Analysis"
    }

    fn register(&self, machine: &PimMachine) {
        machine.register_kernel(std::sync::Arc::new(TsKernel));
    }

    fn run(&self, set: &mut DpuSet, scale: &ScaleParams, seed: u64) -> Result<AppRun, SdkError> {
        let n_dpus = set.nr_dpus();
        let series = gen_u32s(seed, scale.elements.max(QUERY * n_dpus * 2), 1 << 12);
        let query = gen_u32s(seed ^ 0x1234, QUERY, 1 << 12);
        let total = series.len();
        let windows_total = total - QUERY + 1;
        let ranges = partition(windows_total, n_dpus);

        set.load("ts_kernel")?;
        set.set_segment(AppSegment::CpuToDpu);
        // Each DPU gets its windows plus QUERY-1 overlap elements.
        let max_span = ranges.iter().map(|r| r.len() + QUERY - 1).max().unwrap_or(0);
        let off_q = ((max_span * 4) as u64).div_ceil(4096) * 4096;
        let chunks: Vec<Vec<u8>> = ranges
            .iter()
            .map(|r| u32s_to_bytes(&series[r.start..r.end + QUERY - 1]))
            .collect();
        let q_bufs: Vec<Vec<u8>> = (0..n_dpus).map(|_| u32s_to_bytes(&query)).collect();
        let ns: Vec<u32> = ranges.iter().map(|r| (r.len() + QUERY - 1) as u32).collect();
        set.scatter_symbol_u32("n", &ns)?;
        set.broadcast_symbol_u32("off_q", off_q as u32)?;
        set.push_to_heap(0, &chunks)?;
        set.push_to_heap(off_q, &q_bufs)?;

        set.set_segment(AppSegment::Dpu);
        set.launch(self.default_tasklets())?;

        // Inter-DPU: reduce per-DPU minima on the host.
        set.set_segment(AppSegment::InterDpu);
        let mut best = (u64::MAX, 0u32);
        for (d, r) in ranges.iter().enumerate() {
            let dist = set.symbol_u64(d, "best")?;
            // The kernel reports chunk-local window positions; the chunk
            // starts at the range start, so global = start + local.
            let local = set.symbol_u32(d, "best_pos")?;
            let candidate = (dist, r.start as u32 + local);
            if candidate < best {
                best = candidate;
            }
        }

        set.set_segment(AppSegment::DpuToCpu);
        let reference = {
            let mut b = (u64::MAX, 0u32);
            for w in 0..windows_total {
                let d = window_distance(&series[w..w + QUERY], &query);
                if (d, w as u32) < b {
                    b = (d, w as u32);
                }
            }
            b
        };
        let verified = best == reference;
        let sum = [best.0 as u32, (best.0 >> 32) as u32, best.1];
        Ok(if verified { AppRun::ok(fnv1a_u32(&sum)) } else { AppRun::mismatch(fnv1a_u32(&sum)) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::native_vs_vpim;

    #[test]
    fn ts_native_matches_vpim() {
        native_vs_vpim(&Ts, 4096);
    }
}
