//! NW — Needleman-Wunsch sequence alignment (bioinformatics).
//!
//! The paper's worst case: the DP matrix is processed as a wavefront of
//! column bands (one per DPU) × row blocks, and **every block boundary
//! crosses the host** — a left boundary write, an `a`-block write and a
//! right boundary read per active DPU per iteration, each ~tens-to-hundreds
//! of bytes (§5.2: >650 000 operations of ~160 B on the testbed scale).
//! Unoptimized vPIM suffers 53× here; request batching and the prefetch
//! cache recover 10.8× (Fig. 14).

use simkit::AppSegment;
use upmem_sdk::{DpuSet, SdkError};
use upmem_sim::error::DpuFault;
use upmem_sim::kernel::{DpuKernel, KernelImage, SymbolDef};
use upmem_sim::{DpuContext, PimMachine};

use crate::common::{bytes_to_u32s, fnv1a_u32, gen_u32s, u32s_to_bytes, AppRun, PrimApp, ScaleParams};

/// Rows per block (wavefront granularity). Larger blocks mean more small
/// boundary chunks share each prefetch fetch — the regime where the
/// paper's +P step pays off (reads 5 000 → 125 on the testbed).
pub const ROW_BLOCK: usize = 64;
/// Alphabet size (DNA-like).
pub const ALPHABET: u32 = 4;
/// Match / mismatch / gap scores (classic NW).
pub const MATCH: i32 = 1;
/// Mismatch penalty.
pub const MISMATCH: i32 = -1;
/// Gap penalty.
pub const GAP: i32 = -1;

#[inline]
fn score(a: u32, b: u32) -> i32 {
    if a == b {
        MATCH
    } else {
        MISMATCH
    }
}

/// CPU reference: full DP, returns the final alignment score.
#[must_use]
pub fn reference_score(a: &[u32], b: &[u32]) -> i32 {
    let (m, n) = (a.len(), b.len());
    let mut prev: Vec<i32> = (0..=n as i32).map(|j| -j).collect();
    let mut cur = vec![0i32; n + 1];
    for i in 1..=m {
        cur[0] = -(i as i32);
        for j in 1..=n {
            let diag = prev[j - 1] + score(a[i - 1], b[j - 1]);
            let up = prev[j] + GAP;
            let left = cur[j - 1] + GAP;
            cur[j] = diag.max(up).max(left);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[n]
}

/// The DPU kernel: computes one `ROW_BLOCK × band` tile of the DP matrix.
/// The band's `b` segment and the previous row persist in MRAM between
/// launches; the left boundary, `a` block and corner arrive from the host.
#[derive(Debug)]
pub struct NwKernel;

impl DpuKernel for NwKernel {
    fn image(&self) -> KernelImage {
        KernelImage::new("nw_kernel", 12 << 10)
            .with_symbol(SymbolDef::u32("w"))
            .with_symbol(SymbolDef::u32("rb"))
            .with_symbol(SymbolDef::u32("off_b"))
            .with_symbol(SymbolDef::u32("off_prev"))
            .with_symbol(SymbolDef::u32("off_left"))
            .with_symbol(SymbolDef::u32("off_a"))
            .with_symbol(SymbolDef::u32("off_right"))
            .with_symbol(SymbolDef::u32("last_score"))
    }

    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
        let w = ctx.host_u32("w")? as usize;
        let rb = ctx.host_u32("rb")? as usize;
        let off_b = u64::from(ctx.host_u32("off_b")?);
        let off_prev = u64::from(ctx.host_u32("off_prev")?);
        let off_left = u64::from(ctx.host_u32("off_left")?);
        let off_a = u64::from(ctx.host_u32("off_a")?);
        let off_right = u64::from(ctx.host_u32("off_right")?);
        // The tile has a strict left-to-right, top-to-bottom dependency
        // chain; NW on UPMEM is transfer-bound, so a single tasklet
        // computes the tile (matching PrIM's low DPU utilization here).
        let mut last = 0i32;
        ctx.single(|t| {
            t.wram_alloc(4 * (w + rb) * 4 + 1024)?;
            let mut b = vec![0u32; w];
            t.mram_read_u32s(off_b, &mut b)?;
            let mut prev = vec![0u32; w];
            t.mram_read_u32s(off_prev, &mut prev)?;
            let mut prev: Vec<i32> = prev.into_iter().map(|v| v as i32).collect();
            // The host writes [corner, left row 0, ..., left row rb-1].
            let mut left_buf = vec![0u32; rb + 1];
            t.mram_read_u32s(off_left, &mut left_buf)?;
            let corner = left_buf[0] as i32;
            let left: Vec<i32> = left_buf[1..].iter().map(|v| *v as i32).collect();
            let mut a = vec![0u32; rb];
            t.mram_read_u32s(off_a, &mut a)?;

            let mut right = vec![0i32; rb];
            let mut corner_run = corner;
            for (bi, &ac) in a.iter().enumerate() {
                let mut cur = vec![0i32; w];
                let mut west = left[bi];
                let mut nw = corner_run;
                for j in 0..w {
                    let diag = nw + score(ac, b[j]);
                    let up = prev[j] + GAP;
                    let l = west + GAP;
                    cur[j] = diag.max(up).max(l);
                    nw = prev[j];
                    west = cur[j];
                }
                t.charge(10 * w as u64);
                corner_run = left[bi];
                right[bi] = cur[w - 1];
                prev = cur;
            }
            let prev_u: Vec<u32> = prev.iter().map(|v| *v as u32).collect();
            t.mram_write_u32s(off_prev, &prev_u)?;
            let right_u: Vec<u32> = right.iter().map(|v| *v as u32).collect();
            t.mram_write_u32s(off_right, &right_u)?;
            last = prev[w - 1];
            Ok(())
        })?;
        ctx.set_host_u32("last_score", last as u32)?;
        Ok(())
    }
}

/// The NW application.
#[derive(Debug)]
pub struct Nw;

impl PrimApp for Nw {
    fn name(&self) -> &'static str {
        "NW"
    }

    fn domain(&self) -> &'static str {
        "Bioinformatics"
    }

    fn long_name(&self) -> &'static str {
        "Needleman-Wunsch"
    }

    fn register(&self, machine: &PimMachine) {
        machine.register_kernel(std::sync::Arc::new(NwKernel));
    }

    fn default_tasklets(&self) -> usize {
        1
    }

    #[allow(clippy::too_many_lines)]
    fn run(&self, set: &mut DpuSet, scale: &ScaleParams, seed: u64) -> Result<AppRun, SdkError> {
        let n_dpus = set.nr_dpus();
        // Square-ish DP sized from the element budget, rounded so bands and
        // blocks divide evenly.
        let side = ((scale.elements as f64).sqrt() as usize).clamp(ROW_BLOCK, 4096);
        let w = side.div_ceil(n_dpus).max(4);
        let n = w * n_dpus;
        let m = side.div_ceil(ROW_BLOCK).max(1) * ROW_BLOCK;
        let kb = m / ROW_BLOCK;

        let a = gen_u32s(seed, m, ALPHABET);
        let b = gen_u32s(seed ^ 0xdead, n, ALPHABET);

        set.load("nw_kernel")?;
        set.set_segment(AppSegment::CpuToDpu);
        let band_bytes = ((w * 4) as u64).div_ceil(4096) * 4096;
        let rb_bytes = 4096u64;
        let off_b = 0u64;
        let off_prev = band_bytes;
        let off_left = off_prev + band_bytes;
        let off_a = off_left + rb_bytes;
        let off_right = off_a + rb_bytes;

        // Distribute b bands and initial prev rows (score[0][j] = -j).
        let b_bufs: Vec<Vec<u8>> =
            (0..n_dpus).map(|d| u32s_to_bytes(&b[d * w..(d + 1) * w])).collect();
        set.push_to_heap(off_b, &b_bufs)?;
        let prev_bufs: Vec<Vec<u8>> = (0..n_dpus)
            .map(|d| {
                let row: Vec<u32> =
                    (1..=w).map(|j| (-((d * w + j) as i32)) as u32).collect();
                u32s_to_bytes(&row)
            })
            .collect();
        set.push_to_heap(off_prev, &prev_bufs)?;
        set.broadcast_symbol_u32("w", w as u32)?;
        set.broadcast_symbol_u32("rb", ROW_BLOCK as u32)?;
        set.broadcast_symbol_u32("off_b", off_b as u32)?;
        set.broadcast_symbol_u32("off_prev", off_prev as u32)?;
        set.broadcast_symbol_u32("off_left", off_left as u32)?;
        set.broadcast_symbol_u32("off_a", off_a as u32)?;
        set.broadcast_symbol_u32("off_right", off_right as u32)?;
        // Boundary traffic granularity: PrIM's NW moves boundaries in
        // ~160 B pieces; we use 4-cell (16 B) chunks, the pattern that
        // makes unoptimized vPIM collapse and batching/prefetch shine.
        const CHUNK: usize = 4;

        // right_store[k][d] = right boundary of (block k, band d).
        let mut right_store: Vec<Vec<Option<Vec<i32>>>> = vec![vec![None; n_dpus]; kb];
        let mut final_score = 0i32;

        for t in 0..(kb + n_dpus - 1) {
            let d_lo = t.saturating_sub(kb - 1);
            let d_hi = t.min(n_dpus - 1);
            let active: Vec<usize> = (d_lo..=d_hi).collect();
            // Inter-DPU: feed boundaries to every active DPU (many small
            // writes — the batching target).
            set.set_segment(AppSegment::InterDpu);
            for &d in &active {
                let k = t - d;
                let i0 = k * ROW_BLOCK + 1;
                // Left boundary: score[i][j0-1] for the block's rows.
                let left: Vec<i32> = if d == 0 {
                    (0..ROW_BLOCK).map(|r| -((i0 + r) as i32)).collect()
                } else {
                    right_store[k][d - 1].clone().expect("wavefront order")
                };
                let corner: i32 = if d == 0 {
                    -((i0 - 1) as i32)
                } else if k == 0 {
                    -((d * w) as i32)
                } else {
                    *right_store[k - 1][d - 1]
                        .as_ref()
                        .expect("wavefront order")
                        .last()
                        .expect("non-empty boundary")
                };
                // [corner, left...] streamed in small chunks.
                let mut buf: Vec<u32> = Vec::with_capacity(ROW_BLOCK + 1);
                buf.push(corner as u32);
                buf.extend(left.iter().map(|v| *v as u32));
                for (ci, chunk) in buf.chunks(CHUNK).enumerate() {
                    set.copy_to_heap(
                        d,
                        off_left + (ci * CHUNK * 4) as u64,
                        &u32s_to_bytes(chunk),
                    )?;
                }
                let a_block = &a[k * ROW_BLOCK..(k + 1) * ROW_BLOCK];
                for (ci, chunk) in a_block.chunks(CHUNK).enumerate() {
                    set.copy_to_heap(
                        d,
                        off_a + (ci * CHUNK * 4) as u64,
                        &u32s_to_bytes(chunk),
                    )?;
                }
            }
            set.set_segment(AppSegment::Dpu);
            set.launch_on(&active, self.default_tasklets())?;
            // Inter-DPU: collect right boundaries (many small reads — the
            // prefetch-cache target).
            set.set_segment(AppSegment::InterDpu);
            for &d in &active {
                let k = t - d;
                let mut right: Vec<i32> = Vec::with_capacity(ROW_BLOCK);
                for ci in 0..ROW_BLOCK.div_ceil(CHUNK) {
                    let take = CHUNK.min(ROW_BLOCK - ci * CHUNK);
                    let raw =
                        set.copy_from_heap(d, off_right + (ci * CHUNK * 4) as u64, take * 4)?;
                    right.extend(bytes_to_u32s(&raw).into_iter().map(|v| v as i32));
                }
                right_store[k][d] = Some(right);
                if k == kb - 1 && d == n_dpus - 1 {
                    final_score = set.symbol_u32(d, "last_score")? as i32;
                }
            }
        }

        set.set_segment(AppSegment::DpuToCpu);
        let reference = reference_score(&a, &b);
        let verified = final_score == reference;
        Ok(if verified {
            AppRun::ok(fnv1a_u32(&[final_score as u32]))
        } else {
            AppRun::mismatch(fnv1a_u32(&[final_score as u32]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::native_vs_vpim;

    #[test]
    fn nw_native_matches_vpim() {
        native_vs_vpim(&Nw, 4096);
    }

    #[test]
    fn reference_identity_and_gap_scores() {
        // Identical sequences score their length.
        let s = vec![0u32, 1, 2, 3];
        assert_eq!(reference_score(&s, &s), 4);
        // Aligning against empty costs gaps.
        assert_eq!(reference_score(&s, &[]), -4);
    }
}
