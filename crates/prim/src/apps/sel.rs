//! SEL — Select (databases).
//!
//! Each DPU filters its partition by a predicate (keep even values),
//! compacting survivors into an output region and reporting the count in a
//! host symbol. Faithful to PrIM's implementation detail (§5.2): the
//! **DPU-CPU step is serial**, retrieving each DPU's variable-length
//! output one at a time — which is why SEL slows down at 480 DPUs.

use simkit::AppSegment;
use upmem_sdk::{DpuSet, SdkError};
use upmem_sim::error::DpuFault;
use upmem_sim::kernel::{DpuKernel, KernelImage, SymbolDef};
use upmem_sim::{DpuContext, PimMachine};

use crate::common::{
    bytes_to_u32s, fnv1a_u32, gen_u32s, partition, u32s_to_bytes, AppRun, PrimApp, ScaleParams,
};

/// The selection predicate (shared by kernel and reference).
#[inline]
#[must_use]
pub fn keep(v: u32) -> bool {
    v % 2 == 0
}

/// The DPU kernel: per-tasklet filter + single-tasklet compaction pass.
#[derive(Debug)]
pub struct SelKernel;

impl DpuKernel for SelKernel {
    fn image(&self) -> KernelImage {
        KernelImage::new("sel_kernel", 7 << 10)
            .with_symbol(SymbolDef::u32("n"))
            .with_symbol(SymbolDef::u32("off_out"))
            .with_symbol(SymbolDef::u32("out_count"))
    }

    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
        let n = ctx.host_u32("n")? as usize;
        let off_out = u64::from(ctx.host_u32("off_out")?);
        let tasklets = ctx.nr_tasklets();
        // Phase 1: each tasklet counts its survivors (to size the prefix).
        let mut counts = vec![0u32; tasklets];
        ctx.parallel(|t| {
            let ranges = partition(n, tasklets);
            let range = ranges[t.id()].clone();
            if range.is_empty() {
                return Ok(());
            }
            t.wram_alloc(1024)?;
            let mut buf = vec![0u32; 256];
            let mut pos = range.start;
            let mut kept = 0u32;
            while pos < range.end {
                let take = 256.min(range.end - pos);
                t.mram_read_u32s((pos * 4) as u64, &mut buf[..take])?;
                kept += buf[..take].iter().filter(|v| keep(**v)).count() as u32;
                t.charge(3 * take as u64);
                pos += take;
            }
            counts[t.id()] = kept;
            Ok(())
        })?;
        // Barrier, then phase 2: compact using exclusive prefix offsets.
        let mut prefix = vec![0u32; tasklets];
        let mut acc = 0u32;
        for (i, c) in counts.iter().enumerate() {
            prefix[i] = acc;
            acc += c;
        }
        let total = acc;
        ctx.parallel(|t| {
            let ranges = partition(n, tasklets);
            let range = ranges[t.id()].clone();
            if range.is_empty() {
                return Ok(());
            }
            let mut buf = vec![0u32; 256];
            let mut out = Vec::new();
            let mut pos = range.start;
            while pos < range.end {
                let take = 256.min(range.end - pos);
                t.mram_read_u32s((pos * 4) as u64, &mut buf[..take])?;
                out.extend(buf[..take].iter().copied().filter(|v| keep(*v)));
                t.charge(4 * take as u64);
                pos += take;
            }
            if !out.is_empty() {
                t.mram_write_u32s(off_out + u64::from(prefix[t.id()]) * 4, &out)?;
            }
            Ok(())
        })?;
        ctx.set_host_u32("out_count", total)?;
        Ok(())
    }
}

/// The SEL application.
#[derive(Debug)]
pub struct Sel;

impl PrimApp for Sel {
    fn name(&self) -> &'static str {
        "SEL"
    }

    fn domain(&self) -> &'static str {
        "Databases"
    }

    fn long_name(&self) -> &'static str {
        "Select"
    }

    fn register(&self, machine: &PimMachine) {
        machine.register_kernel(std::sync::Arc::new(SelKernel));
    }

    fn run(&self, set: &mut DpuSet, scale: &ScaleParams, seed: u64) -> Result<AppRun, SdkError> {
        let n_dpus = set.nr_dpus();
        let ranges = partition(scale.elements, n_dpus);
        let max_per = ranges.iter().map(std::ops::Range::len).max().unwrap_or(0);
        let off_out = ((max_per * 4) as u64).div_ceil(4096) * 4096;
        let input = gen_u32s(seed, scale.elements, 1 << 24);

        set.load("sel_kernel")?;
        set.set_segment(AppSegment::CpuToDpu);
        let bufs: Vec<Vec<u8>> =
            ranges.iter().map(|r| u32s_to_bytes(&input[r.clone()])).collect();
        let ns: Vec<u32> = ranges.iter().map(|r| r.len() as u32).collect();
        set.scatter_symbol_u32("n", &ns)?;
        set.broadcast_symbol_u32("off_out", off_out as u32)?;
        set.push_to_heap(0, &bufs)?;

        set.set_segment(AppSegment::Dpu);
        set.launch(self.default_tasklets())?;

        // Faithful PrIM detail: serial per-DPU retrieval (count, then data).
        set.set_segment(AppSegment::DpuToCpu);
        let mut selected = Vec::new();
        for d in 0..n_dpus {
            let count = set.symbol_u32(d, "out_count")? as usize;
            if count > 0 {
                let raw = set.copy_from_heap(d, off_out, count * 4)?;
                selected.extend_from_slice(&bytes_to_u32s(&raw));
            }
        }

        let reference: Vec<u32> = input.iter().copied().filter(|v| keep(*v)).collect();
        let verified = selected == reference;
        Ok(if verified {
            AppRun::ok(fnv1a_u32(&selected))
        } else {
            AppRun::mismatch(fnv1a_u32(&selected))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::native_vs_vpim;

    #[test]
    fn sel_native_matches_vpim() {
        native_vs_vpim(&Sel, 4096);
    }
}
