//! SCAN-SSA and SCAN-RSS — prefix sum, two decompositions (parallel
//! primitives).
//!
//! * **SCAN-SSA** (scan-scan-add): each DPU scans its partition locally,
//!   the host scans the per-DPU totals (Inter-DPU: small read + small
//!   write per DPU), and a second launch adds each DPU's base offset.
//! * **SCAN-RSS** (reduce-scan-scan): each DPU only *reduces* first, the
//!   host scans the sums, and the second launch performs the local scan
//!   with the base folded in — trading a cheaper first kernel for a
//!   heavier second one.
//!
//! Both exhibit the small Inter-DPU transfers the paper highlights.

use simkit::AppSegment;
use upmem_sdk::{DpuSet, SdkError};
use upmem_sim::error::DpuFault;
use upmem_sim::kernel::{DpuKernel, KernelImage, SymbolDef};
use upmem_sim::{DpuContext, PimMachine};

use crate::common::{
    bytes_to_u32s, fnv1a_u32, gen_u32s, partition, u32s_to_bytes, AppRun, PrimApp, ScaleParams,
};

/// Kernel phases, selected by a host symbol.
pub const PHASE_LOCAL_SCAN: u32 = 0;
/// Reduce-only phase (SCAN-RSS first launch).
pub const PHASE_REDUCE: u32 = 1;
/// Add-base phase (SCAN-SSA second launch).
pub const PHASE_ADD_BASE: u32 = 2;
/// Scan-with-base phase (SCAN-RSS second launch).
pub const PHASE_SCAN_BASE: u32 = 3;

/// The scan kernel: four phases over `[input][output]` MRAM regions.
#[derive(Debug)]
pub struct ScanKernel;

impl DpuKernel for ScanKernel {
    fn image(&self) -> KernelImage {
        KernelImage::new("scan_kernel", 9 << 10)
            .with_symbol(SymbolDef::u32("n"))
            .with_symbol(SymbolDef::u32("phase"))
            .with_symbol(SymbolDef::u32("base"))
            .with_symbol(SymbolDef::u32("off_out"))
            .with_symbol(SymbolDef::u32("total"))
    }

    #[allow(clippy::too_many_lines)]
    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
        let n = ctx.host_u32("n")? as usize;
        let phase = ctx.host_u32("phase")?;
        let base = ctx.host_u32("base")?;
        let off_out = u64::from(ctx.host_u32("off_out")?);
        let tasklets = ctx.nr_tasklets();

        match phase {
            PHASE_REDUCE => {
                let mut partials = vec![0u32; tasklets];
                ctx.parallel(|t| {
                    let ranges = partition(n, tasklets);
                    let range = ranges[t.id()].clone();
                    t.wram_alloc(1024)?;
                    let mut buf = vec![0u32; 256];
                    let mut acc = 0u32;
                    let mut pos = range.start;
                    while pos < range.end {
                        let take = 256.min(range.end - pos);
                        t.mram_read_u32s((pos * 4) as u64, &mut buf[..take])?;
                        for &v in &buf[..take] {
                            acc = acc.wrapping_add(v);
                        }
                        t.charge(take as u64);
                        pos += take;
                    }
                    partials[t.id()] = acc;
                    Ok(())
                })?;
                let total = partials.iter().fold(0u32, |a, v| a.wrapping_add(*v));
                ctx.set_host_u32("total", total)?;
            }
            PHASE_LOCAL_SCAN | PHASE_SCAN_BASE => {
                // Two-pass scan: tasklet partial sums, then scan each
                // stripe with its exclusive prefix (plus the host base for
                // the SCAN_BASE phase).
                let mut partials = vec![0u32; tasklets];
                ctx.parallel(|t| {
                    let ranges = partition(n, tasklets);
                    let range = ranges[t.id()].clone();
                    t.wram_alloc(1024)?;
                    let mut buf = vec![0u32; 256];
                    let mut acc = 0u32;
                    let mut pos = range.start;
                    while pos < range.end {
                        let take = 256.min(range.end - pos);
                        t.mram_read_u32s((pos * 4) as u64, &mut buf[..take])?;
                        for &v in &buf[..take] {
                            acc = acc.wrapping_add(v);
                        }
                        t.charge(take as u64);
                        pos += take;
                    }
                    partials[t.id()] = acc;
                    Ok(())
                })?;
                let mut prefix = vec![0u32; tasklets];
                let mut acc = if phase == PHASE_SCAN_BASE { base } else { 0 };
                for (i, p) in partials.iter().enumerate() {
                    prefix[i] = acc;
                    acc = acc.wrapping_add(*p);
                }
                let total = partials.iter().fold(0u32, |a, v| a.wrapping_add(*v));
                ctx.parallel(|t| {
                    let ranges = partition(n, tasklets);
                    let range = ranges[t.id()].clone();
                    let mut buf = vec![0u32; 256];
                    let mut run = prefix[t.id()];
                    let mut pos = range.start;
                    while pos < range.end {
                        let take = 256.min(range.end - pos);
                        t.mram_read_u32s((pos * 4) as u64, &mut buf[..take])?;
                        for v in &mut buf[..take] {
                            run = run.wrapping_add(*v);
                            *v = run; // inclusive scan
                        }
                        t.charge(3 * take as u64);
                        t.mram_write_u32s(off_out + (pos * 4) as u64, &buf[..take])?;
                        pos += take;
                    }
                    Ok(())
                })?;
                ctx.set_host_u32("total", total)?;
            }
            PHASE_ADD_BASE => {
                ctx.parallel(|t| {
                    let ranges = partition(n, tasklets);
                    let range = ranges[t.id()].clone();
                    let mut buf = vec![0u32; 256];
                    let mut pos = range.start;
                    while pos < range.end {
                        let take = 256.min(range.end - pos);
                        t.mram_read_u32s(off_out + (pos * 4) as u64, &mut buf[..take])?;
                        for v in &mut buf[..take] {
                            *v = v.wrapping_add(base);
                        }
                        t.charge(2 * take as u64);
                        t.mram_write_u32s(off_out + (pos * 4) as u64, &buf[..take])?;
                        pos += take;
                    }
                    Ok(())
                })?;
            }
            other => {
                return Err(DpuFault::new(format!("unknown scan phase {other}")));
            }
        }
        Ok(())
    }
}

fn run_scan(
    set: &mut DpuSet,
    scale: &ScaleParams,
    seed: u64,
    rss: bool,
    tasklets: usize,
) -> Result<AppRun, SdkError> {
    let n_dpus = set.nr_dpus();
    let ranges = partition(scale.elements, n_dpus);
    let max_per = ranges.iter().map(std::ops::Range::len).max().unwrap_or(0);
    let off_out = ((max_per * 4) as u64).div_ceil(4096) * 4096;
    let input = gen_u32s(seed, scale.elements, 1 << 16);

    set.load("scan_kernel")?;
    set.set_segment(AppSegment::CpuToDpu);
    let bufs: Vec<Vec<u8>> = ranges.iter().map(|r| u32s_to_bytes(&input[r.clone()])).collect();
    let ns: Vec<u32> = ranges.iter().map(|r| r.len() as u32).collect();
    set.scatter_symbol_u32("n", &ns)?;
    set.broadcast_symbol_u32("off_out", off_out as u32)?;
    set.broadcast_symbol_u32("base", 0)?;
    set.broadcast_symbol_u32("phase", if rss { PHASE_REDUCE } else { PHASE_LOCAL_SCAN })?;
    set.push_to_heap(0, &bufs)?;

    set.set_segment(AppSegment::Dpu);
    set.launch(tasklets)?;

    // Inter-DPU: read per-DPU totals, scan them, write bases back.
    set.set_segment(AppSegment::InterDpu);
    let mut bases = Vec::with_capacity(n_dpus);
    let mut acc = 0u32;
    for d in 0..n_dpus {
        bases.push(acc);
        acc = acc.wrapping_add(set.symbol_u32(d, "total")?);
    }
    set.scatter_symbol_u32("base", &bases)?;
    set.broadcast_symbol_u32("phase", if rss { PHASE_SCAN_BASE } else { PHASE_ADD_BASE })?;

    set.set_segment(AppSegment::Dpu);
    set.launch(tasklets)?;

    set.set_segment(AppSegment::DpuToCpu);
    let outs = set.push_from_heap(off_out, max_per * 4)?;
    let mut scanned = Vec::with_capacity(scale.elements);
    for (out, r) in outs.iter().zip(&ranges) {
        scanned.extend_from_slice(&bytes_to_u32s(out)[..r.len()]);
    }

    let mut reference = Vec::with_capacity(input.len());
    let mut run = 0u32;
    for &v in &input {
        run = run.wrapping_add(v);
        reference.push(run);
    }
    let verified = scanned == reference;
    Ok(if verified {
        AppRun::ok(fnv1a_u32(&scanned))
    } else {
        AppRun::mismatch(fnv1a_u32(&scanned))
    })
}

macro_rules! scan_app {
    ($ty:ident, $name:literal, $long:literal, $rss:literal) => {
        /// A prefix-sum decomposition variant.
        #[derive(Debug)]
        pub struct $ty;

        impl PrimApp for $ty {
            fn name(&self) -> &'static str {
                $name
            }

            fn domain(&self) -> &'static str {
                "Parallel primitives"
            }

            fn long_name(&self) -> &'static str {
                $long
            }

            fn register(&self, machine: &PimMachine) {
                machine.register_kernel(std::sync::Arc::new(ScanKernel));
            }

            fn run(
                &self,
                set: &mut DpuSet,
                scale: &ScaleParams,
                seed: u64,
            ) -> Result<AppRun, SdkError> {
                run_scan(set, scale, seed, $rss, self.default_tasklets())
            }
        }
    };
}

scan_app!(ScanSsa, "SCAN-SSA", "Prefix Sum: scan-scan-add", false);
scan_app!(ScanRss, "SCAN-RSS", "Prefix Sum: reduce-scan-scan", true);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::native_vs_vpim;

    #[test]
    fn scan_ssa_native_matches_vpim() {
        native_vs_vpim(&ScanSsa, 4096);
    }

    #[test]
    fn scan_rss_native_matches_vpim() {
        native_vs_vpim(&ScanRss, 4096);
    }

    #[test]
    fn both_decompositions_agree() {
        use simkit::CostModel;
        use std::sync::Arc;
        use upmem_driver::UpmemDriver;
        use upmem_sim::{PimConfig, PimMachine};

        let machine = PimMachine::new(PimConfig::small());
        ScanSsa.register(&machine);
        let driver = Arc::new(UpmemDriver::new(machine));
        let scale = ScaleParams::of(3000);
        let a = {
            let mut set = DpuSet::alloc_native(&driver, 8, CostModel::default()).unwrap();
            ScanSsa.run(&mut set, &scale, 11).unwrap()
        };
        let b = {
            let mut set = DpuSet::alloc_native(&driver, 8, CostModel::default()).unwrap();
            ScanRss.run(&mut set, &scale, 11).unwrap()
        };
        assert!(a.verified && b.verified);
        assert_eq!(a.checksum, b.checksum);
    }
}
