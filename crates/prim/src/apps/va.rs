//! VA — Vector Addition (dense linear algebra).
//!
//! The canonical PrIM workload: `c[i] = a[i] + b[i]`, data-partitioned
//! across DPUs, each tasklet streaming its slice through WRAM in blocks.

use simkit::AppSegment;
use upmem_sdk::{DpuSet, SdkError};
use upmem_sim::error::DpuFault;
use upmem_sim::kernel::{DpuKernel, KernelImage, SymbolDef};
use upmem_sim::{DpuContext, PimMachine};

use crate::common::{
    bytes_to_u32s, fnv1a_u32, gen_u32s, partition, u32s_to_bytes, AppRun, PrimApp, ScaleParams,
};

/// Elements staged per WRAM block.
const BLOCK: usize = 256;

/// The DPU kernel: block-strided `c = a + b`.
#[derive(Debug)]
pub struct VaKernel;

impl DpuKernel for VaKernel {
    fn image(&self) -> KernelImage {
        KernelImage::new("va_kernel", 6 << 10)
            .with_symbol(SymbolDef::u32("n"))
            .with_symbol(SymbolDef::u32("off_b"))
            .with_symbol(SymbolDef::u32("off_c"))
    }

    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
        let n = ctx.host_u32("n")? as usize;
        let off_b = u64::from(ctx.host_u32("off_b")?);
        let off_c = u64::from(ctx.host_u32("off_c")?);
        let tasklets = ctx.nr_tasklets();
        ctx.parallel(|t| {
            let ranges = partition(n, tasklets);
            let range = ranges[t.id()].clone();
            if range.is_empty() {
                return Ok(());
            }
            t.wram_alloc(3 * BLOCK * 4)?;
            let mut a = vec![0u32; BLOCK];
            let mut b = vec![0u32; BLOCK];
            let mut pos = range.start;
            while pos < range.end {
                let take = BLOCK.min(range.end - pos);
                t.mram_read_u32s((pos * 4) as u64, &mut a[..take])?;
                t.mram_read_u32s(off_b + (pos * 4) as u64, &mut b[..take])?;
                for i in 0..take {
                    a[i] = a[i].wrapping_add(b[i]);
                }
                t.charge(2 * take as u64);
                t.mram_write_u32s(off_c + (pos * 4) as u64, &a[..take])?;
                pos += take;
            }
            Ok(())
        })
    }
}

/// The VA application.
#[derive(Debug)]
pub struct Va;

impl PrimApp for Va {
    fn name(&self) -> &'static str {
        "VA"
    }

    fn domain(&self) -> &'static str {
        "Dense linear algebra"
    }

    fn long_name(&self) -> &'static str {
        "Vector Addition"
    }

    fn register(&self, machine: &PimMachine) {
        machine.register_kernel(std::sync::Arc::new(VaKernel));
    }

    fn run(&self, set: &mut DpuSet, scale: &ScaleParams, seed: u64) -> Result<AppRun, SdkError> {
        let n_dpus = set.nr_dpus();
        let ranges = partition(scale.elements, n_dpus);
        let max_per = ranges.iter().map(std::ops::Range::len).max().unwrap_or(0);
        let chunk_bytes = ((max_per * 4) as u64).div_ceil(4096) * 4096;
        let (off_b, off_c) = (chunk_bytes, 2 * chunk_bytes);

        let a = gen_u32s(seed, scale.elements, 1 << 30);
        let b = gen_u32s(seed ^ 0x5bd1_e995, scale.elements, 1 << 30);

        set.load("va_kernel")?;
        set.set_segment(AppSegment::CpuToDpu);
        let bufs_a: Vec<Vec<u8>> =
            ranges.iter().map(|r| u32s_to_bytes(&a[r.clone()])).collect();
        let bufs_b: Vec<Vec<u8>> =
            ranges.iter().map(|r| u32s_to_bytes(&b[r.clone()])).collect();
        let ns: Vec<u32> = ranges.iter().map(|r| r.len() as u32).collect();
        set.scatter_symbol_u32("n", &ns)?;
        set.broadcast_symbol_u32("off_b", off_b as u32)?;
        set.broadcast_symbol_u32("off_c", off_c as u32)?;
        set.push_to_heap(0, &bufs_a)?;
        set.push_to_heap(off_b, &bufs_b)?;

        set.set_segment(AppSegment::Dpu);
        set.launch(self.default_tasklets())?;

        set.set_segment(AppSegment::DpuToCpu);
        let mut c = Vec::with_capacity(scale.elements);
        let outs = set.push_from_heap(off_c, max_per * 4)?;
        for (out, r) in outs.iter().zip(&ranges) {
            c.extend_from_slice(&bytes_to_u32s(out)[..r.len()]);
        }

        let reference: Vec<u32> =
            a.iter().zip(&b).map(|(x, y)| x.wrapping_add(*y)).collect();
        let verified = c == reference;
        Ok(if verified { AppRun::ok(fnv1a_u32(&c)) } else { AppRun::mismatch(fnv1a_u32(&c)) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::native_vs_vpim;

    #[test]
    fn va_native_matches_vpim() {
        native_vs_vpim(&Va, 4096);
    }

    #[test]
    fn va_handles_uneven_partitions() {
        native_vs_vpim(&Va, 1003);
    }
}
