//! BS — Binary Search (databases).
//!
//! Each DPU holds a sorted partition; a batch of queries is broadcast to
//! all DPUs and each reports, per query, the local position of the match
//! (or a miss). The host combines per-partition answers into global
//! positions.

use simkit::AppSegment;
use upmem_sdk::{DpuSet, SdkError};
use upmem_sim::error::DpuFault;
use upmem_sim::kernel::{DpuKernel, KernelImage, SymbolDef};
use upmem_sim::{DpuContext, PimMachine};

use crate::common::{
    bytes_to_u32s, fnv1a_u32, gen_u32s, partition, u32s_to_bytes, AppRun, PrimApp, ScaleParams,
};

/// Queries per run.
pub const NR_QUERIES: usize = 128;
/// Sentinel for "not found in this partition".
pub const MISS: u32 = u32::MAX;

/// The DPU kernel: each tasklet binary-searches a stripe of the query
/// batch against the whole local partition (kept in MRAM, probed with
/// small DMA reads — the classic pointer-chase pattern).
#[derive(Debug)]
pub struct BsKernel;

impl DpuKernel for BsKernel {
    fn image(&self) -> KernelImage {
        KernelImage::new("bs_kernel", 5 << 10)
            .with_symbol(SymbolDef::u32("n"))
            .with_symbol(SymbolDef::u32("nq"))
            .with_symbol(SymbolDef::u32("off_q"))
            .with_symbol(SymbolDef::u32("off_r"))
    }

    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
        let n = ctx.host_u32("n")? as usize;
        let nq = ctx.host_u32("nq")? as usize;
        let off_q = u64::from(ctx.host_u32("off_q")?);
        let off_r = u64::from(ctx.host_u32("off_r")?);
        let tasklets = ctx.nr_tasklets();
        ctx.parallel(|t| {
            let stripes = partition(nq, tasklets);
            let stripe = stripes[t.id()].clone();
            if stripe.is_empty() {
                return Ok(());
            }
            t.wram_alloc(1024)?;
            let mut queries = vec![0u32; stripe.len()];
            t.mram_read_u32s(off_q + (stripe.start * 4) as u64, &mut queries)?;
            let mut results = vec![MISS; stripe.len()];
            for (k, q) in queries.iter().enumerate() {
                let (mut lo, mut hi) = (0usize, n);
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    let mut cell = [0u32; 1];
                    t.mram_read_u32s((mid * 4) as u64, &mut cell)?;
                    t.charge(8);
                    if cell[0] < *q {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                if lo < n {
                    let mut cell = [0u32; 1];
                    t.mram_read_u32s((lo * 4) as u64, &mut cell)?;
                    if cell[0] == *q {
                        results[k] = lo as u32;
                    }
                }
            }
            t.mram_write_u32s(off_r + (stripe.start * 4) as u64, &results)?;
            Ok(())
        })
    }
}

/// The BS application.
#[derive(Debug)]
pub struct Bs;

impl PrimApp for Bs {
    fn name(&self) -> &'static str {
        "BS"
    }

    fn domain(&self) -> &'static str {
        "Databases"
    }

    fn long_name(&self) -> &'static str {
        "Binary Search"
    }

    fn register(&self, machine: &PimMachine) {
        machine.register_kernel(std::sync::Arc::new(BsKernel));
    }

    fn run(&self, set: &mut DpuSet, scale: &ScaleParams, seed: u64) -> Result<AppRun, SdkError> {
        let n_dpus = set.nr_dpus();
        let mut sorted = gen_u32s(seed, scale.elements, 1 << 24);
        sorted.sort_unstable();
        sorted.dedup();
        let total = sorted.len();
        let ranges = partition(total, n_dpus);
        let max_per = ranges.iter().map(std::ops::Range::len).max().unwrap_or(0);
        let off_q = ((max_per * 4) as u64).div_ceil(4096) * 4096;
        let off_r = off_q + 4096;

        // Half the queries hit, half are random probes.
        let mut queries = Vec::with_capacity(NR_QUERIES);
        let probes = gen_u32s(seed ^ 0x9e37, NR_QUERIES, 1 << 24);
        for (i, p) in probes.iter().enumerate() {
            if i % 2 == 0 && !sorted.is_empty() {
                queries.push(sorted[(i * 31) % total]);
            } else {
                queries.push(*p);
            }
        }

        set.load("bs_kernel")?;
        set.set_segment(AppSegment::CpuToDpu);
        let part_bufs: Vec<Vec<u8>> =
            ranges.iter().map(|r| u32s_to_bytes(&sorted[r.clone()])).collect();
        let q_bufs: Vec<Vec<u8>> = (0..n_dpus).map(|_| u32s_to_bytes(&queries)).collect();
        let ns: Vec<u32> = ranges.iter().map(|r| r.len() as u32).collect();
        set.scatter_symbol_u32("n", &ns)?;
        set.broadcast_symbol_u32("nq", NR_QUERIES as u32)?;
        set.broadcast_symbol_u32("off_q", off_q as u32)?;
        set.broadcast_symbol_u32("off_r", off_r as u32)?;
        set.push_to_heap(0, &part_bufs)?;
        set.push_to_heap(off_q, &q_bufs)?;

        set.set_segment(AppSegment::Dpu);
        set.launch(self.default_tasklets())?;

        set.set_segment(AppSegment::DpuToCpu);
        let outs = set.push_from_heap(off_r, NR_QUERIES * 4)?;
        let mut found = vec![MISS; NR_QUERIES];
        for (d, out) in outs.iter().enumerate() {
            let locals = bytes_to_u32s(out);
            for (q, &local) in locals.iter().enumerate().take(NR_QUERIES) {
                if local != MISS {
                    found[q] = (ranges[d].start + local as usize) as u32;
                }
            }
        }

        let reference: Vec<u32> = queries
            .iter()
            .map(|q| sorted.binary_search(q).map_or(MISS, |i| i as u32))
            .collect();
        let verified = found == reference;
        Ok(if verified { AppRun::ok(fnv1a_u32(&found)) } else { AppRun::mismatch(fnv1a_u32(&found)) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::native_vs_vpim;

    #[test]
    fn bs_native_matches_vpim() {
        native_vs_vpim(&Bs, 4096);
    }
}
