//! RED — Reduction (parallel primitives).
//!
//! Each DPU reduces its partition; tasklet partial sums land in MRAM and
//! the host's Inter-DPU step fetches them with one small (256 B)
//! `read-from-rank` per DPU — exactly the access the paper flags for
//! triggering the prefetch cache's over-fetch (33×/145× Inter-DPU overhead
//! at 60/480 DPUs, Takeaway 1).

use simkit::AppSegment;
use upmem_sdk::{DpuSet, SdkError};
use upmem_sim::error::DpuFault;
use upmem_sim::kernel::{DpuKernel, KernelImage, SymbolDef};
use upmem_sim::{DpuContext, PimMachine};

use crate::common::{
    bytes_to_u32s, fnv1a_u32, gen_u32s, partition, u32s_to_bytes, AppRun, PrimApp, ScaleParams,
};

/// Tasklet partials stored per DPU (64 × 4 B = the paper's 256 B read).
pub const PARTIAL_SLOTS: usize = 64;

/// The DPU kernel: block-strided sum, one partial per tasklet.
#[derive(Debug)]
pub struct RedKernel;

impl DpuKernel for RedKernel {
    fn image(&self) -> KernelImage {
        KernelImage::new("red_kernel", 5 << 10)
            .with_symbol(SymbolDef::u32("n"))
            .with_symbol(SymbolDef::u32("off_out"))
    }

    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
        let n = ctx.host_u32("n")? as usize;
        let off_out = u64::from(ctx.host_u32("off_out")?);
        let tasklets = ctx.nr_tasklets();
        let mut partials = vec![0u32; PARTIAL_SLOTS];
        ctx.parallel(|t| {
            let ranges = partition(n, tasklets);
            let range = ranges[t.id()].clone();
            if range.is_empty() {
                return Ok(());
            }
            t.wram_alloc(1024)?;
            let mut buf = vec![0u32; 256];
            let mut pos = range.start;
            let mut acc = 0u32;
            while pos < range.end {
                let take = 256.min(range.end - pos);
                t.mram_read_u32s((pos * 4) as u64, &mut buf[..take])?;
                for &v in &buf[..take] {
                    acc = acc.wrapping_add(v);
                }
                t.charge(take as u64);
                pos += take;
            }
            partials[t.id()] = acc;
            Ok(())
        })?;
        ctx.single(|t| {
            t.mram_write_u32s(off_out, &partials)?;
            Ok(())
        })
    }
}

/// The RED application.
#[derive(Debug)]
pub struct Red;

impl PrimApp for Red {
    fn name(&self) -> &'static str {
        "RED"
    }

    fn domain(&self) -> &'static str {
        "Parallel primitives"
    }

    fn long_name(&self) -> &'static str {
        "Reduction"
    }

    fn register(&self, machine: &PimMachine) {
        machine.register_kernel(std::sync::Arc::new(RedKernel));
    }

    fn run(&self, set: &mut DpuSet, scale: &ScaleParams, seed: u64) -> Result<AppRun, SdkError> {
        let n_dpus = set.nr_dpus();
        let ranges = partition(scale.elements, n_dpus);
        let max_per = ranges.iter().map(std::ops::Range::len).max().unwrap_or(0);
        let off_out = ((max_per * 4) as u64).div_ceil(4096) * 4096;
        let input = gen_u32s(seed, scale.elements, 1 << 20);

        set.load("red_kernel")?;
        set.set_segment(AppSegment::CpuToDpu);
        let bufs: Vec<Vec<u8>> =
            ranges.iter().map(|r| u32s_to_bytes(&input[r.clone()])).collect();
        let ns: Vec<u32> = ranges.iter().map(|r| r.len() as u32).collect();
        set.scatter_symbol_u32("n", &ns)?;
        set.broadcast_symbol_u32("off_out", off_out as u32)?;
        set.push_to_heap(0, &bufs)?;

        set.set_segment(AppSegment::Dpu);
        set.launch(self.default_tasklets())?;

        // Inter-DPU: one 256 B read per DPU (the paper's prefetch trap).
        set.set_segment(AppSegment::InterDpu);
        let mut total = 0u32;
        for d in 0..n_dpus {
            let raw = set.copy_from_heap(d, off_out, PARTIAL_SLOTS * 4)?;
            for v in bytes_to_u32s(&raw) {
                total = total.wrapping_add(v);
            }
        }

        set.set_segment(AppSegment::DpuToCpu);
        let reference = input.iter().fold(0u32, |a, v| a.wrapping_add(*v));
        let verified = total == reference;
        Ok(if verified {
            AppRun::ok(fnv1a_u32(&[total]))
        } else {
            AppRun::mismatch(fnv1a_u32(&[total]))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::native_vs_vpim;

    #[test]
    fn red_native_matches_vpim() {
        native_vs_vpim(&Red, 8192);
    }
}
