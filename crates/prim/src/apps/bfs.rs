//! BFS — Breadth-First Search (graph processing).
//!
//! Level-synchronous pull-style BFS. Vertices are partitioned across DPUs
//! (each DPU holds the CSR adjacency of its vertices); every level the
//! host broadcasts the global frontier bitmap, launches the kernel, then
//! gathers each DPU's next-frontier bits and unions them — the "frequent
//! synchronization handshakes among the DPUs" that give BFS its 3×
//! Inter-DPU overhead in the paper (§5.2, fourth observation).

use simkit::AppSegment;
use upmem_sdk::{DpuSet, SdkError};
use upmem_sim::error::DpuFault;
use upmem_sim::kernel::{DpuKernel, KernelImage, SymbolDef};
use upmem_sim::{DpuContext, PimMachine};

use crate::common::{fnv1a_u32, partition, u32s_to_bytes, AppRun, PrimApp, ScaleParams};
use crate::common::bytes_to_u32s;
use simkit::SimRng;

/// Average out-degree of the random graph.
pub const DEGREE: usize = 4;
/// Level marker for unvisited vertices.
pub const UNSET: u32 = u32::MAX;

/// MRAM layout offsets are passed via symbols:
/// `[row_ptr][col_idx][levels][frontier bitmap][next bitmap]`.
#[derive(Debug)]
pub struct BfsKernel;

impl DpuKernel for BfsKernel {
    fn image(&self) -> KernelImage {
        KernelImage::new("bfs_kernel", 12 << 10)
            .with_symbol(SymbolDef::u32("n_local"))
            .with_symbol(SymbolDef::u32("v_base"))
            .with_symbol(SymbolDef::u32("level"))
            .with_symbol(SymbolDef::u32("off_col"))
            .with_symbol(SymbolDef::u32("off_lvl"))
            .with_symbol(SymbolDef::u32("off_front"))
            .with_symbol(SymbolDef::u32("off_next"))
            .with_symbol(SymbolDef::u32("changed"))
    }

    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
        let n_local = ctx.host_u32("n_local")? as usize;
        let v_base = ctx.host_u32("v_base")? as usize;
        let level = ctx.host_u32("level")?;
        let off_col = u64::from(ctx.host_u32("off_col")?);
        let off_lvl = u64::from(ctx.host_u32("off_lvl")?);
        let off_front = u64::from(ctx.host_u32("off_front")?);
        let off_next = u64::from(ctx.host_u32("off_next")?);
        ctx.set_host_u32("changed", 0)?;
        let tasklets = ctx.nr_tasklets();
        let mut changed_any = vec![0u32; tasklets];
        ctx.parallel(|t| {
            let stripes = partition(n_local, tasklets);
            let stripe = stripes[t.id()].clone();
            if stripe.is_empty() {
                return Ok(());
            }
            t.wram_alloc(4096)?;
            // Load this stripe's row pointers, levels and next-bitmap words.
            let mut row_ptr = vec![0u32; stripe.len() + 1];
            t.mram_read_u32s((stripe.start * 4) as u64, &mut row_ptr)?;
            let mut levels = vec![0u32; stripe.len()];
            t.mram_read_u32s(off_lvl + (stripe.start * 4) as u64, &mut levels)?;
            let mut changed = 0u32;
            for (k, lvl) in levels.iter_mut().enumerate() {
                if *lvl != UNSET {
                    continue;
                }
                let lo = row_ptr[k] as usize;
                let hi = row_ptr[k + 1] as usize;
                let deg = hi - lo;
                if deg == 0 {
                    continue;
                }
                let mut neigh = vec![0u32; deg];
                t.mram_read_u32s(off_col + (lo * 4) as u64, &mut neigh)?;
                // Pull: in the frontier if any neighbor is in the frontier.
                let mut hit = false;
                for u in &neigh {
                    let word = u / 32;
                    let mut cell = [0u32; 1];
                    t.mram_read_u32s(off_front + u64::from(word) * 4, &mut cell)?;
                    t.charge(6);
                    if cell[0] & (1 << (u % 32)) != 0 {
                        hit = true;
                        break;
                    }
                }
                if hit {
                    *lvl = level + 1;
                    changed = 1;
                    let v_global = (v_base + stripe.start + k) as u32;
                    let word = v_global / 32;
                    // Tasklet-exclusive vertices may share bitmap words
                    // across stripe boundaries; read-modify-write is safe
                    // here because stripes are contiguous and words are
                    // revisited only within one tasklet... except at the
                    // edges, which the host tolerates by re-unioning.
                    let mut cell = [0u32; 1];
                    t.mram_read_u32s(off_next + u64::from(word) * 4, &mut cell)?;
                    cell[0] |= 1 << (v_global % 32);
                    t.mram_write_u32s(off_next + u64::from(word) * 4, &cell)?;
                }
                t.charge(8);
            }
            if changed != 0 {
                changed_any[t.id()] = 1;
            }
            t.mram_write_u32s(off_lvl + (stripe.start * 4) as u64, &levels)?;
            Ok(())
        })?;
        if changed_any.iter().any(|c| *c != 0) {
            ctx.set_host_u32("changed", 1)?;
        }
        Ok(())
    }
}

/// The BFS application.
#[derive(Debug)]
pub struct Bfs;

impl PrimApp for Bfs {
    fn name(&self) -> &'static str {
        "BFS"
    }

    fn domain(&self) -> &'static str {
        "Graph processing"
    }

    fn long_name(&self) -> &'static str {
        "Breadth-First Search"
    }

    fn register(&self, machine: &PimMachine) {
        machine.register_kernel(std::sync::Arc::new(BfsKernel));
    }

    #[allow(clippy::too_many_lines)]
    fn run(&self, set: &mut DpuSet, scale: &ScaleParams, seed: u64) -> Result<AppRun, SdkError> {
        let v_total = scale.elements.max(set.nr_dpus() * 8).min(1 << 16);
        let n_dpus = set.nr_dpus();
        let ranges = partition(v_total, n_dpus);
        let words = v_total.div_ceil(32);

        // Random graph with a guaranteed path backbone so BFS reaches far.
        let mut rng = SimRng::seeded(seed);
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); v_total];
        for (v, list) in adj.iter_mut().enumerate() {
            if v + 1 < v_total && rng.chance(0.8) {
                list.push((v + 1) as u32);
            }
            for _ in 0..DEGREE - 1 {
                list.push(rng.u64_below(v_total as u64) as u32);
            }
            list.sort_unstable();
            list.dedup();
        }
        // Pull-BFS needs reverse edges: build in-adjacency.
        let mut radj: Vec<Vec<u32>> = vec![Vec::new(); v_total];
        for (v, list) in adj.iter().enumerate() {
            for &u in list {
                radj[u as usize].push(v as u32);
            }
        }

        set.load("bfs_kernel")?;
        set.set_segment(AppSegment::CpuToDpu);
        let max_local = ranges.iter().map(std::ops::Range::len).max().unwrap_or(0);
        let max_edges = ranges
            .iter()
            .map(|r| radj[r.clone()].iter().map(Vec::len).sum::<usize>())
            .max()
            .unwrap_or(0);
        let ptr_bytes = (((max_local + 1) * 4) as u64).div_ceil(4096) * 4096;
        let col_bytes = ((max_edges.max(1) * 4) as u64).div_ceil(4096) * 4096;
        let lvl_bytes = ((max_local * 4) as u64).div_ceil(4096) * 4096;
        let map_bytes = ((words * 4) as u64).div_ceil(4096) * 4096;
        let off_col = ptr_bytes;
        let off_lvl = off_col + col_bytes;
        let off_front = off_lvl + lvl_bytes;
        let off_next = off_front + map_bytes;

        // Faithful PrIM detail: serial CPU-DPU distribution (§5.2).
        for (d, r) in ranges.iter().enumerate() {
            let mut ptr = vec![0u32; r.len() + 1];
            let mut cols = Vec::new();
            for (k, v) in r.clone().enumerate() {
                ptr[k] = cols.len() as u32;
                cols.extend_from_slice(&radj[v]);
                ptr[k + 1] = cols.len() as u32;
            }
            set.copy_to_heap(d, 0, &u32s_to_bytes(&ptr))?;
            if !cols.is_empty() {
                set.copy_to_heap(d, off_col, &u32s_to_bytes(&cols))?;
            }
            let levels = vec![UNSET; r.len()];
            set.copy_to_heap(d, off_lvl, &u32s_to_bytes(&levels))?;
        }
        let n_locals: Vec<u32> = ranges.iter().map(|r| r.len() as u32).collect();
        let v_bases: Vec<u32> = ranges.iter().map(|r| r.start as u32).collect();
        set.scatter_symbol_u32("n_local", &n_locals)?;
        set.scatter_symbol_u32("v_base", &v_bases)?;
        set.broadcast_symbol_u32("off_col", off_col as u32)?;
        set.broadcast_symbol_u32("off_lvl", off_lvl as u32)?;
        set.broadcast_symbol_u32("off_front", off_front as u32)?;
        set.broadcast_symbol_u32("off_next", off_next as u32)?;
        // Root = vertex 0.
        if !ranges.is_empty() && ranges[0].len() > 0 {
            set.set_symbol_u32(0, "n_local", ranges[0].len() as u32)?;
        }
        let mut frontier = vec![0u32; words];
        frontier[0] |= 1;
        let mut levels_root_fix = vec![UNSET; ranges[0].len()];
        levels_root_fix[0] = 0;
        set.copy_to_heap(0, off_lvl, &u32s_to_bytes(&levels_root_fix))?;

        // Level loop: the Inter-DPU handshakes.
        let zero_map = vec![0u32; words];
        let mut level = 0u32;
        loop {
            set.set_segment(AppSegment::InterDpu);
            let front_bufs: Vec<Vec<u8>> =
                (0..n_dpus).map(|_| u32s_to_bytes(&frontier)).collect();
            set.push_to_heap(off_front, &front_bufs)?;
            let zero_bufs: Vec<Vec<u8>> =
                (0..n_dpus).map(|_| u32s_to_bytes(&zero_map)).collect();
            set.push_to_heap(off_next, &zero_bufs)?;
            set.broadcast_symbol_u32("level", level)?;
            set.set_segment(AppSegment::Dpu);
            set.launch(self.default_tasklets())?;
            set.set_segment(AppSegment::InterDpu);
            let mut next = vec![0u32; words];
            let mut any = false;
            for d in 0..n_dpus {
                if set.symbol_u32(d, "changed")? == 0 {
                    continue;
                }
                let raw = set.copy_from_heap(d, off_next, words * 4)?;
                for (w, bits) in bytes_to_u32s(&raw).iter().enumerate() {
                    next[w] |= bits;
                    any = any || *bits != 0;
                }
            }
            if !any {
                break;
            }
            frontier = next;
            level += 1;
            if level as usize > v_total {
                break; // defensive: no graph needs more levels than vertices
            }
        }

        // Retrieve levels per DPU.
        set.set_segment(AppSegment::DpuToCpu);
        let mut levels = Vec::with_capacity(v_total);
        let outs = set.push_from_heap(off_lvl, max_local * 4)?;
        for (out, r) in outs.iter().zip(&ranges) {
            levels.extend_from_slice(&bytes_to_u32s(out)[..r.len()]);
        }

        // CPU reference BFS over the forward adjacency.
        let mut reference = vec![UNSET; v_total];
        reference[0] = 0;
        let mut queue = std::collections::VecDeque::from([0usize]);
        while let Some(v) = queue.pop_front() {
            for &u in &adj[v] {
                if reference[u as usize] == UNSET {
                    reference[u as usize] = reference[v] + 1;
                    queue.push_back(u as usize);
                }
            }
        }
        let verified = levels == reference;
        Ok(if verified {
            AppRun::ok(fnv1a_u32(&levels))
        } else {
            AppRun::mismatch(fnv1a_u32(&levels))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::native_vs_vpim;

    #[test]
    fn bfs_native_matches_vpim() {
        native_vs_vpim(&Bfs, 512);
    }
}
