//! HST-S / HST-L — Image histogram, short and long (image processing).
//!
//! Each DPU histograms its pixel partition. HST-S uses few bins (each
//! tasklet keeps a private WRAM histogram, merged at the barrier); HST-L
//! uses many bins (the histogram lives in MRAM and tasklets merge
//! sequentially). The DPU-CPU step reads each DPU's histogram — a small
//! `read-from-rank` that trips vPIM's prefetch over-fetch (Takeaway 1).

use simkit::AppSegment;
use upmem_sdk::{DpuSet, SdkError};
use upmem_sim::error::DpuFault;
use upmem_sim::kernel::{DpuKernel, KernelImage, SymbolDef};
use upmem_sim::{DpuContext, PimMachine};

use crate::common::{
    bytes_to_u32s, fnv1a_u32, gen_u32s, partition, u32s_to_bytes, AppRun, PrimApp, ScaleParams,
};

/// Bin count of the short-histogram variant.
pub const BINS_S: usize = 64;
/// Bin count of the long-histogram variant.
pub const BINS_L: usize = 4096;
/// Pixel depth (12-bit grayscale, as in PrIM's input).
pub const PIXEL_MAX: u32 = 1 << 12;

/// The histogram kernel, parameterized by bin count through a symbol.
#[derive(Debug)]
pub struct HstKernel {
    name: &'static str,
}

impl HstKernel {
    /// The short-variant kernel.
    #[must_use]
    pub fn short_variant() -> Self {
        HstKernel { name: "hst_s_kernel" }
    }

    /// The long-variant kernel.
    #[must_use]
    pub fn long_variant() -> Self {
        HstKernel { name: "hst_l_kernel" }
    }
}

impl DpuKernel for HstKernel {
    fn image(&self) -> KernelImage {
        KernelImage::new(self.name, 8 << 10)
            .with_symbol(SymbolDef::u32("n"))
            .with_symbol(SymbolDef::u32("bins"))
            .with_symbol(SymbolDef::u32("off_hist"))
    }

    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
        let n = ctx.host_u32("n")? as usize;
        let bins = ctx.host_u32("bins")? as usize;
        let off_hist = u64::from(ctx.host_u32("off_hist")?);
        let tasklets = ctx.nr_tasklets();
        let small = bins * 4 <= 2048; // WRAM-resident per-tasklet histograms
        let mut partials: Vec<Vec<u32>> = vec![vec![0u32; bins]; tasklets];
        ctx.parallel(|t| {
            let ranges = partition(n, tasklets);
            let range = ranges[t.id()].clone();
            if range.is_empty() {
                return Ok(());
            }
            if small {
                t.wram_alloc(bins * 4 + 1024)?;
            } else {
                t.wram_alloc(1024)?;
            }
            let mut buf = vec![0u32; 256];
            let mut pos = range.start;
            while pos < range.end {
                let take = 256.min(range.end - pos);
                t.mram_read_u32s((pos * 4) as u64, &mut buf[..take])?;
                for &px in &buf[..take] {
                    let bin = (px as usize * bins) / PIXEL_MAX as usize;
                    partials[t.id()][bin.min(bins - 1)] += 1;
                }
                // HST-L pays extra instructions for MRAM-resident bins.
                t.charge(if small { 4 } else { 9 } * take as u64);
                pos += take;
            }
            Ok(())
        })?;
        // Barrier: merge tasklet histograms and store to MRAM.
        ctx.single(|t| {
            let mut merged = vec![0u32; bins];
            for p in &partials {
                for (m, v) in merged.iter_mut().zip(p) {
                    *m += v;
                }
            }
            t.charge((bins * partials.len()) as u64);
            t.mram_write_u32s(off_hist, &merged)?;
            Ok(())
        })
    }
}

macro_rules! hst_app {
    ($ty:ident, $name:literal, $long:literal, $kernel:literal, $bins:expr, $ctor:ident) => {
        /// The histogram application variant.
        #[derive(Debug)]
        pub struct $ty;

        impl PrimApp for $ty {
            fn name(&self) -> &'static str {
                $name
            }

            fn domain(&self) -> &'static str {
                "Image processing"
            }

            fn long_name(&self) -> &'static str {
                $long
            }

            fn register(&self, machine: &PimMachine) {
                machine.register_kernel(std::sync::Arc::new(HstKernel::$ctor()));
            }

            fn run(
                &self,
                set: &mut DpuSet,
                scale: &ScaleParams,
                seed: u64,
            ) -> Result<AppRun, SdkError> {
                run_hst(set, scale, seed, $kernel, $bins)
            }
        }
    };
}

hst_app!(HstS, "HST-S", "Image histogram short", "hst_s_kernel", BINS_S, short_variant);
hst_app!(HstL, "HST-L", "Image histogram long", "hst_l_kernel", BINS_L, long_variant);

fn run_hst(
    set: &mut DpuSet,
    scale: &ScaleParams,
    seed: u64,
    kernel: &str,
    bins: usize,
) -> Result<AppRun, SdkError> {
    let n_dpus = set.nr_dpus();
    let ranges = partition(scale.elements, n_dpus);
    let max_per = ranges.iter().map(std::ops::Range::len).max().unwrap_or(0);
    let off_hist = ((max_per * 4) as u64).div_ceil(4096) * 4096;
    let pixels = gen_u32s(seed, scale.elements, PIXEL_MAX);

    set.load(kernel)?;
    set.set_segment(AppSegment::CpuToDpu);
    let bufs: Vec<Vec<u8>> = ranges.iter().map(|r| u32s_to_bytes(&pixels[r.clone()])).collect();
    let ns: Vec<u32> = ranges.iter().map(|r| r.len() as u32).collect();
    set.scatter_symbol_u32("n", &ns)?;
    set.broadcast_symbol_u32("bins", bins as u32)?;
    set.broadcast_symbol_u32("off_hist", off_hist as u32)?;
    set.push_to_heap(0, &bufs)?;

    set.set_segment(AppSegment::Dpu);
    set.launch(16)?;

    // DPU-CPU: small per-DPU histogram reads (prefetch territory).
    set.set_segment(AppSegment::DpuToCpu);
    let mut hist = vec![0u32; bins];
    for d in 0..n_dpus {
        let raw = set.copy_from_heap(d, off_hist, bins * 4)?;
        for (h, v) in hist.iter_mut().zip(bytes_to_u32s(&raw)) {
            *h += v;
        }
    }

    let mut reference = vec![0u32; bins];
    for &px in &pixels {
        let bin = (px as usize * bins) / PIXEL_MAX as usize;
        reference[bin.min(bins - 1)] += 1;
    }
    let verified = hist == reference;
    Ok(if verified { AppRun::ok(fnv1a_u32(&hist)) } else { AppRun::mismatch(fnv1a_u32(&hist)) })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::native_vs_vpim;

    #[test]
    fn hst_s_native_matches_vpim() {
        native_vs_vpim(&HstS, 4096);
    }

    #[test]
    fn hst_l_native_matches_vpim() {
        native_vs_vpim(&HstL, 4096);
    }

    #[test]
    fn bins_cover_pixel_range() {
        // The bin mapping must be total over the pixel domain.
        for px in [0u32, 1, PIXEL_MAX - 1] {
            let bin = (px as usize * BINS_S) / PIXEL_MAX as usize;
            assert!(bin.min(BINS_S - 1) < BINS_S);
        }
    }
}
