//! TRNS — Matrix Transposition (parallel primitives).
//!
//! The other worst case of the paper: the host performs the tiled layout
//! transformation, writing the matrix tile row by tile row — a huge number
//! of small `write-to-rank` operations (>980 000 ops of ~512 B at testbed
//! scale). Request batching is the optimization that saves this workload.

use simkit::AppSegment;
use upmem_sdk::{DpuSet, SdkError};
use upmem_sim::error::DpuFault;
use upmem_sim::kernel::{DpuKernel, KernelImage, SymbolDef};
use upmem_sim::{DpuContext, PimMachine};

use crate::common::{
    bytes_to_u32s, fnv1a_u32, gen_u32s, partition, u32s_to_bytes, AppRun, PrimApp, ScaleParams,
};

/// Tile edge (tiles are `TILE × TILE` elements).
pub const TILE: usize = 16;

/// The DPU kernel: transposes every locally stored tile in place
/// (`[tiles_in][tiles_out]` MRAM regions).
#[derive(Debug)]
pub struct TrnsKernel;

impl DpuKernel for TrnsKernel {
    fn image(&self) -> KernelImage {
        KernelImage::new("trns_kernel", 7 << 10)
            .with_symbol(SymbolDef::u32("tiles"))
            .with_symbol(SymbolDef::u32("off_out"))
    }

    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
        let tiles = ctx.host_u32("tiles")? as usize;
        let off_out = u64::from(ctx.host_u32("off_out")?);
        let tasklets = ctx.nr_tasklets();
        let tile_words = TILE * TILE;
        ctx.parallel(|t| {
            let stripes = partition(tiles, tasklets);
            let stripe = stripes[t.id()].clone();
            if stripe.is_empty() {
                return Ok(());
            }
            t.wram_alloc(2 * tile_words * 4)?;
            let mut tile = vec![0u32; tile_words];
            let mut out = vec![0u32; tile_words];
            for k in stripe {
                t.mram_read_u32s((k * tile_words * 4) as u64, &mut tile)?;
                for r in 0..TILE {
                    for c in 0..TILE {
                        out[c * TILE + r] = tile[r * TILE + c];
                    }
                }
                t.charge(2 * tile_words as u64);
                t.mram_write_u32s(off_out + (k * tile_words * 4) as u64, &out)?;
            }
            Ok(())
        })
    }
}

/// The TRNS application.
#[derive(Debug)]
pub struct Trns;

impl PrimApp for Trns {
    fn name(&self) -> &'static str {
        "TRNS"
    }

    fn domain(&self) -> &'static str {
        "Parallel primitives"
    }

    fn long_name(&self) -> &'static str {
        "Matrix Transposition"
    }

    fn register(&self, machine: &PimMachine) {
        machine.register_kernel(std::sync::Arc::new(TrnsKernel));
    }

    fn run(&self, set: &mut DpuSet, scale: &ScaleParams, seed: u64) -> Result<AppRun, SdkError> {
        let n_dpus = set.nr_dpus();
        // Square matrix of whole tiles sized from the element budget.
        let side_tiles = (((scale.elements as f64).sqrt() as usize) / TILE).max(1);
        let side = side_tiles * TILE;
        let total_tiles = side_tiles * side_tiles;
        let ranges = partition(total_tiles, n_dpus);
        let max_tiles = ranges.iter().map(std::ops::Range::len).max().unwrap_or(0);
        let tile_words = TILE * TILE;
        let off_out = ((max_tiles * tile_words * 4) as u64).div_ceil(4096) * 4096;

        let matrix = gen_u32s(seed, side * side, 1 << 24);

        set.load("trns_kernel")?;
        // CPU-DPU: the tiled layout transformation — one small write per
        // tile ROW (TILE elements = 64 B), the paper's torrent of small
        // writes.
        set.set_segment(AppSegment::CpuToDpu);
        let tiles: Vec<u32> = ranges.iter().map(|r| r.len() as u32).collect();
        set.scatter_symbol_u32("tiles", &tiles)?;
        set.broadcast_symbol_u32("off_out", off_out as u32)?;
        for (d, r) in ranges.iter().enumerate() {
            for (slot, k) in r.clone().enumerate() {
                let (tr, tc) = (k / side_tiles, k % side_tiles);
                for row in 0..TILE {
                    let src = (tr * TILE + row) * side + tc * TILE;
                    let dst = (slot * tile_words + row * TILE) * 4;
                    set.copy_to_heap(
                        d,
                        dst as u64,
                        &u32s_to_bytes(&matrix[src..src + TILE]),
                    )?;
                }
            }
        }

        set.set_segment(AppSegment::Dpu);
        set.launch(self.default_tasklets())?;

        // DPU-CPU: gather transposed tiles and reassemble the matrix.
        set.set_segment(AppSegment::DpuToCpu);
        let outs = set.push_from_heap(off_out, max_tiles * tile_words * 4)?;
        let mut result = vec![0u32; side * side];
        for ((out, r), _) in outs.iter().zip(&ranges).zip(0..) {
            let words = bytes_to_u32s(out);
            for (slot, k) in r.clone().enumerate() {
                // Tile (tr, tc) transposed lands at (tc, tr) in the output.
                let (tr, tc) = (k / side_tiles, k % side_tiles);
                for row in 0..TILE {
                    for col in 0..TILE {
                        let v = words[slot * tile_words + row * TILE + col];
                        result[(tc * TILE + row) * side + tr * TILE + col] = v;
                    }
                }
            }
        }

        let mut reference = vec![0u32; side * side];
        for r in 0..side {
            for c in 0..side {
                reference[c * side + r] = matrix[r * side + c];
            }
        }
        let verified = result == reference;
        Ok(if verified {
            AppRun::ok(fnv1a_u32(&result))
        } else {
            AppRun::mismatch(fnv1a_u32(&result))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::native_vs_vpim;

    #[test]
    fn trns_native_matches_vpim() {
        native_vs_vpim(&Trns, 4096);
    }

    #[test]
    fn trns_single_dpu() {
        use simkit::CostModel;
        use std::sync::Arc;
        use upmem_driver::UpmemDriver;
        use upmem_sim::{PimConfig, PimMachine};
        let machine = PimMachine::new(PimConfig::small());
        Trns.register(&machine);
        let driver = Arc::new(UpmemDriver::new(machine));
        let mut set = DpuSet::alloc_native(&driver, 1, CostModel::default()).unwrap();
        let run = Trns.run(&mut set, &ScaleParams::of(1024), 3).unwrap();
        assert!(run.verified);
    }
}
