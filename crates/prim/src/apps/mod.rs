//! The 16 PrIM applications (Table 1).

pub mod bfs;
pub mod bs;
pub mod gemv;
pub mod hst;
pub mod mlp;
pub mod nw;
pub mod red;
pub mod scan;
pub mod sel;
pub mod spmv;
pub mod trns;
pub mod ts;
pub mod uni;
pub mod va;

#[cfg(test)]
pub(crate) mod testutil {
    use std::sync::Arc;

    use simkit::CostModel;
    use upmem_driver::UpmemDriver;
    use upmem_sdk::DpuSet;
    use upmem_sim::{PimConfig, PimMachine};

    use crate::common::{AppRun, PrimApp, ScaleParams};

    /// Runs an app natively and under full vPIM on a small machine and
    /// asserts both verify and agree.
    pub(crate) fn native_vs_vpim(app: &dyn PrimApp, elements: usize) {
        let machine = PimMachine::new(PimConfig::small());
        app.register(&machine);
        let driver = Arc::new(UpmemDriver::new(machine));
        let scale = ScaleParams::of(elements);

        let native: AppRun = {
            let mut set = DpuSet::alloc_native(&driver, 8, CostModel::default()).unwrap();
            app.run(&mut set, &scale, 7).unwrap()
        };
        assert!(native.verified, "{}: native run failed verification", app.name());

        let sys = vpim::VpimSystem::start(driver, vpim::VpimConfig::full(), vpim::StartOpts::default());
        let vm = sys.launch(vpim::TenantSpec::new("vm-prim")).unwrap();
        let mut set = DpuSet::alloc_vm(vm.frontends(), 8, CostModel::default()).unwrap();
        let virt = app.run(&mut set, &scale, 7).unwrap();
        assert!(virt.verified, "{}: vPIM run failed verification", app.name());
        assert_eq!(native.checksum, virt.checksum, "{}: transports disagree", app.name());
        // Virtualization costs messages; native costs none.
        assert!(set.timeline().messages() > 0);
        sys.shutdown();
    }
}
