//! MLP — Multilayer Perceptron inference (neural networks).
//!
//! Data-parallel inference: the sample batch is partitioned across DPUs;
//! layer weights are broadcast before each layer's launch (the per-layer
//! host round trips form the Inter-DPU step). Arithmetic is integer with a
//! modular activation so DPU and CPU results match bit for bit.

use simkit::AppSegment;
use upmem_sdk::{DpuSet, SdkError};
use upmem_sim::error::DpuFault;
use upmem_sim::kernel::{DpuKernel, KernelImage, SymbolDef};
use upmem_sim::{DpuContext, PimMachine};

use crate::common::{
    bytes_to_u32s, fnv1a_u32, gen_u32s, partition, u32s_to_bytes, AppRun, PrimApp, ScaleParams,
};

/// Layer dimensions: input → hidden → hidden → output.
pub const DIMS: [usize; 4] = [32, 32, 32, 16];
/// The modular "activation" keeping values bounded (and nonlinear enough
/// to catch ordering bugs).
pub const ACT_MOD: u32 = 4093;

/// Applies one dense layer on the CPU (shared reference).
#[must_use]
pub fn layer_ref(x: &[u32], w: &[u32], in_dim: usize, out_dim: usize) -> Vec<u32> {
    (0..out_dim)
        .map(|o| {
            let mut acc = 0u64;
            for i in 0..in_dim {
                acc += u64::from(w[o * in_dim + i]) * u64::from(x[i]);
            }
            (acc % u64::from(ACT_MOD)) as u32
        })
        .collect()
}

/// The DPU kernel: applies the currently loaded layer to every local
/// sample. Activations live in MRAM and ping-pong between two regions.
#[derive(Debug)]
pub struct MlpKernel;

impl DpuKernel for MlpKernel {
    fn image(&self) -> KernelImage {
        KernelImage::new("mlp_kernel", 10 << 10)
            .with_symbol(SymbolDef::u32("samples"))
            .with_symbol(SymbolDef::u32("in_dim"))
            .with_symbol(SymbolDef::u32("out_dim"))
            .with_symbol(SymbolDef::u32("off_w"))
            .with_symbol(SymbolDef::u32("off_in"))
            .with_symbol(SymbolDef::u32("off_out"))
    }

    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
        let samples = ctx.host_u32("samples")? as usize;
        let in_dim = ctx.host_u32("in_dim")? as usize;
        let out_dim = ctx.host_u32("out_dim")? as usize;
        let off_w = u64::from(ctx.host_u32("off_w")?);
        let off_in = u64::from(ctx.host_u32("off_in")?);
        let off_out = u64::from(ctx.host_u32("off_out")?);
        let tasklets = ctx.nr_tasklets();
        ctx.parallel(|t| {
            let stripes = partition(samples, tasklets);
            let stripe = stripes[t.id()].clone();
            if stripe.is_empty() {
                return Ok(());
            }
            t.wram_alloc((in_dim * out_dim + 2 * in_dim) * 4)?;
            let mut w = vec![0u32; in_dim * out_dim];
            t.mram_read_u32s(off_w, &mut w)?;
            let mut x = vec![0u32; in_dim];
            for s in stripe {
                t.mram_read_u32s(off_in + (s * in_dim * 4) as u64, &mut x)?;
                let mut y = Vec::with_capacity(out_dim);
                for o in 0..out_dim {
                    let mut acc = 0u64;
                    for i in 0..in_dim {
                        acc += u64::from(w[o * in_dim + i]) * u64::from(x[i]);
                    }
                    y.push((acc % u64::from(ACT_MOD)) as u32);
                }
                t.charge((3 * in_dim * out_dim) as u64);
                t.mram_write_u32s(off_out + (s * out_dim * 4) as u64, &y)?;
            }
            Ok(())
        })
    }
}

/// The MLP application.
#[derive(Debug)]
pub struct Mlp;

impl PrimApp for Mlp {
    fn name(&self) -> &'static str {
        "MLP"
    }

    fn domain(&self) -> &'static str {
        "Neural networks"
    }

    fn long_name(&self) -> &'static str {
        "Multilayer Perceptron"
    }

    fn register(&self, machine: &PimMachine) {
        machine.register_kernel(std::sync::Arc::new(MlpKernel));
    }

    fn default_tasklets(&self) -> usize {
        // Each tasklet stages a full weight matrix in WRAM (~4.3 KiB);
        // 12 tasklets keep the aggregate under the 64 KiB WRAM.
        12
    }

    fn run(&self, set: &mut DpuSet, scale: &ScaleParams, seed: u64) -> Result<AppRun, SdkError> {
        let samples_total = (scale.elements / DIMS[0]).max(set.nr_dpus());
        let n_dpus = set.nr_dpus();
        let ranges = partition(samples_total, n_dpus);
        let max_samples = ranges.iter().map(std::ops::Range::len).max().unwrap_or(0);
        let max_dim = *DIMS.iter().max().expect("non-empty dims");
        let act_bytes = ((max_samples * max_dim * 4) as u64).div_ceil(4096) * 4096;
        let w_bytes = ((max_dim * max_dim * 4) as u64).div_ceil(4096) * 4096;
        let off_a = 0u64;
        let off_b = act_bytes;
        let off_w = 2 * act_bytes;
        debug_assert!(off_w + w_bytes <= set.mram_size());

        let inputs = gen_u32s(seed, samples_total * DIMS[0], 1 << 12);
        let weights: Vec<Vec<u32>> = (0..3)
            .map(|l| gen_u32s(seed ^ (0x51ed + l as u64), DIMS[l] * DIMS[l + 1], 1 << 10))
            .collect();

        set.load("mlp_kernel")?;
        set.set_segment(AppSegment::CpuToDpu);
        let in_bufs: Vec<Vec<u8>> = ranges
            .iter()
            .map(|r| u32s_to_bytes(&inputs[r.start * DIMS[0]..r.end * DIMS[0]]))
            .collect();
        set.push_to_heap(off_a, &in_bufs)?;
        let samples: Vec<u32> = ranges.iter().map(|r| r.len() as u32).collect();
        set.scatter_symbol_u32("samples", &samples)?;

        // Per-layer: broadcast weights (Inter-DPU), launch (DPU).
        let mut src = off_a;
        let mut dst = off_b;
        for (l, w) in weights.iter().enumerate() {
            set.set_segment(AppSegment::InterDpu);
            let w_bufs: Vec<Vec<u8>> = (0..n_dpus).map(|_| u32s_to_bytes(w)).collect();
            set.push_to_heap(off_w, &w_bufs)?;
            set.broadcast_symbol_u32("in_dim", DIMS[l] as u32)?;
            set.broadcast_symbol_u32("out_dim", DIMS[l + 1] as u32)?;
            set.broadcast_symbol_u32("off_w", off_w as u32)?;
            set.broadcast_symbol_u32("off_in", src as u32)?;
            set.broadcast_symbol_u32("off_out", dst as u32)?;
            set.set_segment(AppSegment::Dpu);
            set.launch(self.default_tasklets())?;
            std::mem::swap(&mut src, &mut dst);
        }

        set.set_segment(AppSegment::DpuToCpu);
        let out_dim = DIMS[3];
        let outs = set.push_from_heap(src, max_samples * out_dim * 4)?;
        let mut y = Vec::with_capacity(samples_total * out_dim);
        for (out, r) in outs.iter().zip(&ranges) {
            y.extend_from_slice(&bytes_to_u32s(out)[..r.len() * out_dim]);
        }

        // CPU reference.
        let mut reference = Vec::with_capacity(samples_total * out_dim);
        for s in 0..samples_total {
            let mut act = inputs[s * DIMS[0]..(s + 1) * DIMS[0]].to_vec();
            for (l, w) in weights.iter().enumerate() {
                act = layer_ref(&act, w, DIMS[l], DIMS[l + 1]);
            }
            reference.extend_from_slice(&act);
        }
        let verified = y == reference;
        Ok(if verified { AppRun::ok(fnv1a_u32(&y)) } else { AppRun::mismatch(fnv1a_u32(&y)) })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::apps::testutil::native_vs_vpim;

    #[test]
    fn mlp_native_matches_vpim() {
        native_vs_vpim(&Mlp, 2048);
    }

    #[test]
    fn layer_ref_is_modular() {
        let x = vec![1, 2];
        let w = vec![1, 1, 2, 2]; // 2x2
        let y = layer_ref(&x, &w, 2, 2);
        assert_eq!(y, vec![3, 6]);
    }
}
