//! Shared plumbing for the PrIM applications.

use simkit::SimRng;
use upmem_sdk::{DpuSet, SdkError};
use upmem_sim::PimMachine;

/// Strong-scaling problem size: the dataset is sized for the whole set and
/// split across however many DPUs it has (§5.2's configuration).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScaleParams {
    /// Total number of elements (meaning is per-application: vector
    /// elements, matrix cells, graph vertices, …).
    pub elements: usize,
}

impl ScaleParams {
    /// A quick test-sized problem.
    #[must_use]
    pub fn tiny() -> Self {
        ScaleParams { elements: 1 << 12 }
    }

    /// The default benchmarking size (fits the reproduction machine; the
    /// paper's datasets fill one rank's MRAM).
    #[must_use]
    pub fn default_bench() -> Self {
        ScaleParams { elements: 1 << 20 }
    }

    /// A custom size.
    #[must_use]
    pub fn of(elements: usize) -> Self {
        ScaleParams { elements }
    }
}

/// Result of one application run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AppRun {
    /// Whether the DPU results matched the CPU reference (§5.2: "DPU
    /// computed results match accurately with those computed on CPUs").
    pub verified: bool,
    /// An application-defined checksum of the output (for cross-transport
    /// equality assertions).
    pub checksum: u64,
}

impl AppRun {
    /// A verified run with the given checksum.
    #[must_use]
    pub fn ok(checksum: u64) -> Self {
        AppRun { verified: true, checksum }
    }

    /// A run whose output mismatched the reference.
    #[must_use]
    pub fn mismatch(checksum: u64) -> Self {
        AppRun { verified: false, checksum }
    }
}

/// One PrIM application: registration of its DPU kernels plus the host
/// program.
pub trait PrimApp: Send + Sync {
    /// Short name (Table 1), e.g. `"VA"`.
    fn name(&self) -> &'static str;

    /// Domain (Table 1), e.g. `"Dense linear algebra"`.
    fn domain(&self) -> &'static str;

    /// Full benchmark name (Table 1), e.g. `"Vector Addition"`.
    fn long_name(&self) -> &'static str;

    /// Registers the application's DPU kernels (installs its binaries).
    fn register(&self, machine: &PimMachine);

    /// The tasklet count PrIM found optimal for this benchmark.
    fn default_tasklets(&self) -> usize {
        16
    }

    /// Runs the host program on an allocated set; the set's timeline
    /// accumulates the paper's segment breakdown.
    ///
    /// # Errors
    ///
    /// SDK/transport/hardware failures.
    fn run(&self, set: &mut DpuSet, scale: &ScaleParams, seed: u64) -> Result<AppRun, SdkError>;
}

/// Converts `u32`s to little-endian bytes.
#[must_use]
pub fn u32s_to_bytes(vals: &[u32]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 4);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Converts little-endian bytes to `u32`s (length must be a multiple of 4).
#[must_use]
pub fn bytes_to_u32s(bytes: &[u8]) -> Vec<u32> {
    bytes
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4-byte chunk")))
        .collect()
}

/// Converts `u64`s to little-endian bytes.
#[must_use]
pub fn u64s_to_bytes(vals: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(vals.len() * 8);
    for v in vals {
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

/// Splits `total` items into `parts` balanced contiguous ranges.
#[must_use]
pub fn partition(total: usize, parts: usize) -> Vec<std::ops::Range<usize>> {
    let parts = parts.max(1);
    let base = total / parts;
    let extra = total % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for i in 0..parts {
        let len = base + usize::from(i < extra);
        out.push(start..start + len);
        start += len;
    }
    out
}

/// Generates a deterministic input vector of `n` `u32`s below `bound`.
#[must_use]
pub fn gen_u32s(seed: u64, n: usize, bound: u32) -> Vec<u32> {
    let mut rng = SimRng::seeded(seed);
    rng.u32s_below(n, bound)
}

/// FNV-1a checksum over a `u32` slice (stable across transports).
#[must_use]
pub fn fnv1a_u32(vals: &[u32]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for v in vals {
        for b in v.to_le_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partition_balances_remainders() {
        let parts = partition(10, 3);
        assert_eq!(parts, vec![0..4, 4..7, 7..10]);
        assert_eq!(partition(2, 5).iter().map(|r| r.len()).sum::<usize>(), 2);
        assert_eq!(partition(0, 3).iter().map(|r| r.len()).sum::<usize>(), 0);
        assert_eq!(partition(5, 0).len(), 1);
    }

    #[test]
    fn byte_conversions_roundtrip() {
        let vals = vec![0u32, 1, u32::MAX, 0xDEAD_BEEF];
        assert_eq!(bytes_to_u32s(&u32s_to_bytes(&vals)), vals);
    }

    #[test]
    fn checksum_is_order_sensitive_and_stable() {
        let a = fnv1a_u32(&[1, 2, 3]);
        let b = fnv1a_u32(&[3, 2, 1]);
        assert_ne!(a, b);
        assert_eq!(a, fnv1a_u32(&[1, 2, 3]));
    }

    #[test]
    fn gen_is_deterministic() {
        assert_eq!(gen_u32s(42, 16, 100), gen_u32s(42, 16, 100));
        assert!(gen_u32s(42, 1000, 10).iter().all(|v| *v < 10));
    }
}
