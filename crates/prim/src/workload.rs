//! PrIM applications as library workloads on a running vPIM VM.
//!
//! The figure harness and the examples drive PrIM through their own
//! `DpuSet` plumbing; the load harness (`vpim::load`) instead needs a
//! one-call entry point it can script into a tenant session: *run this
//! app at this scale on these frontends and tell me the virtual cost*.
//! That is [`run_on_vm`].

use std::sync::Arc;

use simkit::{CostModel, VirtualNanos};
use upmem_sdk::{DpuSet, SdkError};
use vpim::frontend::Frontend;

use crate::common::{AppRun, PrimApp, ScaleParams};

/// One application execution on a VM: the verified result plus the
/// virtual time the whole run cost (allocation to last retrieval).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadRun {
    /// Verification flag and checksum from the application.
    pub app: AppRun,
    /// Virtual cost of the run, from the set's timeline. Derived from
    /// work descriptions only, so a given `(app, scale, seed, nr_dpus)`
    /// always costs the same — the property the load harness's
    /// determinism invariant leans on.
    pub cost: VirtualNanos,
}

/// Runs `app` over `nr_dpus` DPUs of a VM's `frontends` at `scale` with
/// `seed`, through the same `DpuSet` path the benchmarks use. The cost
/// model is taken from the first frontend so the VM's configuration wins.
///
/// # Errors
///
/// [`SdkError::NotEnoughDpus`] when the frontends cannot cover `nr_dpus`,
/// or whatever the application surfaces.
pub fn run_on_vm(
    app: &dyn PrimApp,
    frontends: &[Arc<Frontend>],
    nr_dpus: usize,
    scale: &ScaleParams,
    seed: u64,
) -> Result<WorkloadRun, SdkError> {
    let cm = frontends.first().map_or_else(CostModel::default, |f| f.cost_model().clone());
    let mut set = DpuSet::alloc_vm(frontends, nr_dpus, cm)?;
    let run = app.run(&mut set, scale, seed)?;
    let cost = set.timeline().app_total();
    Ok(WorkloadRun { app: run, cost })
}

#[cfg(test)]
mod tests {
    use super::*;
    use upmem_driver::UpmemDriver;
    use upmem_sim::{PimConfig, PimMachine};
    use vpim::{StartOpts, TenantSpec, VpimConfig, VpimSystem};

    #[test]
    fn runs_va_on_a_vm_deterministically() {
        let machine = PimMachine::new(PimConfig::small());
        crate::register_all(&machine);
        let sys = VpimSystem::start(
            Arc::new(UpmemDriver::new(machine)),
            VpimConfig::full(),
            StartOpts::default(),
        );
        let vm = sys.launch(TenantSpec::new("wl").mem_mib(64)).unwrap();
        let va = crate::by_name("va").unwrap();
        let a = run_on_vm(&*va, vm.frontends(), 4, &ScaleParams::tiny(), 11).unwrap();
        let b = run_on_vm(&*va, vm.frontends(), 4, &ScaleParams::tiny(), 11).unwrap();
        assert!(a.app.verified);
        assert_eq!(a, b, "same inputs must cost the same virtual time");
        assert!(a.cost > VirtualNanos::ZERO);
        drop(vm);
        sys.shutdown();
    }
}
