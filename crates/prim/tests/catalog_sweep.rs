//! Sweep tests over the whole PrIM catalog: every application must verify
//! on awkward set shapes (single DPU, non-dividing counts, multi-rank) and
//! be deterministic across repeated runs.

use std::sync::Arc;

use simkit::CostModel;
use upmem_driver::UpmemDriver;
use upmem_sdk::DpuSet;
use upmem_sim::{PimConfig, PimMachine};

fn driver() -> Arc<UpmemDriver> {
    let machine = PimMachine::new(PimConfig {
        ranks: 3,
        functional_dpus: vec![8, 8, 8],
        mram_size: 2 << 20,
        ..PimConfig::small()
    });
    prim::register_all(&machine);
    Arc::new(UpmemDriver::new(machine))
}

#[test]
fn every_app_verifies_on_a_single_dpu() {
    let driver = driver();
    for app in prim::catalog() {
        let mut set = DpuSet::alloc_native(&driver, 1, CostModel::default()).unwrap();
        let run = app.run(&mut set, &prim::ScaleParams::of(2048), 17).unwrap();
        assert!(run.verified, "{} failed on 1 DPU", app.name());
    }
}

#[test]
fn every_app_verifies_on_a_non_dividing_dpu_count() {
    let driver = driver();
    for app in prim::catalog() {
        let mut set = DpuSet::alloc_native(&driver, 7, CostModel::default()).unwrap();
        let run = app.run(&mut set, &prim::ScaleParams::of(3001), 23).unwrap();
        assert!(run.verified, "{} failed on 7 DPUs / 3001 elements", app.name());
    }
}

#[test]
fn every_app_verifies_across_ranks() {
    let driver = driver();
    for app in prim::catalog() {
        let mut set = DpuSet::alloc_native(&driver, 20, CostModel::default()).unwrap();
        assert_eq!(set.nr_ranks(), 3);
        let run = app.run(&mut set, &prim::ScaleParams::of(4096), 29).unwrap();
        assert!(run.verified, "{} failed across 3 ranks", app.name());
    }
}

#[test]
fn runs_are_deterministic() {
    let driver = driver();
    for app in prim::catalog() {
        let a = {
            let mut set = DpuSet::alloc_native(&driver, 8, CostModel::default()).unwrap();
            app.run(&mut set, &prim::ScaleParams::of(2048), 5).unwrap()
        };
        let b = {
            let mut set = DpuSet::alloc_native(&driver, 8, CostModel::default()).unwrap();
            app.run(&mut set, &prim::ScaleParams::of(2048), 5).unwrap()
        };
        assert_eq!(a.checksum, b.checksum, "{} is nondeterministic", app.name());
    }
}

#[test]
fn different_seeds_give_different_outputs() {
    // Guards against apps accidentally ignoring their input data. BS is
    // exempt: its output is *positions* of planted queries in sorted data,
    // which are seed-independent by construction (query k sits at index
    // (k·31) mod n whatever the values are).
    let driver = driver();
    for app in prim::catalog() {
        if app.name() == "BS" {
            continue;
        }
        let a = {
            let mut set = DpuSet::alloc_native(&driver, 8, CostModel::default()).unwrap();
            app.run(&mut set, &prim::ScaleParams::of(4096), 1).unwrap()
        };
        let b = {
            let mut set = DpuSet::alloc_native(&driver, 8, CostModel::default()).unwrap();
            app.run(&mut set, &prim::ScaleParams::of(4096), 2).unwrap()
        };
        assert_ne!(
            a.checksum,
            b.checksum,
            "{} output does not depend on its input",
            app.name()
        );
    }
}

#[test]
fn timelines_attribute_work_to_segments() {
    use simkit::AppSegment;
    let driver = driver();
    for app in prim::catalog() {
        let mut set = DpuSet::alloc_native(&driver, 8, CostModel::default()).unwrap();
        app.run(&mut set, &prim::ScaleParams::of(4096), 3).unwrap();
        let tl = set.timeline();
        assert!(
            tl.app(AppSegment::CpuToDpu) > simkit::VirtualNanos::ZERO,
            "{}: no input transfer recorded",
            app.name()
        );
        assert!(
            tl.app(AppSegment::Dpu) > simkit::VirtualNanos::ZERO,
            "{}: no DPU execution recorded",
            app.name()
        );
        assert!(tl.rank_ops() > 0, "{}: no rank ops recorded", app.name());
    }
}
