//! Virtual-time composition rules.
//!
//! Durations derived from the [`CostModel`](crate::CostModel) are combined
//! the way the modeled system would execute them:
//!
//! * [`sequential`] — one after another (e.g. Firecracker's original
//!   single-loop virtio handling, Fig. 16 "Seq"),
//! * [`parallel`] — all at once, bounded by the slowest lane (e.g. vPIM's
//!   per-rank threads, Fig. 16 "Par"),
//! * [`pool`] — `n` items over `w` workers (e.g. the backend's 8 DPU-operation
//!   threads over 64 DPUs).

use crate::time::VirtualNanos;

/// Total duration when the given durations run back to back.
///
/// ```
/// use simkit::{sequential, VirtualNanos};
/// let d = sequential([1, 2, 3].map(VirtualNanos::from_nanos));
/// assert_eq!(d.as_nanos(), 6);
/// ```
#[must_use]
pub fn sequential<I>(durations: I) -> VirtualNanos
where
    I: IntoIterator<Item = VirtualNanos>,
{
    durations.into_iter().sum()
}

/// Total duration when the given durations run concurrently: the maximum.
///
/// ```
/// use simkit::{parallel, VirtualNanos};
/// let d = parallel([1, 9, 3].map(VirtualNanos::from_nanos));
/// assert_eq!(d.as_nanos(), 9);
/// ```
#[must_use]
pub fn parallel<I>(durations: I) -> VirtualNanos
where
    I: IntoIterator<Item = VirtualNanos>,
{
    durations
        .into_iter()
        .fold(VirtualNanos::ZERO, VirtualNanos::max)
}

/// Duration of `n` identical tasks of length `per_item` spread over
/// `workers` workers: `ceil(n / workers) × per_item`.
///
/// A zero worker count is treated as one worker rather than panicking, since
/// property tests feed arbitrary configurations.
///
/// ```
/// use simkit::{pool, VirtualNanos};
/// let d = pool(64, 8, VirtualNanos::from_nanos(10));
/// assert_eq!(d.as_nanos(), 80);
/// ```
#[must_use]
pub fn pool(n: u64, workers: usize, per_item: VirtualNanos) -> VirtualNanos {
    let workers = workers.max(1) as u64;
    per_item.saturating_mul(n.div_ceil(workers))
}

/// Like [`pool`] but for heterogeneous items: greedily schedules the given
/// durations (in order) onto `workers` lanes — a longest-processing-time-free
/// list-scheduling model that matches a work queue drained by a thread pool.
///
/// ```
/// use simkit::compose::pool_schedule;
/// use simkit::VirtualNanos;
/// let items = [5, 5, 5, 5].map(VirtualNanos::from_nanos);
/// assert_eq!(pool_schedule(items, 2).as_nanos(), 10);
/// ```
#[must_use]
pub fn pool_schedule<I>(durations: I, workers: usize) -> VirtualNanos
where
    I: IntoIterator<Item = VirtualNanos>,
{
    let workers = workers.max(1);
    let mut lanes = vec![VirtualNanos::ZERO; workers];
    for d in durations {
        // Assign to the currently least-loaded lane, as a work queue would.
        let lane = lanes
            .iter_mut()
            .min_by_key(|t| t.as_nanos())
            .expect("at least one lane");
        *lane += d;
    }
    lanes.into_iter().fold(VirtualNanos::ZERO, VirtualNanos::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_iterators_are_zero() {
        assert_eq!(sequential(std::iter::empty()), VirtualNanos::ZERO);
        assert_eq!(parallel(std::iter::empty()), VirtualNanos::ZERO);
        assert_eq!(pool_schedule(std::iter::empty(), 4), VirtualNanos::ZERO);
    }

    #[test]
    fn pool_rounds_up() {
        let per = VirtualNanos::from_nanos(7);
        assert_eq!(pool(9, 8, per).as_nanos(), 14);
        assert_eq!(pool(8, 8, per).as_nanos(), 7);
        assert_eq!(pool(0, 8, per), VirtualNanos::ZERO);
    }

    #[test]
    fn pool_tolerates_zero_workers() {
        assert_eq!(pool(3, 0, VirtualNanos::from_nanos(2)).as_nanos(), 6);
        assert_eq!(
            pool_schedule([VirtualNanos::from_nanos(2)], 0).as_nanos(),
            2
        );
    }

    proptest! {
        /// Parallel execution can never be slower than sequential.
        #[test]
        fn parallel_le_sequential(ds in proptest::collection::vec(0u64..1_000_000, 0..64)) {
            let ds: Vec<_> = ds.into_iter().map(VirtualNanos::from_nanos).collect();
            prop_assert!(parallel(ds.clone()) <= sequential(ds));
        }

        /// A pool schedule is bounded below by perfect parallelism and above
        /// by fully sequential execution.
        #[test]
        fn pool_schedule_between_bounds(
            ds in proptest::collection::vec(0u64..1_000_000, 1..64),
            workers in 1usize..16,
        ) {
            let ds: Vec<_> = ds.into_iter().map(VirtualNanos::from_nanos).collect();
            let sched = pool_schedule(ds.clone(), workers);
            prop_assert!(sched >= parallel(ds.clone()));
            prop_assert!(sched <= sequential(ds));
        }

        /// One worker degenerates to sequential; enough workers to parallel.
        #[test]
        fn pool_schedule_degenerate_cases(ds in proptest::collection::vec(0u64..1_000_000, 1..32)) {
            let ds: Vec<_> = ds.iter().copied().map(VirtualNanos::from_nanos).collect();
            prop_assert_eq!(pool_schedule(ds.clone(), 1), sequential(ds.clone()));
            prop_assert_eq!(pool_schedule(ds.clone(), ds.len()), parallel(ds));
        }
    }
}
