//! Small statistics and formatting helpers for the figure harness.

use crate::time::VirtualNanos;

/// Arithmetic mean of a slice of durations (zero for an empty slice).
///
/// ```
/// use simkit::{stats::mean, VirtualNanos};
/// let m = mean(&[2, 4].map(VirtualNanos::from_nanos));
/// assert_eq!(m.as_nanos(), 3);
/// ```
#[must_use]
pub fn mean(ds: &[VirtualNanos]) -> VirtualNanos {
    if ds.is_empty() {
        return VirtualNanos::ZERO;
    }
    let sum: u128 = ds.iter().map(|d| d.as_nanos() as u128).sum();
    VirtualNanos::from_nanos((sum / ds.len() as u128).min(u64::MAX as u128) as u64)
}

/// Overhead factor `measured / baseline` — the paper's "×" notation.
///
/// Returns `f64::INFINITY` if the baseline is zero.
#[must_use]
pub fn overhead(measured: VirtualNanos, baseline: VirtualNanos) -> f64 {
    measured.ratio(baseline)
}

/// Geometric mean of a set of overhead factors (1.0 for an empty slice).
/// Non-positive entries are ignored.
#[must_use]
pub fn geomean(factors: &[f64]) -> f64 {
    let logs: Vec<f64> = factors.iter().copied().filter(|f| *f > 0.0).map(f64::ln).collect();
    if logs.is_empty() {
        return 1.0;
    }
    (logs.iter().sum::<f64>() / logs.len() as f64).exp()
}

/// Arithmetic mean of a set of factors (the paper reports arithmetic
/// averages, e.g. "an average of 1.24×").
#[must_use]
pub fn amean(factors: &[f64]) -> f64 {
    if factors.is_empty() {
        return 0.0;
    }
    factors.iter().sum::<f64>() / factors.len() as f64
}

/// A minimal fixed-width text table builder for harness output.
///
/// ```
/// use simkit::stats::TextTable;
/// let mut t = TextTable::new(vec!["app".into(), "native".into(), "vPIM".into()]);
/// t.row(vec!["VA".into(), "1.0".into(), "1.1".into()]);
/// let s = t.render();
/// assert!(s.contains("app"));
/// assert!(s.contains("VA"));
/// ```
#[derive(Debug, Clone)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given column headers.
    #[must_use]
    pub fn new(header: Vec<String>) -> Self {
        TextTable { header, rows: Vec::new() }
    }

    /// Appends a data row. Short rows are padded with empty cells; long rows
    /// extend the column count.
    pub fn row(&mut self, cells: Vec<String>) {
        self.rows.push(cells);
    }

    /// Renders the table with aligned columns.
    #[must_use]
    pub fn render(&self) -> String {
        let ncols = self
            .rows
            .iter()
            .map(Vec::len)
            .chain(std::iter::once(self.header.len()))
            .max()
            .unwrap_or(0);
        let mut widths = vec![0usize; ncols];
        let all_rows = std::iter::once(&self.header).chain(self.rows.iter());
        for row in all_rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |row: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, w) in widths.iter().enumerate() {
                let cell = row.get(i).map(String::as_str).unwrap_or("");
                line.push_str(&format!("{cell:<w$}"));
                if i + 1 != widths.len() {
                    line.push_str("  ");
                }
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * widths.len().saturating_sub(1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_of_empty_is_zero() {
        assert_eq!(mean(&[]), VirtualNanos::ZERO);
    }

    #[test]
    fn overhead_factor() {
        let base = VirtualNanos::from_nanos(100);
        let slow = VirtualNanos::from_nanos(153);
        assert!((overhead(slow, base) - 1.53).abs() < 1e-9);
        assert_eq!(overhead(slow, VirtualNanos::ZERO), f64::INFINITY);
    }

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert_eq!(geomean(&[]), 1.0);
        // Non-positive values are ignored, not fatal.
        assert!((geomean(&[4.0, 0.0, -1.0]) - 4.0).abs() < 1e-9);
    }

    #[test]
    fn amean_basics() {
        assert!((amean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(amean(&[]), 0.0);
    }

    #[test]
    fn table_renders_aligned() {
        let mut t = TextTable::new(vec!["a".into(), "bbbb".into()]);
        t.row(vec!["xxxx".into(), "y".into()]);
        t.row(vec!["z".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a"));
        assert!(lines[2].starts_with("xxxx"));
    }
}
