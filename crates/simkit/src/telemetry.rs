//! Lock-cheap telemetry: a metrics registry, typed instruments, and
//! hierarchical spans over the virtual clock.
//!
//! The vPIM paper argues almost entirely through *event counts and segment
//! times* — vmexits, IRQ injections, CI operations, prefetch hits, batch
//! flushes, per-segment durations (Figs. 12–16). This module gives every
//! layer one uniform way to record and query them:
//!
//! * [`MetricsRegistry`] — a shared, cloneable handle to a process-wide (or
//!   per-system) set of named metrics. Reads and writes on the hot path are
//!   single atomic operations; handle lookup takes a shared read lock, and
//!   the write lock is only taken when a metric is first created.
//! * [`Counter`], [`Gauge`], [`TimeCounter`], [`VtHistogram`] — typed
//!   instruments. Handles are `Arc`-backed clones of the registered slot,
//!   so a component can keep a hot local handle and the registry still sees
//!   every update. Counters, gauges and time counters accumulate into
//!   per-worker cache-padded stripes (the [`crate::pool::BytePool`] shard
//!   idiom via [`crate::stripe`]) folded on read — concurrent data-path
//!   increments are uncontended and totals stay exact.
//! * [`Span`] — a named position in a dot-separated hierarchy
//!   (`"sdk.launch.driver.ci"`). Recording into a span charges its own
//!   [`TimeCounter`], bumps its event counter, and feeds its latency
//!   histogram; `child()` nests one level deeper over the same registry.
//! * [`MetricSet`] — a small, *unshared* bag of named counts and virtual
//!   times. Per-operation reports ([`crate::Timeline`], the core crate's
//!   `OpReport`) are thin views over a `MetricSet`; `flush_into` publishes
//!   a set into a registry in one call.
//! * [`Instrument`] — the one trait every layer records through: anything
//!   that can name its registry gets `count`/`charge`/`observe`/`span` for
//!   free.
//!
//! # Example
//!
//! ```
//! use simkit::telemetry::{Instrument, MetricsRegistry};
//! use simkit::VirtualNanos;
//!
//! struct Frontend {
//!     reg: MetricsRegistry,
//! }
//! impl Instrument for Frontend {
//!     fn registry(&self) -> &MetricsRegistry {
//!         &self.reg
//!     }
//! }
//!
//! let fe = Frontend { reg: MetricsRegistry::new() };
//! fe.count("frontend.prefetch.hits", 3);
//! fe.charge("frontend.write", VirtualNanos::from_micros(7));
//! let snap = fe.registry().snapshot();
//! assert_eq!(snap.count("frontend.prefetch.hits"), 3);
//! assert_eq!(snap.time("frontend.write").as_micros(), 7);
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::RwLock;

use crate::stripe::{thread_slot, STRIPES};
use crate::time::VirtualNanos;

/// One cache line's worth of unsigned accumulator — padded so adjacent
/// stripes of one instrument never share a line (false sharing is the
/// whole cost striping exists to remove).
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedU64(AtomicU64);

/// One cache line's worth of signed accumulator.
#[derive(Debug, Default)]
#[repr(align(64))]
struct PaddedI64(AtomicI64);

/// A `u64` accumulator striped over [`STRIPES`] cache-padded cells.
///
/// Writers land on their thread's stripe ([`thread_slot`]) so concurrent
/// increments from a worker pool touch disjoint cache lines; readers fold
/// the stripes by summation, which is **exact**: the total is the sum of
/// per-stripe sums regardless of which thread wrote where.
#[derive(Debug, Default)]
struct StripedU64 {
    cells: [PaddedU64; STRIPES],
}

impl StripedU64 {
    fn add(&self, n: u64) {
        self.cells[thread_slot(STRIPES)].0.fetch_add(n, Ordering::Relaxed);
    }

    fn sum(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// An `i64` accumulator striped like [`StripedU64`].
#[derive(Debug, Default)]
struct StripedI64 {
    cells: [PaddedI64; STRIPES],
}

impl StripedI64 {
    fn add(&self, n: i64) {
        self.cells[thread_slot(STRIPES)].0.fetch_add(n, Ordering::Relaxed);
    }

    fn sum(&self) -> i64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }

    /// Forces the folded level to `v`: the calling thread's stripe takes
    /// the whole value, every other stripe is zeroed. Exact when no
    /// writer races the set (the only supported use — level resets happen
    /// at quiesce points).
    fn set(&self, v: i64) {
        let home = thread_slot(STRIPES);
        for (i, cell) in self.cells.iter().enumerate() {
            cell.0.store(if i == home { v } else { 0 }, Ordering::Relaxed);
        }
    }
}

/// A monotonically increasing event counter.
///
/// Cloning shares the underlying cells, so the same counter can live in a
/// component's hot path and in the registry simultaneously. Increments
/// are striped per worker thread over cache-padded cells (the
/// [`crate::pool::BytePool`] shard idiom) and folded on [`Counter::get`],
/// so data-path increments from concurrent workers are uncontended while
/// totals stay exact.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<StripedU64>);

impl Counter {
    /// A fresh, unregistered counter (register it with
    /// [`MetricsRegistry::bind_counter`] to make it queryable).
    #[must_use]
    pub fn new() -> Self {
        Counter::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.add(n);
    }

    /// Current value (folds the per-worker stripes; exact).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.0.sum()
    }
}

/// An instantaneous level that can move both ways (queue depths, pool
/// occupancy).
///
/// Striped like [`Counter`]: `add`/`sub` touch only the calling thread's
/// cache-padded stripe, and the folded level is exact because additions
/// commute. Balanced add/sub sequences therefore fold back to zero no
/// matter which threads performed them.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<StripedI64>);

impl Gauge {
    /// A fresh, unregistered gauge.
    #[must_use]
    pub fn new() -> Self {
        Gauge::default()
    }

    /// Sets the level. Only exact when no `add`/`sub` races it — use it
    /// at quiesce points; prefer delta updates on concurrent paths.
    pub fn set(&self, v: i64) {
        self.0.set(v);
    }

    /// Moves the level up by `n`.
    pub fn add(&self, n: i64) {
        self.0.add(n);
    }

    /// Moves the level down by `n`.
    pub fn sub(&self, n: i64) {
        // Wrapping negation matches the old fetch_sub semantics at the
        // i64::MIN edge.
        self.0.add(n.wrapping_neg());
    }

    /// Current level (folds the per-worker stripes; exact).
    #[must_use]
    pub fn get(&self) -> i64 {
        self.0.sum()
    }
}

/// An accumulator of virtual time, striped like [`Counter`].
#[derive(Debug, Clone, Default)]
pub struct TimeCounter(Arc<StripedU64>);

impl TimeCounter {
    /// A fresh, unregistered time counter.
    #[must_use]
    pub fn new() -> Self {
        TimeCounter::default()
    }

    /// Accumulates a duration (saturating).
    pub fn add(&self, d: VirtualNanos) {
        // A relaxed striped add is fine because the only way to overflow
        // u64 nanoseconds is a pre-saturated input, which VirtualNanos
        // arithmetic already flags upstream.
        self.0.add(d.as_nanos());
    }

    /// Accumulated total (folds the per-worker stripes; exact).
    #[must_use]
    pub fn get(&self) -> VirtualNanos {
        VirtualNanos::from_nanos(self.0.sum())
    }
}

/// Number of log2 buckets in a [`VtHistogram`] (covers 1 ns … ~584 years).
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A histogram of virtual-time durations in log2 buckets.
///
/// Bucket `i` counts samples with `floor(log2(ns)) == i` (bucket 0 also
/// takes 0 ns samples). Lock-free: recording is one atomic increment.
#[derive(Debug, Clone, Default)]
pub struct VtHistogram(Arc<HistogramCells>);

#[derive(Debug)]
struct HistogramCells {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    total_ns: AtomicU64,
}

impl Default for HistogramCells {
    fn default() -> Self {
        HistogramCells {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            total_ns: AtomicU64::new(0),
        }
    }
}

impl VtHistogram {
    /// A fresh, unregistered histogram.
    #[must_use]
    pub fn new() -> Self {
        VtHistogram::default()
    }

    /// Records one duration sample.
    pub fn record(&self, d: VirtualNanos) {
        let ns = d.as_nanos();
        let bucket = if ns == 0 { 0 } else { 63 - ns.leading_zeros() as usize };
        self.0.buckets[bucket].fetch_add(1, Ordering::Relaxed);
        self.0.total_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Total samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.0.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all recorded durations.
    #[must_use]
    pub fn total(&self) -> VirtualNanos {
        VirtualNanos::from_nanos(self.0.total_ns.load(Ordering::Relaxed))
    }

    /// Mean recorded duration (zero when empty).
    #[must_use]
    pub fn mean(&self) -> VirtualNanos {
        let n = self.count();
        if n == 0 {
            VirtualNanos::ZERO
        } else {
            self.total() / n
        }
    }

    /// Per-bucket counts, `buckets()[i]` covering `[2^i, 2^(i+1)) ns`.
    #[must_use]
    pub fn buckets(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.0.buckets[i].load(Ordering::Relaxed))
    }

    /// Folds another histogram's mass into this one, bucket by bucket —
    /// how a run-local histogram is mirrored into a registry-wide one.
    pub fn merge_from(&self, other: &VtHistogram) {
        for (i, c) in other.buckets().into_iter().enumerate() {
            if c > 0 {
                self.0.buckets[i].fetch_add(c, Ordering::Relaxed);
            }
        }
        self.0.total_ns.fetch_add(other.0.total_ns.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// The bucket index, within-bucket rank and bucket count covering the
    /// `p`-quantile sample, or `None` when the histogram is empty.
    fn covering_bucket(&self, p: f64) -> Option<(usize, u64, u64)> {
        let counts = self.buckets();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let want = ((p.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0;
        for (i, c) in counts.iter().enumerate() {
            if seen + c >= want {
                return Some((i, want - seen, *c));
            }
            seen += c;
        }
        None
    }

    /// The `p`-quantile of the recorded samples (`p` clamped to `[0, 1]`),
    /// estimated by linear interpolation inside the covering log2 bucket.
    /// Zero when empty.
    ///
    /// **Exactness bound:** the true order statistic falls in the same
    /// bucket `[2^i, 2^(i+1))`, so the estimate is always within a factor
    /// of 2 of the exact quantile — and the computation is pure integer
    /// arithmetic, so identical bucket contents yield a bit-identical
    /// result regardless of recording order or thread count.
    #[must_use]
    pub fn quantile(&self, p: f64) -> VirtualNanos {
        let Some((i, rank, c)) = self.covering_bucket(p) else {
            return VirtualNanos::ZERO;
        };
        let lo: u64 = if i == 0 { 0 } else { 1u64 << i };
        let hi: u64 = if i >= 63 { u64::MAX } else { (1u64 << (i + 1)) - 1 };
        let span = hi - lo;
        // rank ∈ [1, c]: interpolate to the bucket's upper edge at rank == c.
        let off = ((u128::from(span) * u128::from(rank)) / u128::from(c.max(1))) as u64;
        VirtualNanos::from_nanos(lo + off)
    }

    /// An upper bound below which `quantile` of the samples fall (bucket
    /// resolution). Zero when empty.
    #[deprecated(note = "use `quantile(p)`; it interpolates inside the bucket")]
    #[must_use]
    pub fn quantile_upper_bound(&self, quantile: f64) -> VirtualNanos {
        let Some((i, _, _)) = self.covering_bucket(quantile) else {
            return VirtualNanos::ZERO;
        };
        let bound = if i >= 63 { u64::MAX } else { (2u64 << i) - 1 };
        VirtualNanos::from_nanos(bound)
    }
}

#[derive(Debug, Clone)]
enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Time(TimeCounter),
    Histogram(VtHistogram),
}

impl Slot {
    fn type_name(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Time(_) => "time",
            Slot::Histogram(_) => "histogram",
        }
    }
}

/// The value of one metric in a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// An event count.
    Count(u64),
    /// An instantaneous level.
    Level(i64),
    /// Accumulated virtual time.
    Time(VirtualNanos),
    /// Histogram summary: sample count, time total, interpolated p99
    /// ([`VtHistogram::quantile`]).
    Histogram {
        /// Samples recorded.
        count: u64,
        /// Sum of all samples.
        total: VirtualNanos,
        /// 99th percentile, interpolated inside its log2 bucket (within 2×
        /// of the exact order statistic).
        p99: VirtualNanos,
    },
}

impl fmt::Display for MetricValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricValue::Count(n) => write!(f, "{n}"),
            MetricValue::Level(v) => write!(f, "{v}"),
            MetricValue::Time(d) => write!(f, "{d}"),
            MetricValue::Histogram { count, total, p99 } => {
                write!(f, "n={count} total={total} p99~{p99}")
            }
        }
    }
}

/// A point-in-time copy of every registered metric, ordered by name.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    values: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// The value of `name`, if registered.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.values.get(name)
    }

    /// Counter value of `name` (0 when absent or not a counter).
    #[must_use]
    pub fn count(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(MetricValue::Count(n)) => *n,
            _ => 0,
        }
    }

    /// Gauge level of `name` (0 when absent or not a gauge).
    #[must_use]
    pub fn level(&self, name: &str) -> i64 {
        match self.values.get(name) {
            Some(MetricValue::Level(v)) => *v,
            _ => 0,
        }
    }

    /// Accumulated time of `name` (zero when absent; histograms report
    /// their total).
    #[must_use]
    pub fn time(&self, name: &str) -> VirtualNanos {
        match self.values.get(name) {
            Some(MetricValue::Time(d)) => *d,
            Some(MetricValue::Histogram { total, .. }) => *total,
            _ => VirtualNanos::ZERO,
        }
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Iterates the metrics under a dot-separated `prefix`.
    pub fn with_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a str, &'a MetricValue)> + 'a {
        self.iter().filter(move |(name, _)| {
            name.strip_prefix(prefix)
                .is_some_and(|rest| rest.is_empty() || rest.starts_with('.'))
        })
    }

    /// Number of registered metrics.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no metric is registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// A shared, cloneable registry of named metrics.
///
/// Looking up an existing handle takes a read lock (shared, so concurrent
/// workers resolving handles don't serialize); only the *first* creation
/// of a name takes the write lock. Recording through a handle is a single
/// uncontended striped atomic. Names are dot-separated paths
/// (`"frontend.prefetch.hits"`). Re-requesting a name returns a handle to
/// the same cell.
///
/// # Panics
///
/// Requesting an existing name as a *different* instrument type (e.g.
/// `gauge("x")` after `counter("x")`) panics: two layers disagreeing on a
/// metric's type is a wiring bug worth failing loudly on.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    slots: Arc<RwLock<BTreeMap<String, Slot>>>,
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn slot(&self, name: &str, make: impl FnOnce() -> Slot) -> Slot {
        // Fast path: the name almost always exists already (handles are
        // created once and cached); a shared read suffices.
        if let Some(slot) = self.slots.read().get(name) {
            return slot.clone();
        }
        let mut slots = self.slots.write();
        slots.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// The counter named `name`, created on first use.
    #[must_use]
    pub fn counter(&self, name: &str) -> Counter {
        match self.slot(name, || Slot::Counter(Counter::new())) {
            Slot::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.type_name()),
        }
    }

    /// The gauge named `name`, created on first use.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.slot(name, || Slot::Gauge(Gauge::new())) {
            Slot::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.type_name()),
        }
    }

    /// The virtual-time accumulator named `name`, created on first use.
    #[must_use]
    pub fn time(&self, name: &str) -> TimeCounter {
        match self.slot(name, || Slot::Time(TimeCounter::new())) {
            Slot::Time(t) => t,
            other => panic!("metric {name:?} is a {}, not a time counter", other.type_name()),
        }
    }

    /// The histogram named `name`, created on first use.
    #[must_use]
    pub fn histogram(&self, name: &str) -> VtHistogram {
        match self.slot(name, || Slot::Histogram(VtHistogram::new())) {
            Slot::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", other.type_name()),
        }
    }

    /// Registers an *existing* counter cell under `name`, so a component's
    /// pre-existing hot counter (an IRQ line's injection count, an event
    /// manager's kick count) becomes queryable without double bookkeeping.
    /// Returns the counter actually registered (the existing registration
    /// wins on name collision).
    pub fn bind_counter(&self, name: &str, counter: &Counter) -> Counter {
        match self.slot(name, || Slot::Counter(counter.clone())) {
            Slot::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", other.type_name()),
        }
    }

    /// Registers an existing gauge cell under `name` (see
    /// [`Self::bind_counter`]).
    pub fn bind_gauge(&self, name: &str, gauge: &Gauge) -> Gauge {
        match self.slot(name, || Slot::Gauge(gauge.clone())) {
            Slot::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", other.type_name()),
        }
    }

    /// A root [`Span`] named `name`.
    #[must_use]
    pub fn span(&self, name: &str) -> Span {
        Span::new(self.clone(), name.to_string())
    }

    /// Copies every registered metric into an ordered snapshot, folding
    /// each instrument's per-worker stripes into its exact total.
    #[must_use]
    pub fn snapshot(&self) -> MetricsSnapshot {
        let slots = self.slots.read();
        MetricsSnapshot {
            values: slots
                .iter()
                .map(|(name, slot)| {
                    let value = match slot {
                        Slot::Counter(c) => MetricValue::Count(c.get()),
                        Slot::Gauge(g) => MetricValue::Level(g.get()),
                        Slot::Time(t) => MetricValue::Time(t.get()),
                        Slot::Histogram(h) => MetricValue::Histogram {
                            count: h.count(),
                            total: h.total(),
                            p99: h.quantile(0.99),
                        },
                    };
                    (name.clone(), value)
                })
                .collect(),
        }
    }

    /// Names currently registered, in order.
    #[must_use]
    pub fn names(&self) -> Vec<String> {
        self.slots.read().keys().cloned().collect()
    }
}

/// A named position in the metric hierarchy, recording over the virtual
/// clock.
///
/// A span owns three co-named instruments: `<path>` (a [`TimeCounter`]
/// holding total charged time), `<path>.events` (a [`Counter`]), and
/// `<path>.latency` (a [`VtHistogram`] of per-record durations). Children
/// extend the dotted path, giving `Timeline`-style segment trees:
///
/// ```
/// use simkit::telemetry::MetricsRegistry;
/// use simkit::VirtualNanos;
///
/// let reg = MetricsRegistry::new();
/// let launch = reg.span("sdk.launch");
/// let ci = launch.child("ci");
/// ci.record(VirtualNanos::from_micros(4));
/// launch.record(VirtualNanos::from_micros(10));
/// let snap = reg.snapshot();
/// assert_eq!(snap.time("sdk.launch.ci").as_micros(), 4);
/// assert_eq!(snap.count("sdk.launch.events"), 1);
/// ```
#[derive(Debug, Clone)]
pub struct Span {
    registry: MetricsRegistry,
    path: String,
    elapsed: TimeCounter,
    events: Counter,
    latency: VtHistogram,
}

impl Span {
    fn new(registry: MetricsRegistry, path: String) -> Self {
        let elapsed = registry.time(&path);
        let events = registry.counter(&format!("{path}.events"));
        let latency = registry.histogram(&format!("{path}.latency"));
        Span { registry, path, elapsed, events, latency }
    }

    /// The dotted path of this span.
    #[must_use]
    pub fn path(&self) -> &str {
        &self.path
    }

    /// A child span one level deeper.
    #[must_use]
    pub fn child(&self, name: &str) -> Span {
        Span::new(self.registry.clone(), format!("{}.{name}", self.path))
    }

    /// Records one event of duration `d` against this span.
    pub fn record(&self, d: VirtualNanos) {
        self.elapsed.add(d);
        self.events.inc();
        self.latency.record(d);
    }

    /// Charges time without counting an event (merging a sub-report whose
    /// events were already counted elsewhere).
    pub fn charge(&self, d: VirtualNanos) {
        self.elapsed.add(d);
    }

    /// Total time charged to this span.
    #[must_use]
    pub fn elapsed(&self) -> VirtualNanos {
        self.elapsed.get()
    }

    /// Events recorded on this span.
    #[must_use]
    pub fn events(&self) -> u64 {
        self.events.get()
    }
}

/// A small, unshared bag of named counts and virtual times — the storage
/// behind per-operation reports.
///
/// Unlike [`MetricsRegistry`] handles, a `MetricSet` is plain data: cheap
/// to create per operation, cloneable, mergeable, and comparable in tests.
/// [`Self::flush_into`] publishes it into a registry (counts into
/// counters, times into time counters) in one call.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricSet {
    counts: BTreeMap<String, u64>,
    times: BTreeMap<String, VirtualNanos>,
}

impl MetricSet {
    /// An empty set.
    #[must_use]
    pub fn new() -> Self {
        MetricSet::default()
    }

    /// Adds `n` to the count named `name`.
    pub fn count(&mut self, name: &str, n: u64) {
        if n != 0 {
            *self.counts.entry(name.to_string()).or_insert(0) += n;
        }
    }

    /// Adds `d` to the time named `name`.
    pub fn charge(&mut self, name: &str, d: VirtualNanos) {
        if d > VirtualNanos::ZERO {
            let slot = self.times.entry(name.to_string()).or_insert(VirtualNanos::ZERO);
            *slot += d;
        }
    }

    /// Sets the count named `name` (overwrites).
    pub fn set_count(&mut self, name: &str, n: u64) {
        if n == 0 {
            self.counts.remove(name);
        } else {
            self.counts.insert(name.to_string(), n);
        }
    }

    /// Sets the time named `name` (overwrites).
    pub fn set_time(&mut self, name: &str, d: VirtualNanos) {
        if d == VirtualNanos::ZERO {
            self.times.remove(name);
        } else {
            self.times.insert(name.to_string(), d);
        }
    }

    /// The count named `name` (0 when absent).
    #[must_use]
    pub fn get_count(&self, name: &str) -> u64 {
        self.counts.get(name).copied().unwrap_or(0)
    }

    /// The time named `name` (zero when absent).
    #[must_use]
    pub fn get_time(&self, name: &str) -> VirtualNanos {
        self.times.get(name).copied().unwrap_or(VirtualNanos::ZERO)
    }

    /// Accumulates every count and time of `other` into `self`.
    pub fn merge(&mut self, other: &MetricSet) {
        for (name, n) in &other.counts {
            *self.counts.entry(name.clone()).or_insert(0) += n;
        }
        for (name, d) in &other.times {
            let slot = self.times.entry(name.clone()).or_insert(VirtualNanos::ZERO);
            *slot += *d;
        }
    }

    /// Iterates counts in name order.
    pub fn counts(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counts.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Iterates times in name order.
    pub fn times(&self) -> impl Iterator<Item = (&str, VirtualNanos)> {
        self.times.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Sum of the times under a dot-separated `prefix` (or the exact name).
    #[must_use]
    pub fn time_under(&self, prefix: &str) -> VirtualNanos {
        self.times
            .iter()
            .filter(|(name, _)| {
                name.strip_prefix(prefix)
                    .is_some_and(|rest| rest.is_empty() || rest.starts_with('.'))
            })
            .map(|(_, d)| *d)
            .sum()
    }

    /// True when nothing was recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty() && self.times.is_empty()
    }

    /// Publishes every count and time into `registry`, optionally under a
    /// dotted `prefix`.
    pub fn flush_into(&self, registry: &MetricsRegistry, prefix: &str) {
        let full = |name: &str| {
            if prefix.is_empty() {
                name.to_string()
            } else {
                format!("{prefix}.{name}")
            }
        };
        for (name, n) in &self.counts {
            registry.counter(&full(name)).add(*n);
        }
        for (name, d) in &self.times {
            registry.time(&full(name)).add(*d);
        }
    }
}

/// The one trait every layer records telemetry through.
///
/// Implementors only name their registry; recording methods come for free.
/// Keeping the trait this small means any component that can reach a
/// [`MetricsRegistry`] — frontend, backend, manager, device model, event
/// manager, SDK set — instruments identically.
pub trait Instrument {
    /// The registry this component records into.
    fn registry(&self) -> &MetricsRegistry;

    /// Adds `n` events to the counter `name`.
    fn count(&self, name: &str, n: u64) {
        self.registry().counter(name).add(n);
    }

    /// Charges virtual time to the accumulator `name`.
    fn charge(&self, name: &str, d: VirtualNanos) {
        self.registry().time(name).add(d);
    }

    /// Records a duration sample into the histogram `name`.
    fn observe(&self, name: &str, d: VirtualNanos) {
        self.registry().histogram(name).record(d);
    }

    /// Moves the gauge `name` by `delta` (negative moves down).
    fn gauge_add(&self, name: &str, delta: i64) {
        self.registry().gauge(name).add(delta);
    }

    /// Opens (or re-opens) the span at `name`.
    fn span(&self, name: &str) -> Span {
        self.registry().span(name)
    }
}

impl Instrument for MetricsRegistry {
    fn registry(&self) -> &MetricsRegistry {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_one_cell() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(2);
        b.inc();
        assert_eq!(reg.snapshot().count("x"), 3);
    }

    #[test]
    fn bind_counter_exposes_existing_cell() {
        let reg = MetricsRegistry::new();
        let hot = Counter::new();
        hot.add(5);
        reg.bind_counter("irq.injections", &hot);
        hot.add(2);
        assert_eq!(reg.snapshot().count("irq.injections"), 7);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let reg = MetricsRegistry::new();
        let g = reg.gauge("depth");
        g.add(5);
        g.sub(2);
        assert_eq!(reg.snapshot().level("depth"), 3);
        g.set(-1);
        assert_eq!(g.get(), -1);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn type_confusion_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("x");
        let _ = reg.gauge("x");
    }

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = VtHistogram::new();
        for ns in [1u64, 2, 3, 1000, 1_000_000] {
            h.record(VirtualNanos::from_nanos(ns));
        }
        h.record(VirtualNanos::ZERO);
        assert_eq!(h.count(), 6);
        assert_eq!(h.total().as_nanos(), 1_001_006);
        assert!(h.mean().as_nanos() > 0);
        // The median sample (3 ns) falls in bucket [2,4).
        assert!(h.quantile(0.5).as_nanos() <= 7);
        assert!(h.quantile(1.0).as_nanos() >= 1_000_000);
        assert_eq!(VtHistogram::new().quantile(0.99), VirtualNanos::ZERO);
        #[allow(deprecated)]
        {
            assert!(h.quantile_upper_bound(0.5).as_nanos() <= 7);
            assert_eq!(VtHistogram::new().quantile_upper_bound(0.99), VirtualNanos::ZERO);
        }
    }

    #[test]
    fn quantile_is_within_a_factor_of_two_of_the_exact_order_statistic() {
        // A deterministic long-tailed sample set exercising many buckets.
        let h = VtHistogram::new();
        let mut samples: Vec<u64> = Vec::new();
        let mut x = 0x9E37_79B9u64;
        for _ in 0..5000 {
            x = x.wrapping_mul(6_364_136_223_846_793_005).wrapping_add(1);
            // Spread over ~20 octaves.
            let s = 1 + (x >> 44) % (1 << 20);
            samples.push(s);
            h.record(VirtualNanos::from_nanos(s));
        }
        samples.sort_unstable();
        for p in [0.5, 0.9, 0.99, 0.999] {
            let idx = ((p * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            let exact = samples[idx - 1];
            let est = h.quantile(p).as_nanos();
            // Same log2 bucket ⇒ strictly within a factor of 2.
            assert!(est >= exact / 2 && est <= exact * 2, "p={p}: est {est} vs exact {exact}");
            // And inside the covering bucket's range.
            let bucket = 63 - exact.leading_zeros();
            assert!(est >= 1 << bucket && est < (1u64 << (bucket + 1)), "p={p}");
        }
        // Degenerate single-bucket histogram: interpolation stays in range.
        let one = VtHistogram::new();
        one.record(VirtualNanos::from_nanos(5));
        let q = one.quantile(0.5).as_nanos();
        assert!((4..8).contains(&q), "got {q}");
    }

    #[test]
    fn span_hierarchy_records_time_events_latency() {
        let reg = MetricsRegistry::new();
        let launch = reg.span("sdk.launch");
        let ci = launch.child("ci");
        ci.record(VirtualNanos::from_micros(4));
        ci.record(VirtualNanos::from_micros(6));
        launch.charge(VirtualNanos::from_micros(10));
        assert_eq!(ci.elapsed().as_micros(), 10);
        assert_eq!(ci.events(), 2);
        assert_eq!(launch.events(), 0);
        let snap = reg.snapshot();
        assert_eq!(snap.time("sdk.launch.ci").as_micros(), 10);
        assert_eq!(snap.count("sdk.launch.ci.events"), 2);
        assert_eq!(snap.time("sdk.launch").as_micros(), 10);
        match snap.get("sdk.launch.ci.latency") {
            Some(MetricValue::Histogram { count: 2, .. }) => {}
            other => panic!("unexpected latency value: {other:?}"),
        }
    }

    #[test]
    fn snapshot_prefix_iteration_is_boundary_aware() {
        let reg = MetricsRegistry::new();
        reg.counter("frontend.batch.merges").inc();
        reg.counter("frontend.batches").inc(); // must NOT match prefix
        reg.time("frontend.batch.flush").add(VirtualNanos::from_nanos(1));
        let snap = reg.snapshot();
        let under: Vec<_> = snap.with_prefix("frontend.batch").map(|(n, _)| n).collect();
        assert_eq!(under, vec!["frontend.batch.flush", "frontend.batch.merges"]);
    }

    #[test]
    fn metric_set_records_merges_and_flushes() {
        let mut a = MetricSet::new();
        a.count("messages", 2);
        a.charge("write.ser", VirtualNanos::from_nanos(100));
        let mut b = MetricSet::new();
        b.count("messages", 1);
        b.charge("write.ser", VirtualNanos::from_nanos(50));
        b.charge("write.page", VirtualNanos::from_nanos(7));
        a.merge(&b);
        assert_eq!(a.get_count("messages"), 3);
        assert_eq!(a.get_time("write.ser").as_nanos(), 150);
        assert_eq!(a.time_under("write").as_nanos(), 157);

        let reg = MetricsRegistry::new();
        a.flush_into(&reg, "op");
        let snap = reg.snapshot();
        assert_eq!(snap.count("op.messages"), 3);
        assert_eq!(snap.time("op.write.page").as_nanos(), 7);
    }

    #[test]
    fn metric_set_zero_entries_are_not_stored() {
        let mut s = MetricSet::new();
        s.count("a", 0);
        s.charge("b", VirtualNanos::ZERO);
        assert!(s.is_empty());
        s.set_count("c", 3);
        s.set_count("c", 0);
        s.set_time("d", VirtualNanos::from_nanos(1));
        s.set_time("d", VirtualNanos::ZERO);
        assert!(s.is_empty());
    }

    #[test]
    fn instrument_default_methods_record() {
        struct Layer {
            reg: MetricsRegistry,
        }
        impl Instrument for Layer {
            fn registry(&self) -> &MetricsRegistry {
                &self.reg
            }
        }
        let l = Layer { reg: MetricsRegistry::new() };
        l.count("c", 2);
        l.charge("t", VirtualNanos::from_nanos(9));
        l.observe("h", VirtualNanos::from_nanos(4));
        l.gauge_add("g", -3);
        l.span("s").record(VirtualNanos::from_nanos(1));
        let snap = l.reg.snapshot();
        assert_eq!(snap.count("c"), 2);
        assert_eq!(snap.time("t").as_nanos(), 9);
        assert_eq!(snap.level("g"), -3);
        assert_eq!(snap.count("s.events"), 1);
    }

    #[test]
    fn striped_totals_fold_exactly_across_threads() {
        // The closed-form oracle for the striped cells: T threads each add
        // K ones to a counter, K nanos to a time counter, and a balanced
        // +1/-1 pair to a gauge. Totals must fold to exactly T*K / T*K / 0
        // regardless of which stripe each thread landed on.
        let c = Counter::new();
        let t = TimeCounter::new();
        let g = Gauge::new();
        const T: usize = 16;
        const K: u64 = 1000;
        std::thread::scope(|s| {
            for _ in 0..T {
                let (c, t, g) = (c.clone(), t.clone(), g.clone());
                s.spawn(move || {
                    for _ in 0..K {
                        c.inc();
                        t.add(VirtualNanos::from_nanos(1));
                        g.add(1);
                        g.sub(1);
                    }
                });
            }
        });
        assert_eq!(c.get(), T as u64 * K);
        assert_eq!(t.get().as_nanos(), T as u64 * K);
        assert_eq!(g.get(), 0);
    }

    #[test]
    fn gauge_set_overrides_folded_level() {
        let g = Gauge::new();
        g.add(7);
        g.set(3);
        assert_eq!(g.get(), 3);
        g.set(-1);
        assert_eq!(g.get(), -1);
    }

    #[test]
    fn registry_clones_share_slots() {
        let reg = MetricsRegistry::new();
        let clone = reg.clone();
        clone.counter("shared").add(4);
        assert_eq!(reg.snapshot().count("shared"), 4);
        assert_eq!(reg.names(), vec!["shared".to_string()]);
    }
}
