//! The cost model: every timing constant of the simulation, in one place.
//!
//! The vPIM paper reports wall-clock time on a 16-core Xeon Silver 4215 with
//! 4 UPMEM PIM modules (8 ranks, 480 usable DPUs at 350 MHz). This module
//! replaces that testbed with documented constants. Absolute values are
//! calibrated against published UPMEM/Firecracker measurements (PrIM,
//! Gómez-Luna et al. 2022; Firecracker, Agache et al. 2020); the *relative*
//! behaviour (who wins, by what factor, where crossovers sit) is what the
//! reproduction preserves.

use serde::{Deserialize, Serialize};

use crate::time::VirtualNanos;

/// Which implementation handles byte (de)interleaving and matrix management
/// in the backend data path.
///
/// The paper found Rust's AVX-512 support too unstable and rewrote the hot
/// data path in C ("C enhancement", §4.2, Fig. 11–13). We reproduce this as
/// two data paths with distinct measured *and* modeled throughputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataPath {
    /// Scalar per-byte implementation — models the pure-Rust/AVX2 path
    /// (`vPIM-rust` in the paper).
    Scalar,
    /// Word-wise unrolled implementation — models the C/AVX-512 rewrite
    /// (`vPIM-C` and all later variants).
    Vectorized,
}

impl DataPath {
    /// All data paths, for exhaustive sweeps.
    pub const ALL: [DataPath; 2] = [DataPath::Scalar, DataPath::Vectorized];
}

/// Timing constants for the whole simulation.
///
/// All bandwidths are in MB/s (1 MB/s ⇒ 1 byte/µs), so
/// `ns = bytes × 1000 / bw_mbps`. Fixed costs are in nanoseconds.
///
/// # Example
///
/// ```
/// use simkit::CostModel;
///
/// let cm = CostModel::default();
/// // A virtio round trip costs far more than moving one 4 KiB page.
/// assert!(cm.virtio_round_trip() > cm.memcpy(4096));
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CostModel {
    // ---------------------------------------------------------------- DDR / rank
    /// Fixed setup cost of one rank transfer operation (driver bookkeeping,
    /// DDR command issue), per operation.
    pub rank_op_fixed_ns: u64,
    /// Bandwidth of a *parallel* rank transfer (all DPUs of a rank in one
    /// push), MB/s. PrIM reports ~6–7 GB/s per rank for wide transfers.
    pub rank_parallel_bw_mbps: u64,
    /// Bandwidth of a *serial* per-DPU transfer (one DPU at a time), MB/s.
    /// PrIM reports roughly an order of magnitude below parallel mode.
    pub rank_serial_bw_mbps: u64,
    /// One control-interface word operation (status poll, command write)
    /// performed natively through the mmap'ed CI, ns.
    pub ci_op_ns: u64,
    /// One kernel entry/exit (ioctl) for safe-mode driver operations, ns.
    pub syscall_ns: u64,
    /// Initial interval between CI status polls while the SDK waits for a
    /// synchronous launch (the wait loop backs off from here; see
    /// [`CostModel::launch_polls`]).
    pub launch_poll_interval_ns: u64,
    /// Coefficient (×10⁻⁶) of the sublinear poll-count curve
    /// `polls = k · t_ns^(2/3)`; calibrated to §5.3.1's CI counts.
    pub poll_curve_micro: u64,

    // ---------------------------------------------------------------- host CPU
    /// Plain host memcpy bandwidth, MB/s.
    pub memcpy_bw_mbps: u64,
    /// Byte-interleaving throughput of the scalar ("Rust") path, MB/s.
    pub interleave_scalar_bw_mbps: u64,
    /// Byte-interleaving throughput of the vectorized ("C") path, MB/s.
    pub interleave_vectorized_bw_mbps: u64,

    // ---------------------------------------------------------------- DPU
    /// DPU clock frequency in MHz (the evaluation hardware runs at 350 MHz).
    pub dpu_freq_mhz: u64,
    /// Fixed cycles per MRAM↔WRAM DMA transfer issued by a tasklet.
    pub mram_dma_fixed_cycles: u64,
    /// DMA cycles charged per 8 transferred bytes (≈0.5 cycles/byte ⇒
    /// ~700 MB/s per DPU at 350 MHz, matching UPMEM measurements).
    pub mram_dma_cycles_per_8_bytes: u64,
    /// Cycles for a DPU program launch handshake (boot tasklets, fault
    /// checks) charged once per launch.
    pub dpu_launch_fixed_cycles: u64,

    // ---------------------------------------------------------------- virtio / VMM
    /// Guest→host notification: vmexit through KVM plus Firecracker event
    /// dispatch, per kick, ns.
    pub virtio_kick_ns: u64,
    /// Host→guest completion: IRQ injection plus guest wakeup, per
    /// interrupt, ns.
    pub irq_inject_ns: u64,
    /// Walking one virtqueue descriptor (read, validate), ns.
    pub descriptor_walk_ns: u64,
    /// Translating one guest-physical page to a host virtual address, ns.
    pub gpa_translate_page_ns: u64,
    /// Serializing one page entry of the transfer matrix in the frontend, ns.
    pub serialize_page_ns: u64,
    /// Deserializing one page entry in the backend, ns.
    pub deserialize_page_ns: u64,
    /// Frontend page management: re-anchoring one userspace page for
    /// device I/O, ns.
    pub page_mgmt_page_ns: u64,
    /// Fixed frontend cost of serving a read from the prefetch cache
    /// (lookup + validity check), ns.
    pub prefetch_hit_fixed_ns: u64,
    /// Fixed frontend cost of appending a write to the batch buffer, ns.
    pub batch_append_fixed_ns: u64,

    // ---------------------------------------------------------------- manager
    /// End-to-end `dpu_alloc` round trip through the manager when a NAAV
    /// rank is immediately available (§4.2 reports 36 ms on average).
    pub manager_alloc_ns: u64,
    /// One manager RPC message hop (request or reply over the UNIX socket).
    pub manager_rpc_ns: u64,
    /// Bandwidth of the rank-content reset memset, MB/s. The paper reports
    /// ~597 ms to reset one rank (4 GiB of rank-mapped memory).
    pub rank_reset_bw_mbps: u64,

    // ---------------------------------------------------------------- misc
    /// Additional VM boot time contributed by one vUPMEM device (§3.2
    /// reports "up to 2 ms").
    pub vupmem_boot_ns: u64,
    /// Number of worker threads the backend uses for DPU operations
    /// (the paper empirically settles on 8 = one per chip).
    pub backend_threads: usize,
    /// Number of threads used for GPA→HVA translation in the backend.
    pub translate_threads: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            rank_op_fixed_ns: 2_000,
            rank_parallel_bw_mbps: 6_000,
            rank_serial_bw_mbps: 700,
            ci_op_ns: 1_000,
            syscall_ns: 1_500,
            launch_poll_interval_ns: 50_000,
            poll_curve_micro: 22_600,

            memcpy_bw_mbps: 12_000,
            interleave_scalar_bw_mbps: 500,
            interleave_vectorized_bw_mbps: 2_500,

            dpu_freq_mhz: 350,
            mram_dma_fixed_cycles: 77,
            mram_dma_cycles_per_8_bytes: 4,
            dpu_launch_fixed_cycles: 6_000,

            virtio_kick_ns: 14_000,
            irq_inject_ns: 11_000,
            descriptor_walk_ns: 120,
            gpa_translate_page_ns: 150,
            serialize_page_ns: 30,
            deserialize_page_ns: 35,
            page_mgmt_page_ns: 90,
            prefetch_hit_fixed_ns: 350,
            batch_append_fixed_ns: 250,

            manager_alloc_ns: 36_000_000,
            manager_rpc_ns: 25_000,
            rank_reset_bw_mbps: 7_200,

            vupmem_boot_ns: 2_000_000,
            backend_threads: 8,
            translate_threads: 4,
        }
    }
}

/// `ns = bytes × 1000 / bw_mbps`, computed in 128-bit to avoid overflow.
fn xfer_ns(bytes: u64, bw_mbps: u64) -> VirtualNanos {
    if bw_mbps == 0 {
        return VirtualNanos::MAX;
    }
    let ns = (bytes as u128 * 1_000) / bw_mbps as u128;
    VirtualNanos::from_nanos(ns.min(u64::MAX as u128) as u64)
}

impl CostModel {
    /// Duration of a parallel (whole-rank) transfer of `bytes`.
    #[must_use]
    pub fn rank_transfer_parallel(&self, bytes: u64) -> VirtualNanos {
        VirtualNanos::from_nanos(self.rank_op_fixed_ns) + xfer_ns(bytes, self.rank_parallel_bw_mbps)
    }

    /// Duration of a serial (single-DPU) transfer of `bytes`.
    #[must_use]
    pub fn rank_transfer_serial(&self, bytes: u64) -> VirtualNanos {
        VirtualNanos::from_nanos(self.rank_op_fixed_ns) + xfer_ns(bytes, self.rank_serial_bw_mbps)
    }

    /// Duration of one native control-interface operation.
    #[must_use]
    pub fn ci_op(&self) -> VirtualNanos {
        VirtualNanos::from_nanos(self.ci_op_ns)
    }

    /// Duration of one safe-mode kernel entry/exit (ioctl).
    #[must_use]
    pub fn syscall(&self) -> VirtualNanos {
        VirtualNanos::from_nanos(self.syscall_ns)
    }

    /// Number of CI status polls the SDK performs while waiting out a
    /// synchronous launch of the given duration (at least one).
    ///
    /// The SDK's wait loop backs off adaptively, so the poll count grows
    /// *sublinearly* with run time. The curve `polls ≈ k · t^(2/3)` is
    /// calibrated to the paper's reported checksum CI counts (§5.3.1:
    /// ≈8 000 ops for short runs, ≈28 000 for the longest): with
    /// `poll_curve_micro = 22_600` (k = 0.0226 in ns units), a 0.18 s run
    /// polls ≈7 200 times and a 1.37 s run ≈28 000 times.
    #[must_use]
    pub fn launch_polls(&self, launch_time: VirtualNanos) -> u64 {
        if self.launch_poll_interval_ns == 0 {
            return 1;
        }
        let t = launch_time.as_nanos() as f64;
        let k = self.poll_curve_micro as f64 / 1e6;
        let curved = (k * t.powf(2.0 / 3.0)) as u64;
        // Never more than one poll per interval (short runs stay linear).
        curved
            .min(launch_time.as_nanos() / self.launch_poll_interval_ns + 1)
            .max(1)
    }

    /// Duration of a plain host memcpy of `bytes`.
    #[must_use]
    pub fn memcpy(&self, bytes: u64) -> VirtualNanos {
        xfer_ns(bytes, self.memcpy_bw_mbps)
    }

    /// Duration of (de)interleaving `bytes` on the given [`DataPath`].
    #[must_use]
    pub fn interleave(&self, bytes: u64, path: DataPath) -> VirtualNanos {
        let bw = match path {
            DataPath::Scalar => self.interleave_scalar_bw_mbps,
            DataPath::Vectorized => self.interleave_vectorized_bw_mbps,
        };
        xfer_ns(bytes, bw)
    }

    /// Converts DPU cycles to virtual time at the configured frequency.
    #[must_use]
    pub fn dpu_cycles(&self, cycles: u64) -> VirtualNanos {
        if self.dpu_freq_mhz == 0 {
            return VirtualNanos::MAX;
        }
        let ns = (cycles as u128 * 1_000) / self.dpu_freq_mhz as u128;
        VirtualNanos::from_nanos(ns.min(u64::MAX as u128) as u64)
    }

    /// DPU cycles consumed by one MRAM↔WRAM DMA of `bytes`.
    #[must_use]
    pub fn mram_dma_cycles(&self, bytes: u64) -> u64 {
        self.mram_dma_fixed_cycles
            .saturating_add(bytes.div_ceil(8).saturating_mul(self.mram_dma_cycles_per_8_bytes))
    }

    /// One full guest↔VMM transition: kick (vmexit + dispatch) plus the
    /// completion IRQ — the paper's dominant virtualization cost.
    #[must_use]
    pub fn virtio_round_trip(&self) -> VirtualNanos {
        VirtualNanos::from_nanos(self.virtio_kick_ns + self.irq_inject_ns)
    }

    /// Cost of walking `n` virtqueue descriptors.
    #[must_use]
    pub fn descriptor_walk(&self, n: u64) -> VirtualNanos {
        VirtualNanos::from_nanos(self.descriptor_walk_ns).saturating_mul(n)
    }

    /// Cost of translating `pages` guest-physical pages using the backend's
    /// translation thread pool.
    #[must_use]
    pub fn gpa_translate(&self, pages: u64) -> VirtualNanos {
        let threads = self.translate_threads.max(1) as u64;
        VirtualNanos::from_nanos(self.gpa_translate_page_ns)
            .saturating_mul(pages.div_ceil(threads))
    }

    /// Frontend serialization of a transfer matrix with `pages` page slots.
    #[must_use]
    pub fn serialize_matrix(&self, pages: u64) -> VirtualNanos {
        VirtualNanos::from_nanos(self.serialize_page_ns).saturating_mul(pages)
    }

    /// Backend deserialization of a transfer matrix with `pages` page slots.
    #[must_use]
    pub fn deserialize_matrix(&self, pages: u64) -> VirtualNanos {
        VirtualNanos::from_nanos(self.deserialize_page_ns).saturating_mul(pages)
    }

    /// Frontend page management for `pages` userspace pages.
    #[must_use]
    pub fn page_mgmt(&self, pages: u64) -> VirtualNanos {
        VirtualNanos::from_nanos(self.page_mgmt_page_ns).saturating_mul(pages)
    }

    /// Serving `bytes` from the frontend prefetch cache (no backend trip).
    #[must_use]
    pub fn prefetch_hit(&self, bytes: u64) -> VirtualNanos {
        VirtualNanos::from_nanos(self.prefetch_hit_fixed_ns) + self.memcpy(bytes)
    }

    /// Appending `bytes` to the frontend batch buffer (no backend trip).
    #[must_use]
    pub fn batch_append(&self, bytes: u64) -> VirtualNanos {
        VirtualNanos::from_nanos(self.batch_append_fixed_ns) + self.memcpy(bytes)
    }

    /// Full manager allocation round trip for an immediately available rank.
    #[must_use]
    pub fn manager_alloc(&self) -> VirtualNanos {
        VirtualNanos::from_nanos(self.manager_alloc_ns)
    }

    /// One manager RPC hop.
    #[must_use]
    pub fn manager_rpc(&self) -> VirtualNanos {
        VirtualNanos::from_nanos(self.manager_rpc_ns)
    }

    /// Resetting `bytes` of rank-mapped memory on release.
    #[must_use]
    pub fn rank_reset(&self, bytes: u64) -> VirtualNanos {
        xfer_ns(bytes, self.rank_reset_bw_mbps)
    }

    /// Checkpointing `bytes` of resident rank state into host memory (the
    /// copy-out half of a preemption; runs at host memcpy bandwidth).
    #[must_use]
    pub fn rank_snapshot(&self, bytes: u64) -> VirtualNanos {
        self.memcpy(bytes)
    }

    /// Restoring `bytes` of parked rank state onto a freshly reset rank
    /// (the copy-in half of a re-grant; runs at host memcpy bandwidth).
    #[must_use]
    pub fn rank_restore(&self, bytes: u64) -> VirtualNanos {
        self.memcpy(bytes)
    }

    /// Boot-time contribution of one vUPMEM device.
    #[must_use]
    pub fn vupmem_boot(&self) -> VirtualNanos {
        VirtualNanos::from_nanos(self.vupmem_boot_ns)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_math_is_linear() {
        let cm = CostModel::default();
        let one = cm.memcpy(1 << 20);
        let two = cm.memcpy(2 << 20);
        assert_eq!(two.as_nanos(), one.as_nanos() * 2);
    }

    #[test]
    fn parallel_rank_transfer_beats_serial() {
        let cm = CostModel::default();
        assert!(cm.rank_transfer_parallel(1 << 20) < cm.rank_transfer_serial(1 << 20));
    }

    #[test]
    fn vectorized_interleave_beats_scalar() {
        let cm = CostModel::default();
        assert!(
            cm.interleave(1 << 20, DataPath::Vectorized) < cm.interleave(1 << 20, DataPath::Scalar)
        );
    }

    #[test]
    fn zero_bandwidth_saturates_instead_of_panicking() {
        let cm = CostModel {
            memcpy_bw_mbps: 0,
            ..CostModel::default()
        };
        assert!(cm.memcpy(1).is_saturated());
    }

    #[test]
    fn dma_cycles_include_fixed_part() {
        let cm = CostModel::default();
        assert_eq!(cm.mram_dma_cycles(0), cm.mram_dma_fixed_cycles);
        assert!(cm.mram_dma_cycles(8) > cm.mram_dma_cycles(0));
    }

    #[test]
    fn round_trip_dominates_small_copies() {
        let cm = CostModel::default();
        // The paper's central finding: transition count, not bytes, drives
        // overhead. One round trip must dwarf moving a small payload.
        assert!(cm.virtio_round_trip() > cm.memcpy(4096) * 10);
    }

    #[test]
    fn reset_time_matches_paper_order_of_magnitude() {
        let cm = CostModel::default();
        // ~597 ms for one 4 GiB rank (§4.2).
        let t = cm.rank_reset(4 << 30);
        assert!(t.as_millis() > 400 && t.as_millis() < 800, "{t}");
    }

    #[test]
    fn translate_uses_thread_pool() {
        let cm = CostModel::default();
        let serial = VirtualNanos::from_nanos(cm.gpa_translate_page_ns).saturating_mul(1000);
        assert!(cm.gpa_translate(1000) < serial);
    }
}
