//! Thread-to-stripe assignment shared by every sharded structure.
//!
//! [`BytePool`](crate::pool::BytePool) introduced the idiom: split a hot
//! structure into a small fixed number of independently-locked (or
//! independently-written) stripes and bind each thread to one stripe
//! round-robin on first use, so steady-state worker pools spread evenly
//! and rarely contend. The sharded control plane (manager rank table,
//! sched admission queue, striped telemetry cells) reuses the same
//! assignment so one thread consistently lands on the same stripe across
//! *all* striped structures — good for cache locality and for reasoning
//! about contention.
//!
//! The assignment is process-global: the first `n` distinct threads get
//! distinct stripes (for any stripe count dividing the global counter the
//! spread stays round-robin). The raw per-thread ticket is stable for the
//! thread's lifetime; [`thread_slot`] reduces it modulo the caller's
//! stripe count, so structures with different stripe counts still agree
//! on relative thread placement.

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Default stripe count for striped structures (matches
/// [`crate::pool::SHARDS`] — one stripe per steady-state worker of the
/// default 8-thread pool).
pub const STRIPES: usize = 8;

/// The calling thread's stable ticket (assigned round-robin on first use).
fn thread_ticket() -> usize {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static TICKET: Cell<usize> = const { Cell::new(usize::MAX) };
    }
    TICKET.with(|t| {
        if t.get() == usize::MAX {
            t.set(NEXT.fetch_add(1, Ordering::Relaxed));
        }
        t.get()
    })
}

/// The calling thread's stripe in `[0, n)` — stable for the thread's
/// lifetime, spread round-robin over threads in creation order.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn thread_slot(n: usize) -> usize {
    assert!(n > 0, "stripe count must be nonzero");
    thread_ticket() % n
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_is_stable_within_a_thread() {
        let a = thread_slot(STRIPES);
        let b = thread_slot(STRIPES);
        assert_eq!(a, b);
        assert!(a < STRIPES);
    }

    #[test]
    fn different_counts_agree_on_the_same_ticket() {
        let wide = thread_slot(64);
        let narrow = thread_slot(8);
        assert_eq!(wide % 8, narrow);
    }

    #[test]
    fn threads_spread_over_slots() {
        use std::collections::HashSet;
        use std::sync::Mutex;
        let seen = Mutex::new(HashSet::new());
        std::thread::scope(|s| {
            for _ in 0..32 {
                s.spawn(|| {
                    seen.lock().unwrap().insert(thread_slot(4));
                });
            }
        });
        // 32 round-robin tickets over 4 slots must cover every slot.
        assert_eq!(seen.lock().unwrap().len(), 4);
    }
}
