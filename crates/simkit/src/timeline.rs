//! Segmented virtual-time accounting, mirroring the paper's two breakdowns.
//!
//! §5.1 ("Metrics") defines:
//!
//! * an **application-centric** breakdown — data loading (`CPU-DPU`), task
//!   execution (`DPU`), synchronization through the host (`Inter-DPU`), and
//!   result retrieval (`DPU-CPU`) — used by Fig. 8, 9, 10 and 14;
//! * a **driver-centric** breakdown — control-interface operations (`CI`),
//!   `read-from-rank` and `write-to-rank` — used by Fig. 12, further split
//!   for `write-to-rank` into page management, matrix serialization, virtio
//!   interrupt handling, matrix deserialization and the data transfer itself
//!   (Fig. 13).

use core::fmt;

use serde::{Deserialize, Serialize};

use crate::telemetry::{MetricSet, MetricsRegistry};
use crate::time::VirtualNanos;

/// Application-centric segment of an UPMEM program's execution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppSegment {
    /// Input data loading: host memory → MRAM.
    CpuToDpu,
    /// DPU program execution.
    Dpu,
    /// Synchronization between DPUs via the host CPU.
    InterDpu,
    /// Result retrieval: MRAM → host memory.
    DpuToCpu,
}

impl AppSegment {
    /// All segments in the paper's plotting order.
    pub const ALL: [AppSegment; 4] = [
        AppSegment::CpuToDpu,
        AppSegment::Dpu,
        AppSegment::InterDpu,
        AppSegment::DpuToCpu,
    ];

    /// The label used in the paper's figures.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            AppSegment::CpuToDpu => "CPU-DPU",
            AppSegment::Dpu => "DPU",
            AppSegment::InterDpu => "Inter-DPU",
            AppSegment::DpuToCpu => "DPU-CPU",
        }
    }

    /// The canonical telemetry metric name of this segment.
    #[must_use]
    pub const fn metric_name(self) -> &'static str {
        match self {
            AppSegment::CpuToDpu => "app.cpu_dpu",
            AppSegment::Dpu => "app.dpu",
            AppSegment::InterDpu => "app.inter_dpu",
            AppSegment::DpuToCpu => "app.dpu_cpu",
        }
    }
}

impl fmt::Display for AppSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Driver-centric segment of rank-operation handling (Fig. 12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DriverSegment {
    /// Control-interface operations.
    Ci,
    /// `read-from-rank` operations.
    ReadRank,
    /// `write-to-rank` operations.
    WriteRank,
}

impl DriverSegment {
    /// All segments in the paper's plotting order.
    pub const ALL: [DriverSegment; 3] =
        [DriverSegment::Ci, DriverSegment::ReadRank, DriverSegment::WriteRank];

    /// The label used in the paper's figures.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            DriverSegment::Ci => "CI",
            DriverSegment::ReadRank => "R-rank",
            DriverSegment::WriteRank => "W-rank",
        }
    }

    /// The canonical telemetry metric name of this segment.
    #[must_use]
    pub const fn metric_name(self) -> &'static str {
        match self {
            DriverSegment::Ci => "driver.ci",
            DriverSegment::ReadRank => "driver.read_rank",
            DriverSegment::WriteRank => "driver.write_rank",
        }
    }
}

impl fmt::Display for DriverSegment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Step of a `write-to-rank` operation (Fig. 13).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum WriteStep {
    /// Frontend reallocates userspace pages to kernel-space pointers.
    PageMgmt,
    /// Frontend serializes the transfer matrix into virtqueue buffers.
    Serialize,
    /// Virtio interrupt handling (kick + completion IRQ).
    Interrupt,
    /// Backend reassembles the transfer matrix (incl. GPA→HVA translation).
    Deserialize,
    /// The data transfer to the UPMEM rank itself (incl. interleaving).
    TransferData,
}

impl WriteStep {
    /// All steps in the paper's plotting order (Fig. 13 legend).
    pub const ALL: [WriteStep; 5] = [
        WriteStep::PageMgmt,
        WriteStep::Serialize,
        WriteStep::Interrupt,
        WriteStep::Deserialize,
        WriteStep::TransferData,
    ];

    /// The label used in the paper's figures.
    #[must_use]
    pub const fn label(self) -> &'static str {
        match self {
            WriteStep::PageMgmt => "Page",
            WriteStep::Serialize => "Ser",
            WriteStep::Interrupt => "Int",
            WriteStep::Deserialize => "Deser",
            WriteStep::TransferData => "T-data",
        }
    }

    /// The canonical telemetry metric name of this step.
    #[must_use]
    pub const fn metric_name(self) -> &'static str {
        match self {
            WriteStep::PageMgmt => "write.page_mgmt",
            WriteStep::Serialize => "write.serialize",
            WriteStep::Interrupt => "write.interrupt",
            WriteStep::Deserialize => "write.deserialize",
            WriteStep::TransferData => "write.transfer_data",
        }
    }
}

impl fmt::Display for WriteStep {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// A segmented virtual-time accumulator for one benchmark run — a typed
/// view over a [`MetricSet`].
///
/// Both of the paper's breakdowns plus message counters are tracked so a
/// single run can be rendered as Fig. 8-style (application) or Fig. 12/13
/// style (driver) output. Every charge lands in the underlying metric set
/// under the segment's [`AppSegment::metric_name`] (and friends), so a
/// timeline can be published into a [`MetricsRegistry`] wholesale with
/// [`Timeline::flush_into`] and queried back by name.
///
/// # Example
///
/// ```
/// use simkit::{AppSegment, Timeline, VirtualNanos};
///
/// let mut tl = Timeline::new();
/// tl.charge_app(AppSegment::Dpu, VirtualNanos::from_millis(2));
/// tl.count_message();
/// assert_eq!(tl.app(AppSegment::Dpu).as_millis(), 2);
/// assert_eq!(tl.messages(), 1);
/// assert_eq!(tl.metrics().get_time("app.dpu").as_millis(), 2);
/// ```
#[derive(Debug, Default, Clone, PartialEq, Serialize, Deserialize)]
pub struct Timeline {
    metrics: MetricSet,
}

/// Metric name of the guest↔VMM message exchange count.
pub const METRIC_MESSAGES: &str = "messages";
/// Metric name of the hardware rank-operation count.
pub const METRIC_RANK_OPS: &str = "rank_ops";

impl Timeline {
    /// Creates an empty timeline.
    #[must_use]
    pub fn new() -> Self {
        Timeline::default()
    }

    /// Adds `d` to an application-centric segment.
    pub fn charge_app(&mut self, seg: AppSegment, d: VirtualNanos) {
        self.metrics.charge(seg.metric_name(), d);
    }

    /// Adds `d` to a driver-centric segment.
    pub fn charge_driver(&mut self, seg: DriverSegment, d: VirtualNanos) {
        self.metrics.charge(seg.metric_name(), d);
    }

    /// Adds `d` to a `write-to-rank` step.
    pub fn charge_write_step(&mut self, step: WriteStep, d: VirtualNanos) {
        self.metrics.charge(step.metric_name(), d);
    }

    /// Records one guest↔VMM message exchange.
    pub fn count_message(&mut self) {
        self.metrics.count(METRIC_MESSAGES, 1);
    }

    /// Records `n` guest↔VMM message exchanges.
    pub fn add_messages(&mut self, n: u64) {
        self.metrics.count(METRIC_MESSAGES, n);
    }

    /// Records one rank operation issued to the hardware.
    pub fn count_rank_op(&mut self) {
        self.metrics.count(METRIC_RANK_OPS, 1);
    }

    /// Records `n` rank operations.
    pub fn add_rank_ops(&mut self, n: u64) {
        self.metrics.count(METRIC_RANK_OPS, n);
    }

    /// Accumulated time in one application-centric segment.
    #[must_use]
    pub fn app(&self, seg: AppSegment) -> VirtualNanos {
        self.metrics.get_time(seg.metric_name())
    }

    /// Accumulated time in one driver-centric segment.
    #[must_use]
    pub fn driver(&self, seg: DriverSegment) -> VirtualNanos {
        self.metrics.get_time(seg.metric_name())
    }

    /// Accumulated time in one `write-to-rank` step.
    #[must_use]
    pub fn write_step(&self, step: WriteStep) -> VirtualNanos {
        self.metrics.get_time(step.metric_name())
    }

    /// Total over the application-centric segments — the paper's headline
    /// "execution time".
    #[must_use]
    pub fn app_total(&self) -> VirtualNanos {
        self.metrics.time_under("app")
    }

    /// Total over the driver-centric segments.
    #[must_use]
    pub fn driver_total(&self) -> VirtualNanos {
        self.metrics.time_under("driver")
    }

    /// Total over the `write-to-rank` steps.
    #[must_use]
    pub fn write_total(&self) -> VirtualNanos {
        self.metrics.time_under("write")
    }

    /// Number of guest↔VMM message exchanges recorded.
    #[must_use]
    pub fn messages(&self) -> u64 {
        self.metrics.get_count(METRIC_MESSAGES)
    }

    /// Number of rank operations recorded.
    #[must_use]
    pub fn rank_ops(&self) -> u64 {
        self.metrics.get_count(METRIC_RANK_OPS)
    }

    /// Merges another timeline into this one (summing every bucket).
    pub fn merge(&mut self, other: &Timeline) {
        self.metrics.merge(&other.metrics);
    }

    /// The underlying metric set.
    #[must_use]
    pub fn metrics(&self) -> &MetricSet {
        &self.metrics
    }

    /// Consumes the timeline, returning its metric set.
    #[must_use]
    pub fn into_metrics(self) -> MetricSet {
        self.metrics
    }

    /// Publishes every segment and counter into `registry` under `prefix`
    /// (pass `""` for none).
    pub fn flush_into(&self, registry: &MetricsRegistry, prefix: &str) {
        self.metrics.flush_into(registry, prefix);
    }
}

impl From<Timeline> for MetricSet {
    fn from(tl: Timeline) -> MetricSet {
        tl.into_metrics()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segments_accumulate_independently() {
        let mut tl = Timeline::new();
        tl.charge_app(AppSegment::CpuToDpu, VirtualNanos::from_nanos(10));
        tl.charge_app(AppSegment::CpuToDpu, VirtualNanos::from_nanos(5));
        tl.charge_app(AppSegment::DpuToCpu, VirtualNanos::from_nanos(1));
        assert_eq!(tl.app(AppSegment::CpuToDpu).as_nanos(), 15);
        assert_eq!(tl.app(AppSegment::DpuToCpu).as_nanos(), 1);
        assert_eq!(tl.app(AppSegment::Dpu), VirtualNanos::ZERO);
        assert_eq!(tl.app_total().as_nanos(), 16);
    }

    #[test]
    fn driver_and_write_step_buckets() {
        let mut tl = Timeline::new();
        tl.charge_driver(DriverSegment::WriteRank, VirtualNanos::from_nanos(9));
        tl.charge_write_step(WriteStep::TransferData, VirtualNanos::from_nanos(7));
        tl.charge_write_step(WriteStep::Interrupt, VirtualNanos::from_nanos(2));
        assert_eq!(tl.driver_total().as_nanos(), 9);
        assert_eq!(tl.write_total().as_nanos(), 9);
        assert_eq!(tl.write_step(WriteStep::TransferData).as_nanos(), 7);
    }

    #[test]
    fn merge_sums_everything() {
        let mut a = Timeline::new();
        a.charge_app(AppSegment::Dpu, VirtualNanos::from_nanos(3));
        a.count_message();
        let mut b = Timeline::new();
        b.charge_app(AppSegment::Dpu, VirtualNanos::from_nanos(4));
        b.count_message();
        b.count_rank_op();
        a.merge(&b);
        assert_eq!(a.app(AppSegment::Dpu).as_nanos(), 7);
        assert_eq!(a.messages(), 2);
        assert_eq!(a.rank_ops(), 1);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(AppSegment::CpuToDpu.label(), "CPU-DPU");
        assert_eq!(DriverSegment::ReadRank.label(), "R-rank");
        assert_eq!(WriteStep::TransferData.label(), "T-data");
    }
}
