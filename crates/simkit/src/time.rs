//! The virtual time unit used throughout the simulation.

use core::fmt;
use core::iter::Sum;
use core::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A duration (or instant offset) in virtual nanoseconds.
///
/// `VirtualNanos` is a saturating, totally ordered quantity. Saturation is
/// deliberate: cost-model arithmetic on adversarial (property-test) inputs
/// must never panic or wrap, and a saturated timeline is trivially detectable
/// (`is_saturated`).
///
/// # Example
///
/// ```
/// use simkit::VirtualNanos;
///
/// let a = VirtualNanos::from_micros(3);
/// let b = VirtualNanos::from_nanos(500);
/// assert_eq!((a + b).as_nanos(), 3_500);
/// assert!(a > b);
/// ```
#[derive(
    Debug, Default, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize,
)]
pub struct VirtualNanos(u64);

impl VirtualNanos {
    /// The zero duration.
    pub const ZERO: VirtualNanos = VirtualNanos(0);
    /// The saturation point of virtual time arithmetic.
    pub const MAX: VirtualNanos = VirtualNanos(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    #[must_use]
    pub const fn from_nanos(ns: u64) -> Self {
        VirtualNanos(ns)
    }

    /// Creates a duration from microseconds.
    #[must_use]
    pub const fn from_micros(us: u64) -> Self {
        VirtualNanos(us.saturating_mul(1_000))
    }

    /// Creates a duration from milliseconds.
    #[must_use]
    pub const fn from_millis(ms: u64) -> Self {
        VirtualNanos(ms.saturating_mul(1_000_000))
    }

    /// Creates a duration from whole seconds.
    #[must_use]
    pub const fn from_secs(s: u64) -> Self {
        VirtualNanos(s.saturating_mul(1_000_000_000))
    }

    /// Raw nanosecond count.
    #[must_use]
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Duration in (truncated) microseconds.
    #[must_use]
    pub const fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Duration in (truncated) milliseconds.
    #[must_use]
    pub const fn as_millis(self) -> u64 {
        self.0 / 1_000_000
    }

    /// Duration as fractional seconds.
    #[must_use]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Duration as fractional milliseconds.
    #[must_use]
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// True if arithmetic has saturated (a bug or absurd input, never a
    /// legitimate measurement).
    #[must_use]
    pub const fn is_saturated(self) -> bool {
        self.0 == u64::MAX
    }

    /// Saturating addition.
    #[must_use]
    pub const fn saturating_add(self, rhs: Self) -> Self {
        VirtualNanos(self.0.saturating_add(rhs.0))
    }

    /// Saturating subtraction (floors at zero).
    #[must_use]
    pub const fn saturating_sub(self, rhs: Self) -> Self {
        VirtualNanos(self.0.saturating_sub(rhs.0))
    }

    /// Saturating scalar multiplication.
    #[must_use]
    pub const fn saturating_mul(self, k: u64) -> Self {
        VirtualNanos(self.0.saturating_mul(k))
    }

    /// The larger of two durations.
    #[must_use]
    pub fn max(self, other: Self) -> Self {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The ratio `self / other` as `f64`, or `f64::INFINITY` when `other`
    /// is zero. Used to compute overhead factors ("x-times native").
    #[must_use]
    pub fn ratio(self, other: Self) -> f64 {
        if other.0 == 0 {
            f64::INFINITY
        } else {
            self.0 as f64 / other.0 as f64
        }
    }
}

impl Add for VirtualNanos {
    type Output = VirtualNanos;
    fn add(self, rhs: Self) -> Self {
        self.saturating_add(rhs)
    }
}

impl AddAssign for VirtualNanos {
    fn add_assign(&mut self, rhs: Self) {
        *self = *self + rhs;
    }
}

impl Sub for VirtualNanos {
    type Output = VirtualNanos;
    fn sub(self, rhs: Self) -> Self {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for VirtualNanos {
    fn sub_assign(&mut self, rhs: Self) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for VirtualNanos {
    type Output = VirtualNanos;
    fn mul(self, rhs: u64) -> Self {
        self.saturating_mul(rhs)
    }
}

impl Div<u64> for VirtualNanos {
    type Output = VirtualNanos;
    /// # Panics
    ///
    /// Panics on division by zero, like integer division.
    fn div(self, rhs: u64) -> Self {
        VirtualNanos(self.0 / rhs)
    }
}

impl Sum for VirtualNanos {
    fn sum<I: Iterator<Item = Self>>(iter: I) -> Self {
        iter.fold(VirtualNanos::ZERO, |acc, d| acc + d)
    }
}

impl fmt::Display for VirtualNanos {
    /// Human-oriented rendering with an adaptive unit.
    ///
    /// ```
    /// use simkit::VirtualNanos;
    /// assert_eq!(VirtualNanos::from_nanos(512).to_string(), "512ns");
    /// assert_eq!(VirtualNanos::from_micros(21).to_string(), "21.000us");
    /// assert_eq!(VirtualNanos::from_millis(3).to_string(), "3.000ms");
    /// assert_eq!(VirtualNanos::from_secs(2).to_string(), "2.000s");
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.3}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.3}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_agree() {
        assert_eq!(VirtualNanos::from_micros(1), VirtualNanos::from_nanos(1_000));
        assert_eq!(VirtualNanos::from_millis(1), VirtualNanos::from_micros(1_000));
        assert_eq!(VirtualNanos::from_secs(1), VirtualNanos::from_millis(1_000));
    }

    #[test]
    fn arithmetic_saturates() {
        let max = VirtualNanos::MAX;
        assert!(max.saturating_add(VirtualNanos::from_nanos(1)).is_saturated());
        assert_eq!(
            VirtualNanos::ZERO.saturating_sub(VirtualNanos::from_nanos(5)),
            VirtualNanos::ZERO
        );
        assert!(max.saturating_mul(2).is_saturated());
    }

    #[test]
    fn ratio_handles_zero_denominator() {
        let a = VirtualNanos::from_nanos(10);
        assert_eq!(a.ratio(VirtualNanos::ZERO), f64::INFINITY);
        assert!((a.ratio(VirtualNanos::from_nanos(5)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ordering_and_max() {
        let a = VirtualNanos::from_nanos(3);
        let b = VirtualNanos::from_nanos(7);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
    }

    #[test]
    fn sum_over_iterator() {
        let total: VirtualNanos = (1..=4).map(VirtualNanos::from_nanos).sum();
        assert_eq!(total.as_nanos(), 10);
    }

    #[test]
    fn conversions_truncate() {
        let d = VirtualNanos::from_nanos(1_999_999);
        assert_eq!(d.as_micros(), 1_999);
        assert_eq!(d.as_millis(), 1);
        assert!((d.as_secs_f64() - 0.001_999_999).abs() < 1e-12);
    }
}
