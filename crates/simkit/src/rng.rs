//! Seeded, reproducible randomness for workload generation.
//!
//! Every dataset in the reproduction (PrIM inputs, the checksum file, the
//! synthetic Wikipedia corpus) is generated from a [`SimRng`] so that runs
//! are bit-for-bit reproducible across machines and invocations.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random number generator with convenience helpers.
///
/// # Example
///
/// ```
/// use simkit::SimRng;
///
/// let mut a = SimRng::seeded(42);
/// let mut b = SimRng::seeded(42);
/// assert_eq!(a.u64_below(1000), b.u64_below(1000));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng(StdRng);

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        SimRng(StdRng::seed_from_u64(seed))
    }

    /// Derives an independent child generator, so sub-workloads do not
    /// perturb each other's streams.
    #[must_use]
    pub fn fork(&mut self, tag: u64) -> Self {
        let s = self.0.gen::<u64>() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seeded(s)
    }

    /// An independent generator for stream `stream` of base seed `seed`,
    /// **without** consuming any parent state: `stream(s, i)` is a pure
    /// function of `(s, i)`, so per-item streams (one per tenant session,
    /// one per shard, …) can be re-derived in any order — the property the
    /// load harness relies on to stay bit-identical under parallel
    /// execution.
    #[must_use]
    pub fn stream(seed: u64, stream: u64) -> Self {
        // splitmix64 over the combined word decorrelates adjacent streams.
        let mut z = seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        SimRng::seeded(z ^ (z >> 31))
    }

    /// An exponentially distributed gap with the given mean (in integer
    /// nanoseconds, rounded; at least 1 when `mean_ns > 0`). The draw for
    /// Poisson arrival processes and think times.
    #[must_use]
    pub fn exp_gap_ns(&mut self, mean_ns: u64) -> u64 {
        if mean_ns == 0 {
            return 0;
        }
        // Inverse CDF; 1-u avoids ln(0).
        let u = self.f64();
        let gap = -(1.0 - u).ln() * mean_ns as f64;
        (gap.round() as u64).max(1)
    }

    /// Uniform `u64` in `[0, bound)`. Returns 0 when `bound == 0`.
    #[must_use]
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.0.gen_range(0..bound)
        }
    }

    /// Uniform `u32`.
    #[must_use]
    pub fn u32(&mut self) -> u32 {
        self.0.gen()
    }

    /// Uniform `usize` in `[0, bound)`. Returns 0 when `bound == 0`.
    #[must_use]
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.u64_below(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[must_use]
    pub fn f64(&mut self) -> f64 {
        self.0.gen()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[must_use]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Fills `buf` with uniform bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.0.fill_bytes(buf);
    }

    /// A vector of `n` uniform bytes.
    #[must_use]
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut v = vec![0u8; n];
        self.fill_bytes(&mut v);
        v
    }

    /// A vector of `n` uniform `u32`s below `bound`.
    #[must_use]
    pub fn u32s_below(&mut self, n: usize, bound: u32) -> Vec<u32> {
        (0..n).map(|_| self.u64_below(u64::from(bound.max(1))) as u32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(7);
        let mut b = SimRng::seeded(7);
        assert_eq!(a.bytes(64), b.bytes(64));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seeded(7);
        let mut b = SimRng::seeded(8);
        assert_ne!(a.bytes(64), b.bytes(64));
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = SimRng::seeded(1);
        let mut parent2 = SimRng::seeded(1);
        let mut c1 = parent1.fork(3);
        let mut c2 = parent2.fork(3);
        assert_eq!(c1.bytes(16), c2.bytes(16));
        // Forking with different tags yields different streams.
        let mut p = SimRng::seeded(1);
        let mut q = SimRng::seeded(1);
        let mut ca = p.fork(1);
        let mut cb = q.fork(2);
        assert_ne!(ca.bytes(16), cb.bytes(16));
    }

    #[test]
    fn bounds_are_respected() {
        let mut r = SimRng::seeded(9);
        for _ in 0..1000 {
            assert!(r.u64_below(10) < 10);
        }
        assert_eq!(r.u64_below(0), 0);
        assert_eq!(r.usize_below(0), 0);
    }

    #[test]
    fn chance_edges() {
        let mut r = SimRng::seeded(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }

    #[test]
    fn streams_are_pure_and_independent() {
        // Pure in (seed, stream): re-derivable in any order.
        assert_eq!(SimRng::stream(9, 4).bytes(32), SimRng::stream(9, 4).bytes(32));
        assert_ne!(SimRng::stream(9, 4).bytes(32), SimRng::stream(9, 5).bytes(32));
        assert_ne!(SimRng::stream(9, 4).bytes(32), SimRng::stream(8, 4).bytes(32));
        // Adjacent streams decorrelate even for tiny seeds.
        assert_ne!(SimRng::stream(0, 0).bytes(32), SimRng::stream(0, 1).bytes(32));
    }

    #[test]
    fn exp_gap_has_roughly_the_requested_mean() {
        let mut r = SimRng::seeded(11);
        let n = 20_000u64;
        let mean = 1_000u64;
        let sum: u64 = (0..n).map(|_| r.exp_gap_ns(mean)).sum();
        let got = sum / n;
        assert!((700..1300).contains(&got), "mean {got}");
        assert_eq!(r.exp_gap_ns(0), 0);
        assert!(r.exp_gap_ns(1) >= 1);
    }
}
