//! Seeded, reproducible randomness for workload generation.
//!
//! Every dataset in the reproduction (PrIM inputs, the checksum file, the
//! synthetic Wikipedia corpus) is generated from a [`SimRng`] so that runs
//! are bit-for-bit reproducible across machines and invocations.

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};

/// A deterministic random number generator with convenience helpers.
///
/// # Example
///
/// ```
/// use simkit::SimRng;
///
/// let mut a = SimRng::seeded(42);
/// let mut b = SimRng::seeded(42);
/// assert_eq!(a.u64_below(1000), b.u64_below(1000));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng(StdRng);

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    #[must_use]
    pub fn seeded(seed: u64) -> Self {
        SimRng(StdRng::seed_from_u64(seed))
    }

    /// Derives an independent child generator, so sub-workloads do not
    /// perturb each other's streams.
    #[must_use]
    pub fn fork(&mut self, tag: u64) -> Self {
        let s = self.0.gen::<u64>() ^ tag.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        SimRng::seeded(s)
    }

    /// Uniform `u64` in `[0, bound)`. Returns 0 when `bound == 0`.
    #[must_use]
    pub fn u64_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            0
        } else {
            self.0.gen_range(0..bound)
        }
    }

    /// Uniform `u32`.
    #[must_use]
    pub fn u32(&mut self) -> u32 {
        self.0.gen()
    }

    /// Uniform `usize` in `[0, bound)`. Returns 0 when `bound == 0`.
    #[must_use]
    pub fn usize_below(&mut self, bound: usize) -> usize {
        self.u64_below(bound as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    #[must_use]
    pub fn f64(&mut self) -> f64 {
        self.0.gen()
    }

    /// Bernoulli draw with probability `p` (clamped to `[0, 1]`).
    #[must_use]
    pub fn chance(&mut self, p: f64) -> bool {
        self.f64() < p.clamp(0.0, 1.0)
    }

    /// Fills `buf` with uniform bytes.
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        self.0.fill_bytes(buf);
    }

    /// A vector of `n` uniform bytes.
    #[must_use]
    pub fn bytes(&mut self, n: usize) -> Vec<u8> {
        let mut v = vec![0u8; n];
        self.fill_bytes(&mut v);
        v
    }

    /// A vector of `n` uniform `u32`s below `bound`.
    #[must_use]
    pub fn u32s_below(&mut self, n: usize, bound: u32) -> Vec<u32> {
        (0..n).map(|_| self.u64_below(u64::from(bound.max(1))) as u32).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::seeded(7);
        let mut b = SimRng::seeded(7);
        assert_eq!(a.bytes(64), b.bytes(64));
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::seeded(7);
        let mut b = SimRng::seeded(8);
        assert_ne!(a.bytes(64), b.bytes(64));
    }

    #[test]
    fn fork_is_deterministic_and_independent() {
        let mut parent1 = SimRng::seeded(1);
        let mut parent2 = SimRng::seeded(1);
        let mut c1 = parent1.fork(3);
        let mut c2 = parent2.fork(3);
        assert_eq!(c1.bytes(16), c2.bytes(16));
        // Forking with different tags yields different streams.
        let mut p = SimRng::seeded(1);
        let mut q = SimRng::seeded(1);
        let mut ca = p.fork(1);
        let mut cb = q.fork(2);
        assert_ne!(ca.bytes(16), cb.bytes(16));
    }

    #[test]
    fn bounds_are_respected() {
        let mut r = SimRng::seeded(9);
        for _ in 0..1000 {
            assert!(r.u64_below(10) < 10);
        }
        assert_eq!(r.u64_below(0), 0);
        assert_eq!(r.usize_below(0), 0);
    }

    #[test]
    fn chance_edges() {
        let mut r = SimRng::seeded(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
