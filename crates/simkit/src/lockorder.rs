//! The system-wide lock hierarchy, enforced in debug builds.
//!
//! The sharded control plane multiplies the number of locks in flight:
//! per-group rank-table shards, per-group sysfs board shards, per-tenant
//! scheduler shards, plus the pre-existing frontend, device-queue and
//! rank-slot mutexes. A silent deadlock between any two of them would be
//! the worst kind of regression — rare, timing-dependent, invisible to
//! the differential suites. This module pins the **one legal acquisition
//! order** and, under `cfg(debug_assertions)`, panics the moment any
//! thread acquires out of order, so every debug test run doubles as a
//! lock-order audit.
//!
//! # The hierarchy
//!
//! Locks may only be acquired in **ascending level order** on one thread
//! (holding a higher level while taking a lower one panics in debug):
//!
//! | level | [`LockLevel`]  | guards                                              |
//! |------:|----------------|-----------------------------------------------------|
//! | 1     | `Fleet`        | cluster tenant map + per-tenant entry state         |
//! | 2     | `Placement`    | fleet placement/admission table                     |
//! | 3     | `Frontend`     | frontend batch/prefetch/session state               |
//! | 4     | `DeviceQueue`  | virtio device queue + guest-memory cell             |
//! | 5     | `RankSlot`     | a backend's rank mapping slot (sched safe point)    |
//! | 6     | `Link`         | inter-host network link serialization               |
//! | 7     | `SchedState`   | scheduler tenant shards (accounts/leases)           |
//! | 8     | `ManagerTable` | manager rank-table shards                           |
//! | 9     | `SysfsBoard`   | sysfs status-board shards                           |
//! | 10    | `Notify`       | condvar pairing mutexes (always leaf)               |
//!
//! This mirrors the real call chains: the fleet plane pins a tenant's
//! entry before reserving placement capacity (1→2) and before driving
//! that tenant's frontends (1→3), a frontend op holds its own lock
//! while kicking the device (3→4), device processing holds the queue
//! while entering a backend rank slot (4→5), live migration ships
//! snapshots over the link while the source ranks are quiesced under
//! their slot locks (5→6), a backend charges the scheduler from inside
//! its slot (5→7), the manager probes the sysfs claim counters while
//! holding a table shard (8→9), and every condvar wait parks on a
//! dedicated notify mutex holding nothing else (→10).
//!
//! `Link` sits *inside* `RankSlot` rather than alongside the other
//! cluster locks because transfer time is charged while the shipped
//! ranks are frozen — that hold window *is* the migration downtime.
//!
//! **Same-level rule:** shards of one structure are ordered by shard
//! index; acquiring the same level again is legal only with a
//! non-decreasing index (how `lock_all`-style sweeps take every shard
//! in ascending order).
//!
//! # Usage
//!
//! Acquire the token *immediately before* the lock and keep it alive for
//! the critical section:
//!
//! ```
//! use simkit::lockorder::{ordered, LockLevel};
//! let _ord = ordered(LockLevel::ManagerTable, 3);
//! // ... shard 3's mutex is locked here ...
//! // token drop ends the tracked hold
//! ```
//!
//! In release builds `ordered` compiles to a unit token — zero cost on
//! the hot paths the sharding exists to speed up.

/// A level in the system-wide lock hierarchy (ascending acquisition
/// order; see the module docs for the full table).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum LockLevel {
    /// Cluster tenant map (index 0) and per-tenant entry state (index 1).
    Fleet = 1,
    /// Fleet placement/admission table.
    Placement = 2,
    /// Frontend batch/prefetch/session state.
    Frontend = 3,
    /// Virtio device queue and guest-memory cell.
    DeviceQueue = 4,
    /// A backend's rank mapping slot (the sched safe point).
    RankSlot = 5,
    /// Inter-host link serialization (taken with source slots quiesced).
    Link = 6,
    /// Scheduler tenant shards (accounts and leases).
    SchedState = 7,
    /// Manager rank-table shards.
    ManagerTable = 8,
    /// Sysfs status-board shards.
    SysfsBoard = 9,
    /// Condvar pairing mutexes — always the innermost lock.
    Notify = 10,
}

#[cfg(debug_assertions)]
mod imp {
    use super::LockLevel;
    use std::cell::RefCell;

    thread_local! {
        static HELD: RefCell<Vec<(LockLevel, usize)>> = const { RefCell::new(Vec::new()) };
    }

    /// Debug-build token: registered on the per-thread hold stack while
    /// alive.
    #[derive(Debug)]
    pub struct LockToken {
        level: LockLevel,
        index: usize,
    }

    pub fn ordered(level: LockLevel, index: usize) -> LockToken {
        HELD.with(|h| {
            let mut held = h.borrow_mut();
            if let Some(&(top_level, top_index)) = held.last() {
                let ok = level > top_level || (level == top_level && index >= top_index);
                assert!(
                    ok,
                    "lock-order violation: acquiring {level:?}[{index}] while holding \
                     {top_level:?}[{top_index}] (full stack: {held:?}) — see \
                     simkit::lockorder for the legal hierarchy"
                );
            }
            held.push((level, index));
        });
        LockToken { level, index }
    }

    impl Drop for LockToken {
        fn drop(&mut self) {
            HELD.with(|h| {
                let mut held = h.borrow_mut();
                // Drops are usually LIFO, but guards may legally outlive
                // one another in either order — remove the matching entry
                // closest to the top.
                if let Some(pos) =
                    held.iter().rposition(|&(l, i)| l == self.level && i == self.index)
                {
                    held.remove(pos);
                }
            });
        }
    }
}

#[cfg(not(debug_assertions))]
mod imp {
    use super::LockLevel;

    /// Release-build token: a zero-sized no-op.
    #[derive(Debug)]
    pub struct LockToken;

    #[inline(always)]
    pub fn ordered(_level: LockLevel, _index: usize) -> LockToken {
        LockToken
    }
}

pub use imp::LockToken;

/// Registers an intent to acquire a lock at `level` (shard `index`) and
/// returns a token that must live for the duration of the hold. Panics in
/// debug builds when the acquisition violates the hierarchy; free in
/// release builds.
#[must_use]
pub fn ordered(level: LockLevel, index: usize) -> LockToken {
    imp::ordered(level, index)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ascending_acquisition_is_legal() {
        let a = ordered(LockLevel::Frontend, 0);
        let b = ordered(LockLevel::DeviceQueue, 0);
        let c = ordered(LockLevel::SchedState, 2);
        drop(a);
        drop(b);
        drop(c);
        // Fresh sequence after release.
        let _x = ordered(LockLevel::Notify, 0);
    }

    #[test]
    fn same_level_ascending_index_is_legal() {
        let _g: Vec<_> = (0..4).map(|i| ordered(LockLevel::ManagerTable, i)).collect();
    }

    #[test]
    fn out_of_order_drop_keeps_the_stack_sane() {
        let a = ordered(LockLevel::RankSlot, 0);
        let b = ordered(LockLevel::SchedState, 0);
        drop(a); // dropped before b — must not confuse tracking
        drop(b);
        let _c = ordered(LockLevel::Frontend, 0);
    }

    #[test]
    fn fleet_chain_is_legal() {
        // Launch path: tenant map → entry → placement → frontend.
        let map = ordered(LockLevel::Fleet, 0);
        let entry = ordered(LockLevel::Fleet, 1);
        drop(map);
        let place = ordered(LockLevel::Placement, 0);
        drop(place);
        let _fe = ordered(LockLevel::Frontend, 0);
    }

    #[test]
    fn migration_chain_is_legal() {
        // Stop-and-copy: entry → quiesced source slots → link → dest slot.
        let _entry = ordered(LockLevel::Fleet, 1);
        let _src: Vec<_> = (0..2).map(|_| ordered(LockLevel::RankSlot, 0)).collect();
        {
            let _link = ordered(LockLevel::Link, 0);
        }
        let _dst = ordered(LockLevel::RankSlot, 0);
        let _sched = ordered(LockLevel::SchedState, 1);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn descending_level_panics_in_debug() {
        let _board = ordered(LockLevel::SysfsBoard, 0);
        let _table = ordered(LockLevel::ManagerTable, 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn taking_fleet_inside_frontend_panics_in_debug() {
        let _fe = ordered(LockLevel::Frontend, 0);
        let _fleet = ordered(LockLevel::Fleet, 0);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order violation")]
    fn same_level_descending_index_panics_in_debug() {
        let _three = ordered(LockLevel::ManagerTable, 3);
        let _one = ordered(LockLevel::ManagerTable, 1);
    }
}
