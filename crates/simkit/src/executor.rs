//! A persistent worker-pool executor for real (wall-clock) parallelism.
//!
//! The rest of `simkit` models parallelism in *virtual* time
//! ([`crate::compose::pool_schedule`]); this module supplies the other half
//! of the two-clock design: actual OS threads that execute work
//! concurrently. The vPIM paper's backend (§4.2) keeps a pool of eight
//! threads alive for matrix translation and data copies instead of paying
//! thread spawn cost per request — [`WorkerPool`] reproduces that shape.
//!
//! Determinism contract: callers must never derive *reported* (virtual)
//! durations from the order in which jobs finish. Virtual costs are computed
//! from the work description alone; the pool only changes wall-clock time.
//!
//! # Example
//!
//! ```
//! use simkit::executor::WorkerPool;
//!
//! let pool = WorkerPool::new(4);
//! let jobs: Vec<_> = (0..8).map(|i| pool.submit(move || i * 2)).collect();
//! let out: Vec<i32> = jobs.into_iter().map(|j| j.wait()).collect();
//! assert_eq!(out, vec![0, 2, 4, 6, 8, 10, 12, 14]);
//! ```

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::thread::JoinHandle;

use crossbeam::channel::{unbounded, Receiver, Sender};

type Job = Box<dyn FnOnce() + Send + 'static>;

/// A fixed set of OS worker threads consuming jobs from a shared queue.
///
/// Workers stay alive for the pool's lifetime (persistent, like the paper's
/// backend thread pool) and are joined on drop. Jobs run in submission order
/// pick-up but may complete in any order; [`JobHandle::wait`] gives each
/// submitter its own result back, so completion order never leaks into
/// results.
pub struct WorkerPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl WorkerPool {
    /// Spawns a pool with `workers` threads (clamped to at least one).
    #[must_use]
    pub fn new(workers: usize) -> Self {
        let n = workers.max(1);
        let (tx, rx) = unbounded::<Job>();
        let workers = (0..n)
            .map(|i| {
                let rx: Receiver<Job> = rx.clone();
                std::thread::Builder::new()
                    .name(format!("simkit-pool-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                        }
                    })
                    .expect("spawn pool worker")
            })
            .collect();
        WorkerPool { tx: Some(tx), workers }
    }

    /// Number of worker threads.
    #[must_use]
    pub fn workers(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job; returns a handle that yields its result.
    ///
    /// Panics inside the job are captured and re-raised from
    /// [`JobHandle::wait`] on the waiting thread, matching
    /// `std::thread::JoinHandle` semantics.
    pub fn submit<T, F>(&self, f: F) -> JobHandle<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let (done_tx, done_rx) = unbounded::<std::thread::Result<T>>();
        let job: Job = Box::new(move || {
            let result = catch_unwind(AssertUnwindSafe(f));
            let _ = done_tx.send(result);
        });
        if self.tx.as_ref().expect("pool alive").send(job).is_err() {
            unreachable!("workers hold the receiver for the pool's lifetime");
        }
        JobHandle { rx: done_rx }
    }

    /// Runs every closure on the pool and returns results **in submission
    /// order** — the convenience shape for fork-join over a chunked work
    /// list. Panics propagate from the first panicking job (by submission
    /// order) after all jobs were picked up.
    pub fn run_all<T, F>(&self, jobs: Vec<F>) -> Vec<T>
    where
        T: Send + 'static,
        F: FnOnce() -> T + Send + 'static,
    {
        let handles: Vec<JobHandle<T>> = jobs.into_iter().map(|f| self.submit(f)).collect();
        handles.into_iter().map(JobHandle::wait).collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        // Closing the job channel lets each worker drain and exit.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            // A worker can only "panic" via a bug in the pool itself: job
            // panics are caught before they reach the worker loop.
            let _ = w.join();
        }
    }
}

/// The receipt for one submitted job; [`wait`](Self::wait) blocks until the
/// job has run and returns (or re-raises) its outcome.
#[derive(Debug)]
pub struct JobHandle<T> {
    rx: Receiver<std::thread::Result<T>>,
}

impl<T> JobHandle<T> {
    /// Blocks until the job completes. Re-raises the job's panic on this
    /// thread if it panicked.
    pub fn wait(self) -> T {
        match self.rx.recv() {
            Ok(Ok(value)) => value,
            Ok(Err(payload)) => resume_unwind(payload),
            Err(_) => unreachable!("worker drops the result sender only after sending"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Barrier};
    use std::time::{Duration, Instant};

    #[test]
    fn results_come_back_in_submission_order() {
        let pool = WorkerPool::new(3);
        let out = pool.run_all((0..32).map(|i| move || i * i).collect::<Vec<_>>());
        assert_eq!(out, (0..32).map(|i| i * i).collect::<Vec<_>>());
    }

    #[test]
    fn zero_workers_clamps_to_one() {
        let pool = WorkerPool::new(0);
        assert_eq!(pool.workers(), 1);
        assert_eq!(pool.submit(|| 41 + 1).wait(), 42);
    }

    #[test]
    fn jobs_run_concurrently_on_multiple_workers() {
        // Two jobs rendezvous on a barrier: only possible if both are
        // in flight at once.
        let pool = WorkerPool::new(2);
        let barrier = Arc::new(Barrier::new(2));
        let jobs: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&barrier);
                pool.submit(move || b.wait())
            })
            .collect();
        for j in jobs {
            j.wait();
        }
    }

    #[test]
    fn blocking_jobs_overlap_in_wall_clock() {
        // Even on a single CPU, sleeping jobs overlap — this is the property
        // the backend relies on for DDR-occupancy emulation.
        let pool = WorkerPool::new(4);
        let start = Instant::now();
        let jobs: Vec<_> = (0..4)
            .map(|_| pool.submit(|| std::thread::sleep(Duration::from_millis(40))))
            .collect();
        for j in jobs {
            j.wait();
        }
        let elapsed = start.elapsed();
        assert!(
            elapsed < Duration::from_millis(120),
            "4x40ms jobs took {elapsed:?}; pool is serializing"
        );
    }

    #[test]
    fn panic_propagates_to_waiter_and_pool_survives() {
        let pool = WorkerPool::new(2);
        let handle = pool.submit(|| panic!("job exploded"));
        let caught = catch_unwind(AssertUnwindSafe(|| handle.wait()));
        assert!(caught.is_err());
        // The worker that ran the panicking job is still serving.
        assert_eq!(pool.submit(|| 7).wait(), 7);
    }

    #[test]
    fn drop_joins_all_workers_after_pending_work() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let pool = WorkerPool::new(2);
            let handles: Vec<_> = (0..16)
                .map(|_| {
                    let c = Arc::clone(&counter);
                    pool.submit(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    })
                })
                .collect();
            for h in handles {
                h.wait();
            }
        }
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }
}
