//! Deterministic, seeded fault injection.
//!
//! A production vPIM host misbehaves in bounded, recurring ways — a kick is
//! lost, an IRQ is delayed, a chunk transfer tears, a manager RPC times out
//! (PrIM and the UPMEM field reports both document these as routine). This
//! module makes every such failure a *named fault point* that higher layers
//! consult on their hot paths:
//!
//! ```text
//! if plane.hit("vmm.kick.drop") { /* simulate the loss */ }
//! ```
//!
//! Design rules:
//!
//! * **Zero overhead when disabled.** A [`FaultPlane`] (and the late-bound
//!   [`InjectCell`] wrapper components embed) answers `hit` with a single
//!   relaxed atomic load until a plan is armed. The default configuration
//!   arms nothing, so production paths are bit-identical to a build without
//!   injection.
//! * **Deterministic.** Whether a hit fires is a pure function of
//!   `(seed, point name, hit key)` — no wall clocks, no global RNG. Serially
//!   driven points use [`FaultPlane::hit`], which advances a per-point
//!   counter; concurrently driven points use [`FaultPlane::hit_keyed`] with
//!   a caller-supplied key (e.g. the per-request entry index), so thread
//!   interleaving cannot change the fault schedule. Sequential and Parallel
//!   dispatch therefore see bit-identical faults.
//! * **Observable.** Arms, fires and suppressed (non-firing) hits are
//!   counted globally (`inject.{armed,fired,suppressed}` when bound to a
//!   registry) and per point ([`FaultPlane::point_stats`]).

use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};
use serde::{Deserialize, Serialize};

use crate::telemetry::{Counter, MetricsRegistry};

/// When an armed fault point fires, expressed over the 0-based hit key.
///
/// Plain data: `Copy + Eq + serde`, so plans can ride inside a by-value
/// configuration struct.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultPlan {
    /// Fire exactly once, on the `n`th hit (1-based; `Nth(1)` is the first
    /// hit). `Nth(0)` never fires.
    Nth(u64),
    /// Fire on every `k`th hit (hits `k, 2k, 3k, …`, 1-based). `EveryK(0)`
    /// never fires; `EveryK(1)` fires on every hit.
    EveryK(u64),
    /// Fire with probability `permille`/1000 per hit, decided by a seeded
    /// hash of `(seed, point, key)` — reproducible, not random.
    Probability {
        /// Firing probability in thousandths (0 = never, 1000 = always).
        permille: u16,
    },
    /// A budgeted burst: fire on every hit with key in
    /// `[after, after + count)`, i.e. suppress the first `after` hits, then
    /// fire `count` times, then stay quiet.
    Burst {
        /// Hits to let through before the burst starts.
        after: u64,
        /// Number of consecutive firing hits.
        count: u64,
    },
}

impl FaultPlan {
    /// Whether this plan fires on 0-based hit `key` of `point` under `seed`.
    /// Pure and total: the fault schedule of a run is fully determined by
    /// the (seed, plan) pair and the sequence of keys presented.
    #[must_use]
    pub fn fires(&self, seed: u64, point: &str, key: u64) -> bool {
        match *self {
            FaultPlan::Nth(n) => n > 0 && key + 1 == n,
            FaultPlan::EveryK(k) => k > 0 && (key + 1) % k == 0,
            FaultPlan::Probability { permille } => {
                mix(seed, point, key) % 1000 < u64::from(permille)
            }
            FaultPlan::Burst { after, count } => key >= after && key < after.saturating_add(count),
        }
    }

    /// Exact number of fires among the first `hits` sequential hits — the
    /// oracle tests compare observed `fired` counts against.
    #[must_use]
    pub fn count_fires(&self, seed: u64, point: &str, hits: u64) -> u64 {
        (0..hits).filter(|&key| self.fires(seed, point, key)).count() as u64
    }
}

/// FNV-1a over the point name folded through splitmix64 with the seed and
/// key: a cheap, stable mixer so distinct points (and distinct keys) make
/// independent-looking probability decisions from one seed.
fn mix(seed: u64, point: &str, key: u64) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in point.as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut z = seed ^ h ^ key.wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hit/fire/suppress totals of one armed point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PointStats {
    /// Times the point was consulted while armed.
    pub hits: u64,
    /// Hits that fired the fault.
    pub fired: u64,
    /// Hits that passed through without firing.
    pub suppressed: u64,
}

#[derive(Debug)]
struct Point {
    plan: FaultPlan,
    hits: AtomicU64,
    fired: AtomicU64,
    suppressed: AtomicU64,
}

impl Point {
    fn new(plan: FaultPlan) -> Self {
        Point {
            plan,
            hits: AtomicU64::new(0),
            fired: AtomicU64::new(0),
            suppressed: AtomicU64::new(0),
        }
    }
}

/// The seeded registry of armed fault points one system shares.
///
/// Components hold it as `Arc<FaultPlane>` (usually through an
/// [`InjectCell`]) and call [`hit`](Self::hit) / [`hit_keyed`](Self::hit_keyed)
/// at their fault points. With nothing armed, both answer `false` after one
/// relaxed atomic load.
#[derive(Debug)]
pub struct FaultPlane {
    /// Fast-path switch: false until the first `arm`, flipped back off by
    /// `disarm_all`. Checked with a relaxed load before anything else.
    on: AtomicBool,
    seed: u64,
    points: RwLock<HashMap<String, Arc<Point>>>,
    armed: Counter,
    fired: Counter,
    suppressed: Counter,
}

impl FaultPlane {
    /// A plane with the given seed and private (unpublished) telemetry.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self::with_registry(seed, &MetricsRegistry::new())
    }

    /// A plane publishing `inject.{armed,fired,suppressed}` into `registry`.
    #[must_use]
    pub fn with_registry(seed: u64, registry: &MetricsRegistry) -> Self {
        FaultPlane {
            on: AtomicBool::new(false),
            seed,
            points: RwLock::new(HashMap::new()),
            armed: registry.counter("inject.armed"),
            fired: registry.counter("inject.fired"),
            suppressed: registry.counter("inject.suppressed"),
        }
    }

    /// The seed every firing decision derives from.
    #[must_use]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// True once any point is armed (the hot-path switch).
    #[must_use]
    pub fn is_armed(&self) -> bool {
        self.on.load(Ordering::Relaxed)
    }

    /// Arms `point` with `plan` (replacing any previous plan and resetting
    /// its counters) and turns the plane on.
    pub fn arm(&self, point: &str, plan: FaultPlan) {
        self.points.write().insert(point.to_string(), Arc::new(Point::new(plan)));
        self.armed.inc();
        self.on.store(true, Ordering::Release);
    }

    /// Disarms `point`; its accumulated stats are dropped with it. The
    /// plane stays on while other points remain armed.
    pub fn disarm(&self, point: &str) {
        let mut points = self.points.write();
        points.remove(point);
        if points.is_empty() {
            self.on.store(false, Ordering::Release);
        }
    }

    /// Disarms every point and turns the fast path back off.
    pub fn disarm_all(&self) {
        self.points.write().clear();
        self.on.store(false, Ordering::Release);
    }

    /// Consults `point` as the next hit in its serial sequence: the hit key
    /// is the point's own monotonically advancing counter. Use from call
    /// sites that are naturally serialized (one frontend's kicks, one
    /// rank's CI ops under the slot lock); concurrent callers should use
    /// [`hit_keyed`](Self::hit_keyed) instead so interleaving cannot skew
    /// the schedule.
    #[must_use]
    pub fn hit(&self, point: &str) -> bool {
        if !self.on.load(Ordering::Relaxed) {
            return false;
        }
        let Some(p) = self.points.read().get(point).cloned() else {
            return false;
        };
        let key = p.hits.fetch_add(1, Ordering::Relaxed);
        self.decide(&p, point, key)
    }

    /// Consults `point` with a caller-supplied `key`: the decision is a
    /// pure function of `(seed, point, key)` and does **not** consume the
    /// serial counter, so any number of threads presenting the same keys
    /// observe the same schedule regardless of interleaving. Used by the
    /// backend data path with the per-request entry index as the key.
    #[must_use]
    pub fn hit_keyed(&self, point: &str, key: u64) -> bool {
        if !self.on.load(Ordering::Relaxed) {
            return false;
        }
        let Some(p) = self.points.read().get(point).cloned() else {
            return false;
        };
        p.hits.fetch_add(1, Ordering::Relaxed);
        self.decide(&p, point, key)
    }

    fn decide(&self, p: &Point, point: &str, key: u64) -> bool {
        if p.plan.fires(self.seed, point, key) {
            p.fired.fetch_add(1, Ordering::Relaxed);
            self.fired.inc();
            true
        } else {
            p.suppressed.fetch_add(1, Ordering::Relaxed);
            self.suppressed.inc();
            false
        }
    }

    /// Stats of an armed point (`None` when not armed).
    #[must_use]
    pub fn point_stats(&self, point: &str) -> Option<PointStats> {
        self.points.read().get(point).map(|p| PointStats {
            hits: p.hits.load(Ordering::Relaxed),
            fired: p.fired.load(Ordering::Relaxed),
            suppressed: p.suppressed.load(Ordering::Relaxed),
        })
    }

    /// Total fires across all points since construction.
    #[must_use]
    pub fn total_fired(&self) -> u64 {
        self.fired.get()
    }
}

/// A late-bindable slot for a shared [`FaultPlane`].
///
/// Components whose inner state is already `Arc`-shared when the plane is
/// created (guest memory, IRQ lines, ranks, manager clients, the
/// scheduler) embed an `InjectCell` at construction; installing a plane
/// later reaches every clone at once. Until installation, `hit` answers
/// with a single relaxed load — the same zero-overhead passthrough as an
/// unarmed plane.
#[derive(Debug, Default)]
pub struct InjectCell {
    on: AtomicBool,
    plane: Mutex<Option<Arc<FaultPlane>>>,
}

impl InjectCell {
    /// An empty cell (every hit passes through).
    #[must_use]
    pub fn new() -> Self {
        InjectCell::default()
    }

    /// Installs `plane`; subsequent hits consult it.
    pub fn install(&self, plane: Arc<FaultPlane>) {
        *self.plane.lock() = Some(plane);
        self.on.store(true, Ordering::Release);
    }

    /// The installed plane, if any.
    #[must_use]
    pub fn plane(&self) -> Option<Arc<FaultPlane>> {
        if !self.on.load(Ordering::Relaxed) {
            return None;
        }
        self.plane.lock().clone()
    }

    /// [`FaultPlane::hit`] through the cell; `false` when empty.
    #[must_use]
    pub fn hit(&self, point: &str) -> bool {
        if !self.on.load(Ordering::Relaxed) {
            return false;
        }
        match &*self.plane.lock() {
            Some(p) => p.hit(point),
            None => false,
        }
    }

    /// [`FaultPlane::hit_keyed`] through the cell; `false` when empty.
    #[must_use]
    pub fn hit_keyed(&self, point: &str, key: u64) -> bool {
        if !self.on.load(Ordering::Relaxed) {
            return false;
        }
        match &*self.plane.lock() {
            Some(p) => p.hit_keyed(point, key),
            None => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_plane_never_fires() {
        let plane = FaultPlane::new(42);
        assert!(!plane.is_armed());
        assert!(!plane.hit("anything"));
        assert!(!plane.hit_keyed("anything", 7));
        assert_eq!(plane.total_fired(), 0);
    }

    #[test]
    fn nth_fires_exactly_once() {
        let plane = FaultPlane::new(1);
        plane.arm("p", FaultPlan::Nth(3));
        let fires: Vec<bool> = (0..6).map(|_| plane.hit("p")).collect();
        assert_eq!(fires, [false, false, true, false, false, false]);
        let st = plane.point_stats("p").unwrap();
        assert_eq!((st.hits, st.fired, st.suppressed), (6, 1, 5));
    }

    #[test]
    fn every_k_fires_periodically() {
        let plane = FaultPlane::new(1);
        plane.arm("p", FaultPlan::EveryK(2));
        let fires: Vec<bool> = (0..6).map(|_| plane.hit("p")).collect();
        assert_eq!(fires, [false, true, false, true, false, true]);
    }

    #[test]
    fn burst_is_budgeted() {
        let plan = FaultPlan::Burst { after: 2, count: 3 };
        let fires: Vec<bool> = (0..8).map(|k| plan.fires(0, "p", k)).collect();
        assert_eq!(fires, [false, false, true, true, true, false, false, false]);
        assert_eq!(plan.count_fires(0, "p", 8), 3);
    }

    #[test]
    fn probability_is_seed_deterministic_and_roughly_calibrated() {
        let plan = FaultPlan::Probability { permille: 250 };
        let a = plan.count_fires(7, "p", 10_000);
        let b = plan.count_fires(7, "p", 10_000);
        assert_eq!(a, b, "same seed, same schedule");
        let c = plan.count_fires(8, "p", 10_000);
        assert_ne!(a, c, "different seeds diverge");
        assert!((1_500..3_500).contains(&a), "~25% of 10k, got {a}");
        assert_eq!(FaultPlan::Probability { permille: 0 }.count_fires(7, "p", 1000), 0);
        assert_eq!(FaultPlan::Probability { permille: 1000 }.count_fires(7, "p", 1000), 1000);
    }

    #[test]
    fn keyed_hits_ignore_interleaving() {
        let plane = FaultPlane::new(1);
        plane.arm("p", FaultPlan::Nth(2));
        // Keys presented out of order still fire only for key 1.
        assert!(!plane.hit_keyed("p", 3));
        assert!(plane.hit_keyed("p", 1));
        assert!(!plane.hit_keyed("p", 0));
        assert!(plane.hit_keyed("p", 1), "pure: same key, same answer");
    }

    #[test]
    fn disarm_restores_passthrough() {
        let plane = FaultPlane::new(1);
        plane.arm("p", FaultPlan::EveryK(1));
        assert!(plane.hit("p"));
        plane.disarm("p");
        assert!(!plane.is_armed());
        assert!(!plane.hit("p"));
        plane.arm("a", FaultPlan::EveryK(1));
        plane.arm("b", FaultPlan::EveryK(1));
        plane.disarm("a");
        assert!(plane.is_armed(), "one point still armed");
        plane.disarm_all();
        assert!(!plane.is_armed());
    }

    #[test]
    fn telemetry_totals_are_published() {
        let reg = MetricsRegistry::new();
        let plane = FaultPlane::with_registry(0, &reg);
        plane.arm("a", FaultPlan::Nth(1));
        plane.arm("b", FaultPlan::Nth(9));
        assert!(plane.hit("a"));
        assert!(!plane.hit("b"));
        let snap = reg.snapshot();
        assert_eq!(snap.count("inject.armed"), 2);
        assert_eq!(snap.count("inject.fired"), 1);
        assert_eq!(snap.count("inject.suppressed"), 1);
    }

    #[test]
    fn cell_is_passthrough_until_installed() {
        let cell = InjectCell::new();
        assert!(!cell.hit("p"));
        assert!(cell.plane().is_none());
        let plane = Arc::new(FaultPlane::new(0));
        plane.arm("p", FaultPlan::EveryK(1));
        cell.install(plane.clone());
        assert!(cell.hit("p"));
        assert!(cell.hit_keyed("p", 0));
        assert_eq!(cell.plane().unwrap().seed(), 0);
    }
}
