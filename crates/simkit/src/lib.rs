//! # simkit — deterministic virtual-time kit for the vPIM reproduction
//!
//! The vPIM paper (Teguia et al., MIDDLEWARE '24, <https://hal.science/hal-04737700>)
//! measures wall-clock execution time on a Xeon + UPMEM testbed. This
//! reproduction runs on commodity hardware without UPMEM DIMMs, so all
//! reported durations are **virtual time**: every simulated operation derives
//! a deterministic [`VirtualNanos`] duration from the [`CostModel`], and
//! timelines compose those durations sequentially or in parallel exactly the
//! way the modeled hardware/software would.
//!
//! The crate provides:
//!
//! * [`VirtualNanos`] — the virtual time unit,
//! * [`CostModel`] — every timing constant of the simulation in one
//!   documented struct,
//! * [`Timeline`] — segmented accumulation of durations using the paper's
//!   two breakdowns (application-centric and driver-centric),
//! * [`compose`] — sequential / parallel / worker-pool composition rules,
//! * [`SimRng`] — seeded, reproducible randomness,
//! * [`stats`] — small helpers for summarizing benchmark output.
//!
//! ## Example
//!
//! ```
//! use simkit::{CostModel, Timeline, AppSegment, VirtualNanos};
//!
//! let cm = CostModel::default();
//! let mut tl = Timeline::new();
//! // Charge the cost of moving 1 MiB into a rank with parallel transfer.
//! let d = cm.rank_transfer_parallel(1 << 20);
//! tl.charge_app(AppSegment::CpuToDpu, d);
//! assert!(tl.app_total() > VirtualNanos::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod compose;
pub mod cost;
pub mod error;
pub mod executor;
pub mod inject;
pub mod lockorder;
pub mod pool;
pub mod retry;
pub mod rng;
pub mod stats;
pub mod stripe;
pub mod telemetry;
pub mod time;
pub mod timeline;

pub use compose::{parallel, pool, sequential};
pub use cost::CostModel;
pub use error::{ErrorKind, HasErrorKind};
pub use executor::{JobHandle, WorkerPool};
pub use inject::{FaultPlan, FaultPlane, InjectCell, PointStats};
pub use lockorder::{ordered, LockLevel, LockToken};
pub use pool::{BytePool, PoolGuard};
pub use retry::{RetryMetrics, RetryPolicy, TimeoutClass};
pub use rng::SimRng;
pub use telemetry::{
    Counter, Gauge, Instrument, MetricSet, MetricValue, MetricsRegistry, MetricsSnapshot, Span,
    TimeCounter, VtHistogram,
};
pub use time::VirtualNanos;
pub use timeline::{AppSegment, DriverSegment, Timeline, WriteStep};
