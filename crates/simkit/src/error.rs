//! Shared error classification across all vPIM layers.
//!
//! Every crate in the workspace keeps its own structured error enum (the
//! variants carry layer-specific payloads: offsets, rank ids, symbol names),
//! but callers and tests frequently only care about the *class* of failure —
//! "was this an out-of-bounds access?" "did a resource pool run dry?" — and
//! matching on display strings is brittle. [`ErrorKind`] is the common
//! vocabulary; each error type implements [`HasErrorKind`] to map its
//! variants onto it. Wrapper variants (`SdkError::Sim(..)` etc.) delegate to
//! the wrapped error so the kind survives `From` conversions unchanged.

use core::fmt;

/// Coarse classification of a failure, shared by every layer's error enum.
///
/// The mapping contract: converting an error across layers (via `From`)
/// must preserve its kind. Tests assert on kinds, not display strings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum ErrorKind {
    /// An access landed outside the valid address range (MRAM/WRAM bounds,
    /// descriptor past the end of guest memory, ...).
    OutOfBounds,
    /// A finite pool ran dry: WRAM/IRAM capacity, virtqueue slots, shared
    /// page pool, free ranks.
    ResourceExhausted,
    /// The caller passed an argument that can never be valid (bad rank or
    /// DPU index, zero tasklets, buffer-count mismatch).
    InvalidInput,
    /// A named entity (kernel, symbol) does not exist.
    NotFound,
    /// The operation is valid but cannot proceed in the current state
    /// (no program loaded, manager down, device not ready).
    Unavailable,
    /// The resource exists but is held by someone else right now.
    Busy,
    /// Simulated hardware raised a fault while executing.
    Fault,
    /// A transport-level protocol violation (malformed descriptor chain,
    /// bad virtio header, unexpected response).
    Protocol,
    /// An internal invariant broke; indicates a bug rather than bad input.
    Internal,
    /// A transient failure raised by the deterministic fault-injection
    /// plane ([`crate::inject`]). The defining property: retrying the
    /// operation is always safe and (plan permitting) can succeed.
    Injected,
}

impl ErrorKind {
    /// Stable wire code, used by transports that must carry a kind across
    /// an encoded boundary (e.g. the vPIM status page). `0` is reserved for
    /// "no error".
    pub const fn code(&self) -> u32 {
        match self {
            ErrorKind::OutOfBounds => 1,
            ErrorKind::ResourceExhausted => 2,
            ErrorKind::InvalidInput => 3,
            ErrorKind::NotFound => 4,
            ErrorKind::Unavailable => 5,
            ErrorKind::Busy => 6,
            ErrorKind::Fault => 7,
            ErrorKind::Protocol => 8,
            ErrorKind::Internal => 9,
            ErrorKind::Injected => 10,
        }
    }

    /// Decodes a wire code produced by [`ErrorKind::code`]. Unknown codes
    /// (including the reserved `0`) return `None`.
    #[must_use]
    pub const fn from_code(code: u32) -> Option<Self> {
        Some(match code {
            1 => ErrorKind::OutOfBounds,
            2 => ErrorKind::ResourceExhausted,
            3 => ErrorKind::InvalidInput,
            4 => ErrorKind::NotFound,
            5 => ErrorKind::Unavailable,
            6 => ErrorKind::Busy,
            7 => ErrorKind::Fault,
            8 => ErrorKind::Protocol,
            9 => ErrorKind::Internal,
            10 => ErrorKind::Injected,
            _ => return None,
        })
    }

    /// Stable lower-snake name, handy for metrics labels and logs.
    pub const fn as_str(&self) -> &'static str {
        match self {
            ErrorKind::OutOfBounds => "out_of_bounds",
            ErrorKind::ResourceExhausted => "resource_exhausted",
            ErrorKind::InvalidInput => "invalid_input",
            ErrorKind::NotFound => "not_found",
            ErrorKind::Unavailable => "unavailable",
            ErrorKind::Busy => "busy",
            ErrorKind::Fault => "fault",
            ErrorKind::Protocol => "protocol",
            ErrorKind::Internal => "internal",
            ErrorKind::Injected => "injected",
        }
    }
}

impl fmt::Display for ErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Implemented by every layer's error enum to expose its [`ErrorKind`].
pub trait HasErrorKind {
    /// The coarse classification of this error.
    fn kind(&self) -> ErrorKind;
}

impl<T: HasErrorKind + ?Sized> HasErrorKind for &T {
    fn kind(&self) -> ErrorKind {
        (**self).kind()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_codes_round_trip() {
        for k in [
            ErrorKind::OutOfBounds,
            ErrorKind::ResourceExhausted,
            ErrorKind::InvalidInput,
            ErrorKind::NotFound,
            ErrorKind::Unavailable,
            ErrorKind::Busy,
            ErrorKind::Fault,
            ErrorKind::Protocol,
            ErrorKind::Internal,
            ErrorKind::Injected,
        ] {
            assert_ne!(k.code(), 0, "0 is reserved for no-error");
            assert_eq!(ErrorKind::from_code(k.code()), Some(k));
        }
        assert_eq!(ErrorKind::from_code(0), None);
        assert_eq!(ErrorKind::from_code(999), None);
    }

    #[test]
    fn as_str_is_stable() {
        assert_eq!(ErrorKind::OutOfBounds.as_str(), "out_of_bounds");
        assert_eq!(ErrorKind::ResourceExhausted.to_string(), "resource_exhausted");
    }

    #[test]
    fn kind_through_reference() {
        struct E;
        impl HasErrorKind for E {
            fn kind(&self) -> ErrorKind {
                ErrorKind::Busy
            }
        }
        let e = E;
        assert_eq!((&e).kind(), ErrorKind::Busy);
        assert_eq!(HasErrorKind::kind(&&e), ErrorKind::Busy);
    }

    #[test]
    fn kinds_are_comparable_and_hashable() {
        use std::collections::HashSet;
        let mut s = HashSet::new();
        s.insert(ErrorKind::Fault);
        assert!(s.contains(&ErrorKind::Fault));
        assert_ne!(ErrorKind::Fault, ErrorKind::Protocol);
    }
}
