//! A thread-aware scratch-buffer pool for the zero-allocation data path.
//!
//! vPIM's transfer hot path (§4.1–§4.2) touches a buffer at every hop:
//! serializer scratch in the frontend, per-DPU staging in the backend, and
//! the interleave working set. Allocating those buffers fresh per operation
//! puts `malloc` + page faults + memset on the critical path of every rank
//! transfer. [`BytePool`] recycles them instead: buffers are size-classed
//! (powers of two), parked on small per-thread-shard stacks, and handed out
//! as RAII [`PoolGuard`]s that return themselves on drop.
//!
//! Design points:
//!
//! * **Size classes** — a request of `len` bytes is served from the
//!   smallest power-of-two class ≥ `len` (min 64 B, max 64 MiB). Requests
//!   above the largest class fall back to a plain allocation that is not
//!   recycled (they are far beyond any per-DPU transfer this stack issues).
//! * **Thread-aware sharding** — free lists are split into [`SHARDS`]
//!   shards indexed by a per-thread slot, so concurrent backend workers
//!   rarely contend on one mutex. A take that misses its own shard steals
//!   from the others before allocating.
//! * **Bounded** — each (shard, class) stack keeps at most a handful of
//!   buffers; returns beyond the bound free the buffer, so the pool's
//!   resident set is capped instead of high-watermarking.
//! * **Dirty reuse** — recycled buffers keep their previous contents
//!   (zeroing them would re-introduce the memset the pool exists to avoid).
//!   Callers must fully overwrite a guard before reading it back; use
//!   [`BytePool::take_zeroed`] when that contract cannot be met.
//! * **Telemetry** — `take` accounting (`hits`/`misses`/`bytes`) and an
//!   `outstanding` gauge (guards taken minus guards dropped) can be bound
//!   to a [`MetricsRegistry`] with [`BytePool::with_registry`]; the gauge
//!   is the pool-leak ("drop balance") check CI gates on. Note that under
//!   concurrency the hit/miss *split* depends on thread interleaving; only
//!   `hits + misses` (total takes), `bytes`, and the drained `outstanding`
//!   level are deterministic quantities.

use std::ops::{Deref, DerefMut};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::stripe;
use crate::telemetry::{Counter, Gauge, MetricsRegistry};

/// Smallest size class, log2 (64 B — one DDR burst line).
const MIN_CLASS_SHIFT: u32 = 6;
/// Largest size class, log2 (64 MiB — one full MRAM bank).
const MAX_CLASS_SHIFT: u32 = 26;
/// Number of size classes.
const CLASSES: usize = (MAX_CLASS_SHIFT - MIN_CLASS_SHIFT + 1) as usize;
/// Number of free-list shards (threads map onto these round-robin).
pub const SHARDS: usize = 8;
/// Maximum buffers parked per (shard, class) stack.
const PER_CLASS_CAP: usize = 8;

/// Size class for a request, or `None` when the request should bypass the
/// pool (zero-length or beyond the largest class).
fn class_of(len: usize) -> Option<usize> {
    if len == 0 || len > (1usize << MAX_CLASS_SHIFT) {
        return None;
    }
    let shift = usize::BITS - (len - 1).max(1).leading_zeros();
    Some(shift.clamp(MIN_CLASS_SHIFT, MAX_CLASS_SHIFT) as usize - MIN_CLASS_SHIFT as usize)
}

/// Byte capacity of a size class.
fn class_size(class: usize) -> usize {
    1usize << (class as u32 + MIN_CLASS_SHIFT)
}

/// The shard the calling thread parks buffers on (assigned round-robin on
/// first use, so worker pools spread evenly over the shards). The
/// assignment is the process-wide [`stripe::thread_slot`] — the same
/// placement the striped telemetry cells and the sharded control plane
/// use, so one thread's hot structures stay co-located.
fn shard_index() -> usize {
    stripe::thread_slot(SHARDS)
}

#[derive(Debug)]
struct PoolInner {
    /// Free lists, indexed `shard * CLASSES + class`. Parked buffers always
    /// have `len == class_size(class)`.
    slots: Vec<Mutex<Vec<Vec<u8>>>>,
    hits: Counter,
    misses: Counter,
    bytes: Counter,
    outstanding: Gauge,
}

/// A shared, thread-aware, size-classed scratch-buffer pool.
///
/// Cheaply cloneable (`Arc` inside): the frontend serializer, the backend
/// deserializer and every backend worker hold clones of one pool, so a
/// buffer released by any of them is available to all of them.
#[derive(Debug, Clone, Default)]
pub struct BytePool {
    inner: Arc<PoolInner>,
}

impl Default for PoolInner {
    fn default() -> Self {
        PoolInner {
            slots: (0..SHARDS * CLASSES).map(|_| Mutex::new(Vec::new())).collect(),
            hits: Counter::new(),
            misses: Counter::new(),
            bytes: Counter::new(),
            outstanding: Gauge::new(),
        }
    }
}

impl BytePool {
    /// A fresh pool with private (unregistered) telemetry cells.
    #[must_use]
    pub fn new() -> Self {
        BytePool::default()
    }

    /// A fresh pool whose telemetry is registry-owned:
    /// `{prefix}.hits`, `{prefix}.misses`, `{prefix}.bytes` (counters) and
    /// `{prefix}.outstanding` (gauge). Two pools bound to the same registry
    /// and prefix aggregate into the same cells.
    #[must_use]
    pub fn with_registry(registry: &MetricsRegistry, prefix: &str) -> Self {
        BytePool {
            inner: Arc::new(PoolInner {
                slots: (0..SHARDS * CLASSES).map(|_| Mutex::new(Vec::new())).collect(),
                hits: registry.counter(&format!("{prefix}.hits")),
                misses: registry.counter(&format!("{prefix}.misses")),
                bytes: registry.counter(&format!("{prefix}.bytes")),
                outstanding: registry.gauge(&format!("{prefix}.outstanding")),
            }),
        }
    }

    /// Takes a `len`-byte scratch buffer. A recycled buffer keeps its
    /// previous contents — callers must fully overwrite it before reading
    /// (every data-path user gathers/reads into the whole guard).
    #[must_use]
    pub fn take(&self, len: usize) -> PoolGuard {
        self.inner.bytes.add(len as u64);
        self.inner.outstanding.add(1);
        let Some(class) = class_of(len) else {
            // Zero-length (nothing to allocate: a hit by definition) or
            // beyond the largest class (plain allocation, not recycled).
            if len == 0 {
                self.inner.hits.inc();
            } else {
                self.inner.misses.inc();
            }
            return PoolGuard {
                buf: vec![0u8; len],
                len,
                class: None,
                pool: Arc::clone(&self.inner),
            };
        };
        let home = shard_index();
        // Local shard first, then steal from the others.
        for probe in 0..SHARDS {
            let shard = (home + probe) % SHARDS;
            if let Some(buf) = self.inner.slots[shard * CLASSES + class].lock().pop() {
                debug_assert_eq!(buf.len(), class_size(class));
                self.inner.hits.inc();
                return PoolGuard { buf, len, class: Some(class), pool: Arc::clone(&self.inner) };
            }
        }
        self.inner.misses.inc();
        PoolGuard {
            buf: vec![0u8; class_size(class)],
            len,
            class: Some(class),
            pool: Arc::clone(&self.inner),
        }
    }

    /// [`take`](Self::take), then zero-fills the guard (for callers that
    /// cannot promise to overwrite every byte).
    #[must_use]
    pub fn take_zeroed(&self, len: usize) -> PoolGuard {
        let mut g = self.take(len);
        g.fill(0);
        g
    }

    /// Takes serviced from a parked buffer.
    #[must_use]
    pub fn hits(&self) -> u64 {
        self.inner.hits.get()
    }

    /// Takes that had to allocate.
    #[must_use]
    pub fn misses(&self) -> u64 {
        self.inner.misses.get()
    }

    /// Total bytes handed out (sum of requested lengths).
    #[must_use]
    pub fn bytes(&self) -> u64 {
        self.inner.bytes.get()
    }

    /// Guards currently alive (takes minus drops) — 0 when the pool is
    /// drop-balanced, the pool-leak check.
    #[must_use]
    pub fn outstanding(&self) -> i64 {
        self.inner.outstanding.get()
    }

    /// Buffers currently parked across all shards and classes.
    #[must_use]
    pub fn parked(&self) -> usize {
        self.inner.slots.iter().map(|s| s.lock().len()).sum()
    }
}

/// A pooled scratch buffer: derefs to `[u8]` of the requested length and
/// returns itself to the pool on drop.
#[derive(Debug)]
pub struct PoolGuard {
    /// Backing storage; for a classed buffer `buf.len()` stays pinned at
    /// the full class size so reuse never needs a resize (or its memset).
    buf: Vec<u8>,
    /// The requested length — the guard's visible extent.
    len: usize,
    class: Option<usize>,
    pool: Arc<PoolInner>,
}

impl PoolGuard {
    /// The requested length.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the guard is zero-length.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The guard's bytes.
    #[must_use]
    pub fn as_slice(&self) -> &[u8] {
        &self.buf[..self.len]
    }

    /// The guard's bytes, mutably.
    #[must_use]
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        &mut self.buf[..self.len]
    }
}

impl Deref for PoolGuard {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl DerefMut for PoolGuard {
    fn deref_mut(&mut self) -> &mut [u8] {
        self.as_mut_slice()
    }
}

impl Drop for PoolGuard {
    fn drop(&mut self) {
        self.pool.outstanding.sub(1);
        if let Some(class) = self.class {
            let buf = std::mem::take(&mut self.buf);
            debug_assert_eq!(buf.len(), class_size(class));
            let mut stack = self.pool.slots[shard_index() * CLASSES + class].lock();
            if stack.len() < PER_CLASS_CAP {
                stack.push(buf);
            }
            // else: over the bound — the buffer frees here, keeping the
            // pool's resident set capped.
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classes_round_up_to_powers_of_two() {
        assert_eq!(class_of(0), None);
        assert_eq!(class_of(1), Some(0));
        assert_eq!(class_of(64), Some(0));
        assert_eq!(class_of(65), Some(1));
        assert_eq!(class_of(4096), Some(6));
        assert_eq!(class_of(4097), Some(7));
        assert_eq!(class_of(1 << 26), Some(CLASSES - 1));
        assert_eq!(class_of((1 << 26) + 1), None);
        for len in [1usize, 63, 64, 65, 1000, 4096, 1 << 20] {
            let c = class_of(len).unwrap();
            assert!(class_size(c) >= len);
            assert!(c == 0 || class_size(c - 1) < len);
        }
    }

    #[test]
    fn second_take_of_same_size_hits() {
        let pool = BytePool::new();
        {
            let g = pool.take(1000);
            assert_eq!(g.len(), 1000);
        }
        assert_eq!(pool.misses(), 1);
        let g = pool.take(700); // same 1024-byte class
        assert_eq!(g.len(), 700);
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.bytes(), 1700);
    }

    #[test]
    fn guards_are_drop_balanced() {
        let pool = BytePool::new();
        let a = pool.take(128);
        let b = pool.take(1 << 16);
        assert_eq!(pool.outstanding(), 2);
        drop(a);
        drop(b);
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.parked(), 2);
    }

    #[test]
    fn recycled_buffers_keep_contents_and_full_writes_mask_it() {
        let pool = BytePool::new();
        {
            let mut g = pool.take(256);
            g.fill(0xAB);
        }
        let g = pool.take(256);
        // Dirty reuse is the documented contract…
        assert!(g.iter().all(|&b| b == 0xAB));
        drop(g);
        // …and take_zeroed opts out of it.
        let g = pool.take_zeroed(256);
        assert!(g.iter().all(|&b| b == 0));
    }

    #[test]
    fn zero_len_and_oversized_takes_bypass_classing() {
        let pool = BytePool::new();
        let g = pool.take(0);
        assert!(g.is_empty());
        drop(g);
        assert_eq!(pool.hits(), 1);
        assert_eq!(pool.parked(), 0);
        let g = pool.take((1 << 26) + 1);
        assert_eq!(g.len(), (1 << 26) + 1);
        drop(g);
        assert_eq!(pool.parked(), 0, "oversized buffers are not recycled");
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn per_class_stacks_are_bounded() {
        let pool = BytePool::new();
        let guards: Vec<_> = (0..4 * PER_CLASS_CAP * SHARDS).map(|_| pool.take(100)).collect();
        drop(guards);
        // Single-threaded: everything returns to one shard's stack.
        assert!(pool.parked() <= PER_CLASS_CAP);
        assert_eq!(pool.outstanding(), 0);
    }

    #[test]
    fn registry_binding_aggregates_across_pool_clones() {
        let reg = MetricsRegistry::new();
        let a = BytePool::with_registry(&reg, "datapath.pool");
        let b = BytePool::with_registry(&reg, "datapath.pool");
        drop(a.take(100));
        drop(b.take(100));
        let snap = reg.snapshot();
        assert_eq!(
            snap.count("datapath.pool.hits") + snap.count("datapath.pool.misses"),
            2
        );
        assert_eq!(snap.count("datapath.pool.bytes"), 200);
        assert_eq!(snap.level("datapath.pool.outstanding"), 0);
    }

    #[test]
    fn cross_thread_release_keeps_balance() {
        let pool = BytePool::new();
        std::thread::scope(|s| {
            for _ in 0..8 {
                let pool = pool.clone();
                s.spawn(move || {
                    for _ in 0..64 {
                        let mut g = pool.take(8192);
                        g[0] = 1;
                        // Guard crosses a thread boundary before dropping.
                        std::thread::scope(|inner| {
                            inner.spawn(move || drop(g));
                        });
                    }
                });
            }
        });
        assert_eq!(pool.outstanding(), 0);
        assert_eq!(pool.hits() + pool.misses(), 8 * 64);
    }
}
