//! Bounded, deterministic retry with virtual-time exponential backoff.
//!
//! The recovery counterpart of [`crate::inject`]: layers that can meet a
//! transient fault (a dropped kick, an injected EIO, a manager RPC loss)
//! retry under a [`RetryPolicy`] instead of ad-hoc loops. All backoff is
//! **virtual time** — no thread ever sleeps for it; the computed delay is
//! charged to the operation's timeline, so a retried run reports a
//! deterministic, seed-reproducible duration and Sequential vs Parallel
//! dispatch agree bit-for-bit.
//!
//! The backoff sequence is exponential with deterministic jitter and is
//! monotone non-decreasing by construction: the step multiplier is clamped
//! to ≥ 2 while jitter adds at most 100% of a step, so step `n+1`'s floor
//! (`2·stepₙ`) already dominates step `n`'s ceiling (`2·stepₙ`).

use serde::{Deserialize, Serialize};

use crate::cost::CostModel;
use crate::telemetry::{Counter, MetricsRegistry, TimeCounter};
use crate::time::VirtualNanos;

/// The operation classes a retry deadline/backoff is derived from. Each
/// class anchors its policy to the [`CostModel`] duration of one instance
/// of the operation, so timeouts scale with the modeled hardware instead
/// of hard-coded wall numbers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TimeoutClass {
    /// One virtio kick + completion IRQ round trip.
    VirtioRoundTrip,
    /// A manager rank-allocation round trip (§4.2: ~36 ms).
    ManagerAlloc,
    /// A small manager RPC (sync / mark-checkpoint).
    ManagerRpc,
    /// One CI word operation.
    CiOp,
}

/// A bounded-attempt retry policy with monotone, deterministic,
/// virtual-time exponential backoff.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetryPolicy {
    /// Total attempts including the first try (clamped to ≥ 1 in use).
    pub max_attempts: u32,
    /// Backoff before the first retry.
    pub base: VirtualNanos,
    /// Per-retry multiplier (clamped to ≥ 2 by [`RetryPolicy::new`], which
    /// is what makes the jittered sequence provably monotone).
    pub mult: u32,
    /// Maximum jitter as a percentage of the un-jittered step, `0..=100`.
    /// Jitter is a deterministic hash of `(seed, retry index)`, not random.
    pub jitter_pct: u8,
    /// Ceiling every backoff step is clamped to.
    pub cap: VirtualNanos,
    /// The virtual-time budget of one attempt of this class: charged to the
    /// operation when a wait is abandoned, so giving up has a modeled cost.
    pub timeout: VirtualNanos,
}

impl RetryPolicy {
    /// A policy with the invariants enforced (`mult ≥ 2`,
    /// `jitter_pct ≤ 100`, `max_attempts ≥ 1`).
    #[must_use]
    pub fn new(
        max_attempts: u32,
        base: VirtualNanos,
        mult: u32,
        jitter_pct: u8,
        cap: VirtualNanos,
        timeout: VirtualNanos,
    ) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base,
            mult: mult.max(2),
            jitter_pct: jitter_pct.min(100),
            cap,
            timeout,
        }
    }

    /// The single-attempt policy: never retries, never backs off.
    #[must_use]
    pub fn disabled() -> Self {
        RetryPolicy::new(1, VirtualNanos::ZERO, 2, 0, VirtualNanos::ZERO, VirtualNanos::ZERO)
    }

    /// The default policy for `class`: 4 attempts, backoff anchored at the
    /// modeled duration of one operation, capped at 64× it, with 25%
    /// deterministic jitter and a 256× abandonment budget.
    #[must_use]
    pub fn for_class(cm: &CostModel, class: TimeoutClass) -> Self {
        let unit = match class {
            TimeoutClass::VirtioRoundTrip => cm.virtio_round_trip(),
            TimeoutClass::ManagerAlloc => cm.manager_alloc(),
            TimeoutClass::ManagerRpc => cm.manager_rpc(),
            TimeoutClass::CiOp => cm.ci_op(),
        };
        RetryPolicy::new(4, unit, 2, 25, unit * 64, unit * 256)
    }

    /// The backoff charged before retry `n` (0-based: `backoff(seed, 0)`
    /// precedes the second attempt). Pure in `(self, seed, n)`; monotone
    /// non-decreasing in `n`; clamped to [`cap`](Self::cap).
    #[must_use]
    pub fn backoff(&self, seed: u64, n: u32) -> VirtualNanos {
        let mult = u128::from(self.mult.max(2));
        let step: u128 = (0..n).fold(u128::from(self.base.as_nanos()), |acc, _| {
            acc.saturating_mul(mult)
        });
        // Deterministic jitter in [0, jitter_pct/100] of the step.
        let frac = u128::from(jitter_hash(seed, n) % 1000);
        let jitter = step
            .saturating_mul(u128::from(self.jitter_pct.min(100)))
            .saturating_mul(frac)
            / (100 * 1000);
        let ns = step.saturating_add(jitter).min(u128::from(self.cap.as_nanos()));
        VirtualNanos::from_nanos(u64::try_from(ns).unwrap_or(u64::MAX))
    }

    /// Runs `op` under this policy. `op` receives the 0-based attempt
    /// index; `transient` decides whether a failure is worth retrying.
    /// Returns the final result plus the total virtual backoff accrued —
    /// the caller charges that to its timeline (nothing here sleeps).
    ///
    /// Metrics: each retry bumps `attempts` and accrues `backoff_vt`;
    /// exhausting the budget on a transient error bumps `giveups`.
    pub fn run<T, E>(
        &self,
        seed: u64,
        metrics: Option<&RetryMetrics>,
        mut transient: impl FnMut(&E) -> bool,
        mut op: impl FnMut(u32) -> Result<T, E>,
    ) -> (Result<T, E>, VirtualNanos) {
        let budget = self.max_attempts.max(1);
        let mut backoff_total = VirtualNanos::ZERO;
        let mut n = 0u32;
        loop {
            match op(n) {
                Ok(v) => return (Ok(v), backoff_total),
                Err(e) => {
                    if !transient(&e) {
                        return (Err(e), backoff_total);
                    }
                    if n + 1 >= budget {
                        if let Some(m) = metrics {
                            m.giveups.inc();
                        }
                        return (Err(e), backoff_total);
                    }
                    let b = self.backoff(seed, n);
                    backoff_total += b;
                    if let Some(m) = metrics {
                        m.attempts.inc();
                        m.backoff_vt.add(b);
                    }
                    n += 1;
                }
            }
        }
    }
}

/// splitmix64 over (seed, retry index) — the jitter source.
fn jitter_hash(seed: u64, n: u32) -> u64 {
    let mut z = seed
        .wrapping_add(u64::from(n).wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The `retry.*` instrument bundle every retrying layer records into.
#[derive(Debug, Clone)]
pub struct RetryMetrics {
    /// `retry.attempts` — re-attempts performed (first tries not counted).
    pub attempts: Counter,
    /// `retry.giveups` — operations abandoned after exhausting attempts.
    pub giveups: Counter,
    /// `retry.backoff_vt` — total virtual backoff charged.
    pub backoff_vt: TimeCounter,
}

impl RetryMetrics {
    /// The shared `retry.*` instruments of `registry`.
    #[must_use]
    pub fn from_registry(registry: &MetricsRegistry) -> Self {
        RetryMetrics {
            attempts: registry.counter("retry.attempts"),
            giveups: registry.counter("retry.giveups"),
            backoff_vt: registry.time("retry.backoff_vt"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> RetryPolicy {
        RetryPolicy::new(
            4,
            VirtualNanos::from_micros(10),
            2,
            25,
            VirtualNanos::from_millis(10),
            VirtualNanos::from_millis(50),
        )
    }

    #[test]
    fn backoff_is_deterministic_monotone_and_capped() {
        let p = policy();
        let seq: Vec<u64> = (0..12).map(|n| p.backoff(42, n).as_nanos()).collect();
        assert_eq!(
            seq,
            (0..12).map(|n| p.backoff(42, n).as_nanos()).collect::<Vec<_>>(),
            "same seed reproduces the sequence"
        );
        for w in seq.windows(2) {
            assert!(w[1] >= w[0], "monotone: {seq:?}");
        }
        assert!(seq.iter().all(|&ns| ns <= 10_000_000), "capped: {seq:?}");
        assert!(seq[0] >= 10_000, "first step at least the base");
        assert_ne!(
            (0..4).map(|n| p.backoff(1, n)).collect::<Vec<_>>(),
            (0..4).map(|n| p.backoff(2, n)).collect::<Vec<_>>(),
            "different seeds jitter differently"
        );
    }

    #[test]
    fn run_retries_transient_until_success() {
        let p = policy();
        let reg = MetricsRegistry::new();
        let m = RetryMetrics::from_registry(&reg);
        let mut calls = 0;
        let (out, backoff) = p.run(
            7,
            Some(&m),
            |_: &&str| true,
            |n| {
                calls += 1;
                if n < 2 { Err("transient") } else { Ok(n) }
            },
        );
        assert_eq!(out, Ok(2));
        assert_eq!(calls, 3);
        assert_eq!(backoff, p.backoff(7, 0) + p.backoff(7, 1));
        let snap = reg.snapshot();
        assert_eq!(snap.count("retry.attempts"), 2);
        assert_eq!(snap.count("retry.giveups"), 0);
        assert_eq!(snap.time("retry.backoff_vt"), backoff);
    }

    #[test]
    fn run_gives_up_after_budget() {
        let p = policy();
        let reg = MetricsRegistry::new();
        let m = RetryMetrics::from_registry(&reg);
        let (out, _) = p.run(7, Some(&m), |_: &&str| true, |_| Err::<(), _>("down"));
        assert_eq!(out, Err("down"));
        let snap = reg.snapshot();
        assert_eq!(snap.count("retry.attempts"), 3, "4 attempts = 3 retries");
        assert_eq!(snap.count("retry.giveups"), 1);
    }

    #[test]
    fn run_fails_fast_on_permanent_errors() {
        let p = policy();
        let reg = MetricsRegistry::new();
        let m = RetryMetrics::from_registry(&reg);
        let mut calls = 0;
        let (out, backoff) = p.run(
            7,
            Some(&m),
            |_: &&str| false,
            |_| {
                calls += 1;
                Err::<(), _>("permanent")
            },
        );
        assert_eq!(out, Err("permanent"));
        assert_eq!(calls, 1);
        assert_eq!(backoff, VirtualNanos::ZERO);
        assert_eq!(reg.snapshot().count("retry.giveups"), 0, "not a retry giveup");
    }

    #[test]
    fn disabled_policy_is_one_shot() {
        let p = RetryPolicy::disabled();
        let mut calls = 0;
        let (out, backoff) = p.run(0, None, |_: &()| true, |_| {
            calls += 1;
            Err::<(), _>(())
        });
        assert!(out.is_err());
        assert_eq!(calls, 1);
        assert_eq!(backoff, VirtualNanos::ZERO);
    }

    #[test]
    fn class_policies_anchor_to_the_cost_model() {
        let cm = CostModel::default();
        let p = RetryPolicy::for_class(&cm, TimeoutClass::ManagerAlloc);
        assert_eq!(p.base, cm.manager_alloc());
        assert_eq!(p.cap, cm.manager_alloc() * 64);
        assert_eq!(p.timeout, cm.manager_alloc() * 256);
        let q = RetryPolicy::for_class(&cm, TimeoutClass::VirtioRoundTrip);
        assert!(q.base < p.base, "kick retries back off far faster than allocs");
        assert_eq!(
            RetryPolicy::for_class(&cm, TimeoutClass::ManagerRpc).base,
            cm.manager_rpc()
        );
        assert_eq!(RetryPolicy::for_class(&cm, TimeoutClass::CiOp).base, cm.ci_op());
    }
}
