//! Firecracker's event loop, in its original and vPIM-optimized forms.
//!
//! §4.2, "Parallel operations handling": in stock Firecracker a single loop
//! handles virtio request events sequentially. vPIM spawns a thread per
//! request, marks the event complete, and lets the worker inject the IRQ
//! when the operation finishes — so requests to different ranks overlap.
//!
//! The manager models both behaviours:
//!
//! * functionally — [`EventManager::kick`] runs the device's notify handler
//!   inline (sequential) or on a persistent worker pool (parallel);
//!   [`EventManager::kick_async`] exposes the split-phase form (dispatch
//!   now, collect completion later) that lets multi-rank `dpu_push_xfer`
//!   kicks genuinely overlap in wall-clock time;
//! * temporally — [`EventManager::completion_schedule`] maps per-request
//!   virtual durations to per-request completion offsets: cumulative sums
//!   in sequential mode, individual durations in parallel mode. These are
//!   exactly the two curves of Fig. 16.
//!
//! Parallel dispatch never feeds back into virtual time: reported
//! durations come from the completion schedules above, so sequential and
//! parallel modes return bit-identical results and timings.

use std::sync::Arc;
use std::time::Duration;

use parking_lot::{Condvar, Mutex};
use simkit::{Counter, FaultPlane, JobHandle, VirtualNanos, WorkerPool};

use crate::device::{VirtioDevice, VmmError};

/// Dispatch-pool width in parallel mode: one worker per rank of the
/// paper's 8-rank testbed, matching its per-request worker threads.
pub const DISPATCH_WORKERS: usize = 8;

/// The fault point consulted by [`EventManager::kick_async`]: firing
/// *drops* the guest kick — the vmexit is counted, but the device handler
/// never runs and the resulting [`KickHandle`] resolves to
/// [`VmmError::KickDropped`]. Nothing is dispatched and nothing is left
/// pending, so callers recover by simply re-notifying the queue.
pub const KICK_DROP_POINT: &str = "vmm.kick.drop";

/// In-flight notifications for one device: a count plus a condvar so
/// callers can await quiescence.
#[derive(Debug, Default)]
struct Pending {
    count: Mutex<u64>,
    cv: Condvar,
}

impl Pending {
    fn enter(&self) {
        *self.count.lock() += 1;
    }

    fn exit(&self) {
        let mut c = self.count.lock();
        *c -= 1;
        if *c == 0 {
            self.cv.notify_all();
        }
    }

    fn current(&self) -> u64 {
        *self.count.lock()
    }

    fn wait_zero(&self, timeout: Duration) -> bool {
        let mut c = self.count.lock();
        if *c > 0 {
            let _ = self.cv.wait_for(&mut c, timeout);
        }
        *c == 0
    }
}

/// How the event loop dispatches virtio request events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Stock Firecracker: one loop, one request at a time (`vPIM-Seq`).
    Sequential,
    /// vPIM: a dedicated thread per request (`vPIM` with parallel
    /// operation handling).
    Parallel,
}

/// The VMM event loop.
#[derive(Clone)]
pub struct EventManager {
    devices: Vec<Arc<dyn VirtioDevice>>,
    pending: Vec<Arc<Pending>>,
    mode: DispatchMode,
    kicks: Counter,
    pool: Option<Arc<WorkerPool>>,
    inject: Option<Arc<FaultPlane>>,
}

/// The receipt for one [`EventManager::kick_async`]: resolves to the
/// device handler's result. Sequential-mode kicks resolve immediately
/// (the handler already ran inline); parallel-mode kicks resolve when the
/// pool worker finishes.
#[derive(Debug)]
pub struct KickHandle {
    inner: KickInner,
}

#[derive(Debug)]
enum KickInner {
    Ready(Result<(), VmmError>),
    Pooled(JobHandle<Result<(), VmmError>>),
}

impl KickHandle {
    /// Blocks until the notification has been fully handled and returns
    /// the handler's result. Handler panics propagate to the waiter.
    pub fn wait(self) -> Result<(), VmmError> {
        match self.inner {
            KickInner::Ready(r) => r,
            KickInner::Pooled(h) => h.wait(),
        }
    }
}

impl std::fmt::Debug for EventManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventManager")
            .field("devices", &self.devices.len())
            .field("mode", &self.mode)
            .field("kicks", &self.kicks.get())
            .finish()
    }
}

impl EventManager {
    /// Creates an event manager in the given dispatch mode. Parallel mode
    /// spawns a persistent [`DISPATCH_WORKERS`]-wide pool shared by every
    /// clone of this manager.
    #[must_use]
    pub fn new(mode: DispatchMode) -> Self {
        Self::with_workers(mode, DISPATCH_WORKERS)
    }

    /// [`new`](Self::new) with an explicit dispatch-pool width (ignored in
    /// sequential mode, which never spawns threads).
    #[must_use]
    pub fn with_workers(mode: DispatchMode, workers: usize) -> Self {
        EventManager {
            devices: Vec::new(),
            pending: Vec::new(),
            mode,
            kicks: Counter::new(),
            pool: match mode {
                DispatchMode::Sequential => None,
                DispatchMode::Parallel => Some(Arc::new(WorkerPool::new(workers))),
            },
            inject: None,
        }
    }

    /// The dispatch mode.
    #[must_use]
    pub fn mode(&self) -> DispatchMode {
        self.mode
    }

    /// Registers a device and returns its index.
    pub fn register(&mut self, device: Arc<dyn VirtioDevice>) -> usize {
        self.devices.push(device);
        self.pending.push(Arc::new(Pending::default()));
        self.devices.len() - 1
    }

    /// Registered devices.
    #[must_use]
    pub fn devices(&self) -> &[Arc<dyn VirtioDevice>] {
        &self.devices
    }

    /// Total guest kicks (vmexits) observed.
    #[must_use]
    pub fn kicks(&self) -> u64 {
        self.kicks.get()
    }

    /// The counter cell behind [`kicks`](Self::kicks). Clones share the
    /// cell, so it can be bound into a `MetricsRegistry`.
    #[must_use]
    pub fn kick_counter(&self) -> &Counter {
        &self.kicks
    }

    /// Replaces the kick counter (used to install a registry-owned cell,
    /// e.g. `vmm.vmexits`). Existing clones keep the old cell, so install
    /// before handing the manager out.
    pub fn set_kick_counter(&mut self, counter: Counter) {
        self.kicks = counter;
    }

    /// Installs the fault-injection plane; [`kick_async`](Self::kick_async)
    /// then consults [`KICK_DROP_POINT`]. Like
    /// [`set_kick_counter`](Self::set_kick_counter), existing clones keep
    /// the old (absent) plane, so install before handing the manager out.
    pub fn set_fault_plane(&mut self, plane: Arc<FaultPlane>) {
        self.inject = Some(plane);
    }

    /// Dispatches a queue notification for device `idx` and returns a
    /// [`KickHandle`] tracking its completion.
    ///
    /// In [`DispatchMode::Sequential`] the handler runs inline before this
    /// returns (stock Firecracker's single event loop); in
    /// [`DispatchMode::Parallel`] it is enqueued on the persistent worker
    /// pool and this call returns immediately — the paper's event loop
    /// "marks the event complete and lets the worker inject the IRQ". The
    /// *functional* result is identical in both modes; only wall-clock
    /// overlap and the temporal model
    /// (see [`completion_schedule`](Self::completion_schedule)) differ.
    ///
    /// # Errors
    ///
    /// Unknown device index. Handler failures surface from
    /// [`KickHandle::wait`].
    pub fn kick_async(&self, idx: usize, queue: u32) -> Result<KickHandle, VmmError> {
        self.kicks.inc();
        let device = self
            .devices
            .get(idx)
            .ok_or_else(|| VmmError::BadState(format!("no device {idx}")))?
            .clone();
        if let Some(plane) = &self.inject {
            if plane.hit(KICK_DROP_POINT) {
                // Dropped before dispatch: the handler never runs and no
                // pending entry is taken, so wait_idle stays truthful.
                return Ok(KickHandle {
                    inner: KickInner::Ready(Err(VmmError::KickDropped)),
                });
            }
        }
        let inner = match (&self.pool, self.mode) {
            (Some(pool), DispatchMode::Parallel) => {
                let pending = Arc::clone(&self.pending[idx]);
                pending.enter();
                KickInner::Pooled(pool.submit(move || {
                    let r = device.handle_notify(queue);
                    pending.exit();
                    r
                }))
            }
            _ => KickInner::Ready(device.handle_notify(queue)),
        };
        Ok(KickHandle { inner })
    }

    /// Delivers a queue notification for device `idx` and waits for the
    /// handler to finish — [`kick_async`](Self::kick_async) + wait.
    /// Concurrent callers in parallel mode still overlap on the pool.
    ///
    /// # Errors
    ///
    /// Unknown device index or a device handler failure.
    pub fn kick(&self, idx: usize, queue: u32) -> Result<(), VmmError> {
        self.kick_async(idx, queue)?.wait()
    }

    /// Delivers notifications for several devices "at once" (one request
    /// per device, e.g. a multi-rank `dpu_push_xfer`). Sequential mode
    /// processes them in order on the event loop; parallel mode dispatches
    /// all of them onto the pool before collecting any completion, so the
    /// handlers genuinely overlap in wall-clock time. Errors are reported
    /// in `idxs` order (first failing index), independent of which handler
    /// finished first.
    ///
    /// # Errors
    ///
    /// First device failure in `idxs` order.
    pub fn kick_all(&self, idxs: &[usize], queue: u32) -> Result<(), VmmError> {
        match self.mode {
            DispatchMode::Sequential => {
                for &i in idxs {
                    self.kick(i, queue)?;
                }
                Ok(())
            }
            DispatchMode::Parallel => {
                let handles: Vec<KickHandle> = idxs
                    .iter()
                    .map(|&i| self.kick_async(i, queue))
                    .collect::<Result<_, _>>()?;
                let mut first_err = None;
                for h in handles {
                    if let Err(e) = h.wait() {
                        first_err.get_or_insert(e);
                    }
                }
                first_err.map_or(Ok(()), Err)
            }
        }
    }

    /// Notifications currently in flight for device `idx` (0 for unknown
    /// indices and always 0 in sequential mode, where handlers run inline).
    #[must_use]
    pub fn pending(&self, idx: usize) -> u64 {
        self.pending.get(idx).map_or(0, |p| p.current())
    }

    /// Blocks until device `idx` has no in-flight notifications (or
    /// `timeout` passes); returns whether the device went idle. Useful for
    /// draining async kicks before tearing a device down.
    #[must_use]
    pub fn wait_idle(&self, idx: usize, timeout: Duration) -> bool {
        self.pending.get(idx).map_or(true, |p| p.wait_zero(timeout))
    }

    /// Blocks until *every* registered device has no in-flight
    /// notifications (or `timeout` passes); returns whether the whole VM
    /// went idle. The scheduler's safe-point definition requires no
    /// in-flight transfer anywhere in a VM before its ranks are lent out,
    /// so teardown and oversubscription tests drain with this instead of
    /// polling each device.
    #[must_use]
    pub fn wait_idle_all(&self, timeout: Duration) -> bool {
        let deadline = std::time::Instant::now() + timeout;
        for idx in 0..self.pending.len() {
            let now = std::time::Instant::now();
            if now >= deadline {
                return self.pending[idx..].iter().all(|p| p.current() == 0);
            }
            if !self.wait_idle(idx, deadline - now) {
                return false;
            }
        }
        true
    }

    /// Virtual-time completion offsets for a batch of requests with the
    /// given processing durations — Fig. 16's two curves.
    ///
    /// Sequential: request *i* completes at `Σ_{j≤i} d_j`.
    /// Parallel: request *i* completes at `d_i`.
    #[must_use]
    pub fn completion_schedule(&self, durations: &[VirtualNanos]) -> Vec<VirtualNanos> {
        match self.mode {
            DispatchMode::Sequential => {
                let mut acc = VirtualNanos::ZERO;
                durations
                    .iter()
                    .map(|d| {
                        acc += *d;
                        acc
                    })
                    .collect()
            }
            DispatchMode::Parallel => durations.to_vec(),
        }
    }

    /// The batch's overall completion time: last completion offset.
    #[must_use]
    pub fn batch_completion(&self, durations: &[VirtualNanos]) -> VirtualNanos {
        self.completion_schedule(durations)
            .into_iter()
            .fold(VirtualNanos::ZERO, VirtualNanos::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_virtio::mmio::MmioBlock;
    use pim_virtio::{GuestMemory, IrqLine};
    use std::sync::atomic::{AtomicU32, Ordering};

    struct Probe {
        mmio: MmioBlock,
        irq: IrqLine,
        notifies: AtomicU32,
    }

    impl Probe {
        fn new() -> Self {
            Probe {
                mmio: MmioBlock::new(42, 2, 512, vec![0; 16]),
                irq: IrqLine::new(33),
                notifies: AtomicU32::new(0),
            }
        }
    }

    impl VirtioDevice for Probe {
        fn tag(&self) -> String {
            "probe".into()
        }
        fn device_id(&self) -> u32 {
            42
        }
        fn mmio(&self) -> &MmioBlock {
            &self.mmio
        }
        fn irq(&self) -> &IrqLine {
            &self.irq
        }
        fn activate(&self, _mem: &GuestMemory) -> Result<(), VmmError> {
            Ok(())
        }
        fn handle_notify(&self, _queue: u32) -> Result<(), VmmError> {
            self.notifies.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    #[test]
    fn kick_dispatches_in_both_modes() {
        for mode in [DispatchMode::Sequential, DispatchMode::Parallel] {
            let mut mgr = EventManager::new(mode);
            let probe = Arc::new(Probe::new());
            let idx = mgr.register(probe.clone());
            mgr.kick(idx, 0).unwrap();
            mgr.kick_all(&[idx], 0).unwrap();
            assert_eq!(probe.notifies.load(Ordering::Relaxed), 2);
            assert_eq!(mgr.kicks(), 2);
        }
    }

    #[test]
    fn unknown_device_errors() {
        let mgr = EventManager::new(DispatchMode::Sequential);
        assert!(mgr.kick(0, 0).is_err());
    }

    #[test]
    fn schedules_match_fig16() {
        let ds: Vec<VirtualNanos> = [10, 10, 10].map(VirtualNanos::from_nanos).into();
        let seq = EventManager::new(DispatchMode::Sequential);
        let par = EventManager::new(DispatchMode::Parallel);
        assert_eq!(
            seq.completion_schedule(&ds),
            [10, 20, 30].map(VirtualNanos::from_nanos).to_vec()
        );
        assert_eq!(
            par.completion_schedule(&ds),
            [10, 10, 10].map(VirtualNanos::from_nanos).to_vec()
        );
        assert_eq!(seq.batch_completion(&ds).as_nanos(), 30);
        assert_eq!(par.batch_completion(&ds).as_nanos(), 10);
    }

    struct SlowProbe {
        inner: Probe,
        delay: Duration,
    }

    impl SlowProbe {
        fn new(delay: Duration) -> Self {
            SlowProbe { inner: Probe::new(), delay }
        }
    }

    impl VirtioDevice for SlowProbe {
        fn tag(&self) -> String {
            "slow-probe".into()
        }
        fn device_id(&self) -> u32 {
            43
        }
        fn mmio(&self) -> &MmioBlock {
            &self.inner.mmio
        }
        fn irq(&self) -> &IrqLine {
            &self.inner.irq
        }
        fn activate(&self, _mem: &GuestMemory) -> Result<(), VmmError> {
            Ok(())
        }
        fn handle_notify(&self, _queue: u32) -> Result<(), VmmError> {
            std::thread::sleep(self.delay);
            self.inner.notifies.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    /// Regression for the spawn-then-join bug: parallel `kick_all` used to
    /// join each worker before results could overlap end to end; two slow
    /// handlers must now complete in roughly one handler's wall-clock time.
    #[test]
    fn parallel_kick_all_overlaps_slow_handlers_in_wall_clock() {
        let delay = Duration::from_millis(60);
        let mut par = EventManager::new(DispatchMode::Parallel);
        let a = Arc::new(SlowProbe::new(delay));
        let b = Arc::new(SlowProbe::new(delay));
        let ia = par.register(a.clone());
        let ib = par.register(b.clone());
        let start = std::time::Instant::now();
        par.kick_all(&[ia, ib], 0).unwrap();
        let wall = start.elapsed();
        assert!(
            wall < delay * 2,
            "two {delay:?} handlers took {wall:?}: not overlapping"
        );
        assert_eq!(a.inner.notifies.load(Ordering::Relaxed), 1);
        assert_eq!(b.inner.notifies.load(Ordering::Relaxed), 1);

        // Sequential mode really serializes them (Fig. 16's other curve).
        let mut seq = EventManager::new(DispatchMode::Sequential);
        let c = Arc::new(SlowProbe::new(delay));
        let d = Arc::new(SlowProbe::new(delay));
        let ic = seq.register(c.clone());
        let id = seq.register(d.clone());
        let start = std::time::Instant::now();
        seq.kick_all(&[ic, id], 0).unwrap();
        assert!(start.elapsed() >= delay * 2);
    }

    #[test]
    fn kick_async_tracks_per_device_completion() {
        let mut mgr = EventManager::new(DispatchMode::Parallel);
        let slow = Arc::new(SlowProbe::new(Duration::from_millis(40)));
        let idx = mgr.register(slow.clone());
        let h = mgr.kick_async(idx, 0).unwrap();
        assert_eq!(mgr.pending(idx), 1);
        assert!(mgr.wait_idle(idx, Duration::from_secs(5)));
        assert_eq!(mgr.pending(idx), 0);
        h.wait().unwrap();
        assert_eq!(slow.inner.notifies.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn wait_idle_all_drains_every_device() {
        let mut mgr = EventManager::new(DispatchMode::Parallel);
        let a = Arc::new(SlowProbe::new(Duration::from_millis(30)));
        let b = Arc::new(SlowProbe::new(Duration::from_millis(30)));
        let ia = mgr.register(a.clone());
        let ib = mgr.register(b.clone());
        let ha = mgr.kick_async(ia, 0).unwrap();
        let hb = mgr.kick_async(ib, 0).unwrap();
        assert!(mgr.wait_idle_all(Duration::from_secs(5)));
        assert_eq!(mgr.pending(ia), 0);
        assert_eq!(mgr.pending(ib), 0);
        ha.wait().unwrap();
        hb.wait().unwrap();
        // An idle manager reports idle immediately.
        assert!(mgr.wait_idle_all(Duration::from_millis(1)));
    }

    #[test]
    fn sequential_kick_async_resolves_inline() {
        let mut mgr = EventManager::new(DispatchMode::Sequential);
        let probe = Arc::new(Probe::new());
        let idx = mgr.register(probe.clone());
        let h = mgr.kick_async(idx, 0).unwrap();
        // Handler already ran: inline dispatch leaves nothing pending.
        assert_eq!(probe.notifies.load(Ordering::Relaxed), 1);
        assert_eq!(mgr.pending(idx), 0);
        h.wait().unwrap();
    }

    #[test]
    fn dropped_kick_never_reaches_the_handler() {
        use simkit::{FaultPlan, FaultPlane};
        for mode in [DispatchMode::Sequential, DispatchMode::Parallel] {
            let mut mgr = EventManager::new(mode);
            let plane = Arc::new(FaultPlane::new(7));
            plane.arm(KICK_DROP_POINT, FaultPlan::Nth(1));
            mgr.set_fault_plane(plane);
            let probe = Arc::new(Probe::new());
            let idx = mgr.register(probe.clone());
            // First kick is dropped: counted as a vmexit, handler unrun,
            // nothing pending (wait_idle stays truthful).
            let h = mgr.kick_async(idx, 0).unwrap();
            assert!(matches!(h.wait(), Err(VmmError::KickDropped)));
            assert_eq!(probe.notifies.load(Ordering::Relaxed), 0);
            assert_eq!(mgr.pending(idx), 0);
            assert_eq!(mgr.kicks(), 1);
            // Re-notifying recovers: Nth(1) is spent.
            mgr.kick(idx, 0).unwrap();
            assert_eq!(probe.notifies.load(Ordering::Relaxed), 1);
        }
    }

    #[test]
    fn kick_all_parallel_counts_every_kick() {
        let mut mgr = EventManager::new(DispatchMode::Parallel);
        let a = Arc::new(Probe::new());
        let b = Arc::new(Probe::new());
        let ia = mgr.register(a.clone());
        let ib = mgr.register(b.clone());
        mgr.kick_all(&[ia, ib], 0).unwrap();
        assert_eq!(mgr.kicks(), 2);
        assert_eq!(a.notifies.load(Ordering::Relaxed), 1);
        assert_eq!(b.notifies.load(Ordering::Relaxed), 1);
    }
}
