//! Firecracker's event loop, in its original and vPIM-optimized forms.
//!
//! §4.2, "Parallel operations handling": in stock Firecracker a single loop
//! handles virtio request events sequentially. vPIM spawns a thread per
//! request, marks the event complete, and lets the worker inject the IRQ
//! when the operation finishes — so requests to different ranks overlap.
//!
//! The manager models both behaviours:
//!
//! * functionally — [`EventManager::kick`] runs the device's notify handler
//!   inline (sequential) or on a worker thread (parallel);
//! * temporally — [`EventManager::completion_schedule`] maps per-request
//!   virtual durations to per-request completion offsets: cumulative sums
//!   in sequential mode, individual durations in parallel mode. These are
//!   exactly the two curves of Fig. 16.

use std::sync::Arc;

use simkit::{Counter, VirtualNanos};

use crate::device::{VirtioDevice, VmmError};

/// How the event loop dispatches virtio request events.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchMode {
    /// Stock Firecracker: one loop, one request at a time (`vPIM-Seq`).
    Sequential,
    /// vPIM: a dedicated thread per request (`vPIM` with parallel
    /// operation handling).
    Parallel,
}

/// The VMM event loop.
#[derive(Clone)]
pub struct EventManager {
    devices: Vec<Arc<dyn VirtioDevice>>,
    mode: DispatchMode,
    kicks: Counter,
}

impl std::fmt::Debug for EventManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventManager")
            .field("devices", &self.devices.len())
            .field("mode", &self.mode)
            .field("kicks", &self.kicks.get())
            .finish()
    }
}

impl EventManager {
    /// Creates an event manager in the given dispatch mode.
    #[must_use]
    pub fn new(mode: DispatchMode) -> Self {
        EventManager {
            devices: Vec::new(),
            mode,
            kicks: Counter::new(),
        }
    }

    /// The dispatch mode.
    #[must_use]
    pub fn mode(&self) -> DispatchMode {
        self.mode
    }

    /// Registers a device and returns its index.
    pub fn register(&mut self, device: Arc<dyn VirtioDevice>) -> usize {
        self.devices.push(device);
        self.devices.len() - 1
    }

    /// Registered devices.
    #[must_use]
    pub fn devices(&self) -> &[Arc<dyn VirtioDevice>] {
        &self.devices
    }

    /// Total guest kicks (vmexits) observed.
    #[must_use]
    pub fn kicks(&self) -> u64 {
        self.kicks.get()
    }

    /// The counter cell behind [`kicks`](Self::kicks). Clones share the
    /// cell, so it can be bound into a `MetricsRegistry`.
    #[must_use]
    pub fn kick_counter(&self) -> &Counter {
        &self.kicks
    }

    /// Replaces the kick counter (used to install a registry-owned cell,
    /// e.g. `vmm.vmexits`). Existing clones keep the old cell, so install
    /// before handing the manager out.
    pub fn set_kick_counter(&mut self, counter: Counter) {
        self.kicks = counter;
    }

    /// Delivers a queue notification for device `idx`.
    ///
    /// In [`DispatchMode::Sequential`] the handler runs inline; in
    /// [`DispatchMode::Parallel`] it runs on a spawned worker (the paper's
    /// per-request thread) and this call returns after the worker finishes
    /// — the *functional* result is identical, only the temporal model
    /// (see [`completion_schedule`](Self::completion_schedule)) differs.
    ///
    /// # Errors
    ///
    /// Unknown device index or a device handler failure.
    pub fn kick(&self, idx: usize, queue: u32) -> Result<(), VmmError> {
        self.kicks.inc();
        let device = self
            .devices
            .get(idx)
            .ok_or_else(|| VmmError::BadState(format!("no device {idx}")))?
            .clone();
        match self.mode {
            DispatchMode::Sequential => device.handle_notify(queue),
            DispatchMode::Parallel => {
                std::thread::scope(|s| s.spawn(move || device.handle_notify(queue)).join())
                    .map_err(|_| VmmError::Device("worker thread panicked".to_string()))?
            }
        }
    }

    /// Delivers notifications for several devices "at once" (one request
    /// per device, e.g. a multi-rank `dpu_push_xfer`). Sequential mode
    /// processes them in order on the event loop; parallel mode overlaps
    /// them on worker threads.
    ///
    /// # Errors
    ///
    /// First device failure encountered.
    pub fn kick_all(&self, idxs: &[usize], queue: u32) -> Result<(), VmmError> {
        match self.mode {
            DispatchMode::Sequential => {
                for &i in idxs {
                    self.kick(i, queue)?;
                }
                Ok(())
            }
            DispatchMode::Parallel => {
                self.kicks.add(idxs.len() as u64);
                let mut devices = Vec::with_capacity(idxs.len());
                for &i in idxs {
                    devices.push(
                        self.devices
                            .get(i)
                            .ok_or_else(|| VmmError::BadState(format!("no device {i}")))?
                            .clone(),
                    );
                }
                std::thread::scope(|s| {
                    let handles: Vec<_> = devices
                        .iter()
                        .map(|d| {
                            let d = Arc::clone(d);
                            s.spawn(move || d.handle_notify(queue))
                        })
                        .collect();
                    for h in handles {
                        h.join()
                            .map_err(|_| VmmError::Device("worker thread panicked".to_string()))??;
                    }
                    Ok(())
                })
            }
        }
    }

    /// Virtual-time completion offsets for a batch of requests with the
    /// given processing durations — Fig. 16's two curves.
    ///
    /// Sequential: request *i* completes at `Σ_{j≤i} d_j`.
    /// Parallel: request *i* completes at `d_i`.
    #[must_use]
    pub fn completion_schedule(&self, durations: &[VirtualNanos]) -> Vec<VirtualNanos> {
        match self.mode {
            DispatchMode::Sequential => {
                let mut acc = VirtualNanos::ZERO;
                durations
                    .iter()
                    .map(|d| {
                        acc += *d;
                        acc
                    })
                    .collect()
            }
            DispatchMode::Parallel => durations.to_vec(),
        }
    }

    /// The batch's overall completion time: last completion offset.
    #[must_use]
    pub fn batch_completion(&self, durations: &[VirtualNanos]) -> VirtualNanos {
        self.completion_schedule(durations)
            .into_iter()
            .fold(VirtualNanos::ZERO, VirtualNanos::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_virtio::mmio::MmioBlock;
    use pim_virtio::{GuestMemory, IrqLine};
    use std::sync::atomic::{AtomicU32, Ordering};

    struct Probe {
        mmio: MmioBlock,
        irq: IrqLine,
        notifies: AtomicU32,
    }

    impl Probe {
        fn new() -> Self {
            Probe {
                mmio: MmioBlock::new(42, 2, 512, vec![0; 16]),
                irq: IrqLine::new(33),
                notifies: AtomicU32::new(0),
            }
        }
    }

    impl VirtioDevice for Probe {
        fn tag(&self) -> String {
            "probe".into()
        }
        fn device_id(&self) -> u32 {
            42
        }
        fn mmio(&self) -> &MmioBlock {
            &self.mmio
        }
        fn irq(&self) -> &IrqLine {
            &self.irq
        }
        fn activate(&self, _mem: &GuestMemory) -> Result<(), VmmError> {
            Ok(())
        }
        fn handle_notify(&self, _queue: u32) -> Result<(), VmmError> {
            self.notifies.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    #[test]
    fn kick_dispatches_in_both_modes() {
        for mode in [DispatchMode::Sequential, DispatchMode::Parallel] {
            let mut mgr = EventManager::new(mode);
            let probe = Arc::new(Probe::new());
            let idx = mgr.register(probe.clone());
            mgr.kick(idx, 0).unwrap();
            mgr.kick_all(&[idx], 0).unwrap();
            assert_eq!(probe.notifies.load(Ordering::Relaxed), 2);
            assert_eq!(mgr.kicks(), 2);
        }
    }

    #[test]
    fn unknown_device_errors() {
        let mgr = EventManager::new(DispatchMode::Sequential);
        assert!(mgr.kick(0, 0).is_err());
    }

    #[test]
    fn schedules_match_fig16() {
        let ds: Vec<VirtualNanos> = [10, 10, 10].map(VirtualNanos::from_nanos).into();
        let seq = EventManager::new(DispatchMode::Sequential);
        let par = EventManager::new(DispatchMode::Parallel);
        assert_eq!(
            seq.completion_schedule(&ds),
            [10, 20, 30].map(VirtualNanos::from_nanos).to_vec()
        );
        assert_eq!(
            par.completion_schedule(&ds),
            [10, 10, 10].map(VirtualNanos::from_nanos).to_vec()
        );
        assert_eq!(seq.batch_completion(&ds).as_nanos(), 30);
        assert_eq!(par.batch_completion(&ds).as_nanos(), 10);
    }

    #[test]
    fn kick_all_parallel_counts_every_kick() {
        let mut mgr = EventManager::new(DispatchMode::Parallel);
        let a = Arc::new(Probe::new());
        let b = Arc::new(Probe::new());
        let ia = mgr.register(a.clone());
        let ib = mgr.register(b.clone());
        mgr.kick_all(&[ia, ib], 0).unwrap();
        assert_eq!(mgr.kicks(), 2);
        assert_eq!(a.notifies.load(Ordering::Relaxed), 1);
        assert_eq!(b.notifies.load(Ordering::Relaxed), 1);
    }
}
