//! VM configuration — the payload a host sends to the Firecracker API
//! server when provisioning a microVM (§3.2/§3.3).

use serde::{Deserialize, Serialize};

/// Configuration of one vUPMEM device attached to a VM.
///
/// A VM may request as many vUPMEM devices as there are physical ranks
/// (§3.3); each device is later linked to a physical rank by the manager.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VupmemConfig {
    /// Device tag used in diagnostics and manager requests.
    pub tag: String,
}

impl VupmemConfig {
    /// Creates a device config with the given tag.
    #[must_use]
    pub fn new(tag: impl Into<String>) -> Self {
        VupmemConfig { tag: tag.into() }
    }
}

/// The VM configuration accepted by the API server.
///
/// # Example
///
/// ```
/// use pim_vmm::VmConfig;
///
/// let cfg = VmConfig::builder()
///     .vcpus(16)
///     .mem_mib(1024)
///     .vupmem_devices(2)
///     .build();
/// assert_eq!(cfg.vupmem.len(), 2);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VmConfig {
    /// Number of vCPUs (the paper's VMs default to 16).
    pub vcpus: usize,
    /// Guest memory size in MiB (the paper's VMs use 128 GiB; scaled here).
    pub mem_mib: u64,
    /// Path of the guest kernel image (cosmetic in the simulation, but part
    /// of the API payload).
    pub kernel: String,
    /// vUPMEM devices to attach.
    pub vupmem: Vec<VupmemConfig>,
}

impl VmConfig {
    /// Starts a builder with the defaults used throughout the evaluation:
    /// 16 vCPUs, 512 MiB guest RAM (scaled from the paper's 128 GiB), one
    /// vUPMEM device.
    #[must_use]
    pub fn builder() -> VmConfigBuilder {
        VmConfigBuilder::default()
    }
}

impl Default for VmConfig {
    fn default() -> Self {
        VmConfig::builder().build()
    }
}

/// Builder for [`VmConfig`].
#[derive(Debug, Clone)]
pub struct VmConfigBuilder {
    vcpus: usize,
    mem_mib: u64,
    kernel: String,
    vupmem: usize,
}

impl Default for VmConfigBuilder {
    fn default() -> Self {
        VmConfigBuilder {
            vcpus: 16,
            mem_mib: 512,
            kernel: "vmlinux-5.10-vpim".to_string(),
            vupmem: 1,
        }
    }
}

impl VmConfigBuilder {
    /// Sets the vCPU count.
    #[must_use]
    pub fn vcpus(mut self, n: usize) -> Self {
        self.vcpus = n;
        self
    }

    /// Sets guest memory in MiB.
    #[must_use]
    pub fn mem_mib(mut self, mib: u64) -> Self {
        self.mem_mib = mib;
        self
    }

    /// Sets the kernel image path.
    #[must_use]
    pub fn kernel(mut self, path: impl Into<String>) -> Self {
        self.kernel = path.into();
        self
    }

    /// Sets the number of vUPMEM devices to attach.
    #[must_use]
    pub fn vupmem_devices(mut self, n: usize) -> Self {
        self.vupmem = n;
        self
    }

    /// Builds the configuration.
    #[must_use]
    pub fn build(self) -> VmConfig {
        VmConfig {
            vcpus: self.vcpus.max(1),
            mem_mib: self.mem_mib.max(16),
            kernel: self.kernel,
            vupmem: (0..self.vupmem)
                .map(|i| VupmemConfig::new(format!("vupmem{i}")))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_match_paper_vm() {
        let cfg = VmConfig::default();
        assert_eq!(cfg.vcpus, 16);
        assert_eq!(cfg.vupmem.len(), 1);
        assert_eq!(cfg.vupmem[0].tag, "vupmem0");
    }

    #[test]
    fn builder_clamps_degenerate_values() {
        let cfg = VmConfig::builder().vcpus(0).mem_mib(0).build();
        assert_eq!(cfg.vcpus, 1);
        assert_eq!(cfg.mem_mib, 16);
    }

    #[test]
    fn multiple_devices_get_distinct_tags() {
        let cfg = VmConfig::builder().vupmem_devices(3).build();
        let tags: Vec<&str> = cfg.vupmem.iter().map(|d| d.tag.as_str()).collect();
        assert_eq!(tags, ["vupmem0", "vupmem1", "vupmem2"]);
    }
}
