//! The microVM: guest memory, devices, and the boot sequence.
//!
//! §3.2 ("vUPMEM Bootstrapping"): when a Firecracker VM launches, the VMM
//! passes virtio device descriptions to the guest on the kernel command
//! line (MMIO region + IRQ per device); during boot the guest probes each
//! block, the vUPMEM frontend driver initializes, requests the device
//! configuration, and exposes a device file. Adding one vUPMEM device
//! increases boot time by up to 2 ms.

use std::sync::Arc;

use pim_virtio::GuestMemory;
use simkit::{CostModel, VirtualNanos};

use crate::config::VmConfig;
use crate::device::{VirtioDevice, VmmError};
use crate::event::{DispatchMode, EventManager};

/// MMIO base address of the first virtio device slot.
pub const MMIO_BASE: u64 = 0xd000_0000;
/// Size of each device's MMIO window.
pub const MMIO_SLOT: u64 = 0x1000;
/// GSI of the first virtio device.
pub const IRQ_BASE: u32 = 32;

/// What `Vm::boot` produces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BootReport {
    /// The kernel command line, including one `virtio_mmio.device=` clause
    /// per attached device.
    pub cmdline: String,
    /// Base boot time of the microVM without vUPMEM devices.
    pub base_boot_time: VirtualNanos,
    /// Additional boot time contributed by vUPMEM devices (≤ 2 ms each).
    pub vupmem_boot_time: VirtualNanos,
}

impl BootReport {
    /// Total boot time.
    #[must_use]
    pub fn total(&self) -> VirtualNanos {
        self.base_boot_time + self.vupmem_boot_time
    }
}

/// A microVM.
#[derive(Debug)]
pub struct Vm {
    config: VmConfig,
    mem: GuestMemory,
    event_manager: EventManager,
    booted: bool,
}

impl Vm {
    /// Provisions a VM from an API configuration (allocates guest memory,
    /// prepares the event loop in the requested dispatch mode).
    #[must_use]
    pub fn new(config: VmConfig, dispatch: DispatchMode) -> Self {
        let mem = GuestMemory::new(config.mem_mib * (1 << 20));
        Vm {
            config,
            mem,
            event_manager: EventManager::new(dispatch),
            booted: false,
        }
    }

    /// The VM configuration.
    #[must_use]
    pub fn config(&self) -> &VmConfig {
        &self.config
    }

    /// Guest physical memory.
    #[must_use]
    pub fn memory(&self) -> &GuestMemory {
        &self.mem
    }

    /// The event loop (register devices here before boot).
    pub fn event_manager_mut(&mut self) -> &mut EventManager {
        &mut self.event_manager
    }

    /// The event loop.
    #[must_use]
    pub fn event_manager(&self) -> &EventManager {
        &self.event_manager
    }

    /// Whether `boot` has completed.
    #[must_use]
    pub fn is_booted(&self) -> bool {
        self.booted
    }

    /// MMIO window base for device slot `i`.
    #[must_use]
    pub fn mmio_base(i: usize) -> u64 {
        MMIO_BASE + MMIO_SLOT * i as u64
    }

    /// IRQ number for device slot `i`.
    #[must_use]
    pub fn irq_number(i: usize) -> u32 {
        IRQ_BASE + i as u32
    }

    /// Boots the VM: builds the cmdline advertising every registered
    /// device, activates each device (the guest driver's probe), and
    /// accounts boot-time costs.
    ///
    /// # Errors
    ///
    /// [`VmmError::BadState`] on double boot; device activation failures.
    pub fn boot(&mut self, cm: &CostModel) -> Result<BootReport, VmmError> {
        if self.booted {
            return Err(VmmError::BadState("vm already booted".to_string()));
        }
        let mut cmdline = format!(
            "console=ttyS0 reboot=k panic=1 pci=off root=/dev/vda kernel={}",
            self.config.kernel
        );
        let devices: Vec<Arc<dyn VirtioDevice>> = self.event_manager.devices().to_vec();
        let mut vupmem_boot = VirtualNanos::ZERO;
        for (i, dev) in devices.iter().enumerate() {
            cmdline.push_str(&format!(
                " virtio_mmio.device=4K@{:#x}:{}",
                Vm::mmio_base(i),
                Vm::irq_number(i)
            ));
            dev.activate(&self.mem)?;
            if dev.device_id() == pim_virtio::mmio::VIRTIO_ID_PIM {
                vupmem_boot += cm.vupmem_boot();
            }
        }
        self.booted = true;
        Ok(BootReport {
            cmdline,
            // Firecracker's own time-to-guest is ~125 ms class; any stable
            // constant works since only the vUPMEM delta matters.
            base_boot_time: VirtualNanos::from_millis(125),
            vupmem_boot_time: vupmem_boot,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pim_virtio::mmio::MmioBlock;
    use pim_virtio::IrqLine;

    struct Stub {
        mmio: MmioBlock,
        irq: IrqLine,
        id: u32,
    }

    impl Stub {
        fn pim() -> Self {
            Stub {
                mmio: MmioBlock::new(42, 2, 512, vec![0; 16]),
                irq: IrqLine::new(33),
                id: 42,
            }
        }
        fn block() -> Self {
            Stub {
                mmio: MmioBlock::new(2, 1, 256, vec![0; 16]),
                irq: IrqLine::new(34),
                id: 2,
            }
        }
    }

    impl VirtioDevice for Stub {
        fn tag(&self) -> String {
            "stub".into()
        }
        fn device_id(&self) -> u32 {
            self.id
        }
        fn mmio(&self) -> &MmioBlock {
            &self.mmio
        }
        fn irq(&self) -> &IrqLine {
            &self.irq
        }
        fn activate(&self, _mem: &GuestMemory) -> Result<(), VmmError> {
            Ok(())
        }
        fn handle_notify(&self, _queue: u32) -> Result<(), VmmError> {
            Ok(())
        }
    }

    #[test]
    fn boot_advertises_devices_and_charges_vupmem_time() {
        let cm = CostModel::default();
        let mut vm = Vm::new(VmConfig::default(), DispatchMode::Sequential);
        vm.event_manager_mut().register(Arc::new(Stub::pim()));
        vm.event_manager_mut().register(Arc::new(Stub::block()));
        vm.event_manager_mut().register(Arc::new(Stub::pim()));
        let report = vm.boot(&cm).unwrap();
        assert!(vm.is_booted());
        assert!(report.cmdline.contains("virtio_mmio.device=4K@0xd0000000:32"));
        assert!(report.cmdline.contains("virtio_mmio.device=4K@0xd0002000:34"));
        // Two PIM devices, 2 ms each (§3.2: "up to 2 ms" per device).
        assert_eq!(report.vupmem_boot_time.as_millis(), 4);
        assert!(report.total() > report.base_boot_time);
    }

    #[test]
    fn double_boot_rejected() {
        let cm = CostModel::default();
        let mut vm = Vm::new(VmConfig::default(), DispatchMode::Sequential);
        vm.boot(&cm).unwrap();
        assert!(matches!(vm.boot(&cm), Err(VmmError::BadState(_))));
    }

    #[test]
    fn memory_sized_from_config() {
        let vm = Vm::new(
            VmConfig::builder().mem_mib(64).build(),
            DispatchMode::Sequential,
        );
        assert_eq!(vm.memory().size(), 64 << 20);
    }

    #[test]
    fn slot_addressing() {
        assert_eq!(Vm::mmio_base(0), 0xd000_0000);
        assert_eq!(Vm::mmio_base(2), 0xd000_2000);
        assert_eq!(Vm::irq_number(3), 35);
    }
}
