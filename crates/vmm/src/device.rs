//! The VMM-side virtio device abstraction.

use core::fmt;

use pim_virtio::mmio::MmioBlock;
use pim_virtio::{GuestMemory, IrqLine, VirtioError};
use simkit::{ErrorKind, HasErrorKind};

/// Errors surfaced by device models or the VMM.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum VmmError {
    /// The virtio transport failed.
    Virtio(VirtioError),
    /// A device-model failure (message from the device).
    Device(String),
    /// The VM is not in a state that allows the operation.
    BadState(String),
    /// A guest kick (queue notification) was dropped by the
    /// fault-injection plane (`vmm.kick.drop`) before the handler ran.
    /// Nothing was dispatched, so re-notifying the queue is always safe.
    KickDropped,
}

impl fmt::Display for VmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmmError::Virtio(e) => write!(f, "virtio transport error: {e}"),
            VmmError::Device(msg) => write!(f, "device error: {msg}"),
            VmmError::BadState(msg) => write!(f, "invalid vm state: {msg}"),
            VmmError::KickDropped => {
                write!(f, "guest kick dropped (injected at vmm.kick.drop)")
            }
        }
    }
}

impl std::error::Error for VmmError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            VmmError::Virtio(e) => Some(e),
            _ => None,
        }
    }
}

impl From<VirtioError> for VmmError {
    fn from(e: VirtioError) -> Self {
        VmmError::Virtio(e)
    }
}

impl HasErrorKind for VmmError {
    fn kind(&self) -> ErrorKind {
        match self {
            VmmError::Virtio(e) => e.kind(),
            VmmError::Device(_) => ErrorKind::Internal,
            VmmError::BadState(_) => ErrorKind::Unavailable,
            VmmError::KickDropped => ErrorKind::Injected,
        }
    }
}

/// A virtio device attached to a [`crate::Vm`].
///
/// Implemented by vPIM's vUPMEM device model; the VMM only needs the
/// transport surface (MMIO block, IRQ line) and the notify entry point its
/// event loop invokes.
pub trait VirtioDevice: Send + Sync {
    /// Device tag for diagnostics.
    fn tag(&self) -> String;

    /// The virtio device id advertised over MMIO.
    fn device_id(&self) -> u32;

    /// The MMIO register block.
    fn mmio(&self) -> &MmioBlock;

    /// The interrupt line toward the guest.
    fn irq(&self) -> &IrqLine;

    /// Called once at boot, after the guest driver set `DRIVER_OK`.
    ///
    /// # Errors
    ///
    /// Device-specific activation failures.
    fn activate(&self, mem: &GuestMemory) -> Result<(), VmmError>;

    /// Handles a queue notification (the guest "kick").
    ///
    /// # Errors
    ///
    /// Device-specific processing failures.
    fn handle_notify(&self, queue: u32) -> Result<(), VmmError>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_display_and_source() {
        use std::error::Error;
        let e: VmmError = VirtioError::QueueFull.into();
        assert!(e.to_string().contains("virtio"));
        assert!(e.source().is_some());
        assert!(VmmError::Device("x".into()).source().is_none());
    }

    #[test]
    fn trait_is_object_safe() {
        fn _take(_d: &dyn VirtioDevice) {}
    }
}
