//! # pim-vmm — a Firecracker-like virtual machine monitor model
//!
//! vPIM is prototyped inside Firecracker (§3): the VMM receives the VM
//! configuration through an API socket, allocates guest memory, advertises
//! virtio devices on the kernel command line, and runs an event loop that
//! handles virtqueue notifications. This crate models those pieces:
//!
//! * [`VmConfig`] — the API-server payload (vCPUs, memory, vUPMEM devices);
//! * [`Vm`] — guest memory + attached [`VirtioDevice`]s + boot sequence
//!   (§3.2: cmdline advertisement, driver probe, per-device boot cost);
//! * [`EventManager`] — Firecracker's event loop. The original
//!   implementation handles virtio events *sequentially*; vPIM's parallel
//!   operation handling dispatches each request to a dedicated thread
//!   (§4.2, Fig. 15/16). Both modes are provided, along with the virtual-
//!   time completion schedule each mode produces.
//!
//! Trap/IRQ accounting lives here because the guest↔VMM transition count is
//! the paper's dominant overhead driver.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod device;
pub mod event;
pub mod vm;

pub use config::{VmConfig, VupmemConfig};
pub use device::{VirtioDevice, VmmError};
pub use event::{DispatchMode, EventManager, KickHandle, KICK_DROP_POINT};
pub use vm::{BootReport, Vm};
