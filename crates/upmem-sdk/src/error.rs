//! SDK error type.

use core::fmt;

use simkit::{ErrorKind, HasErrorKind};
use upmem_driver::DriverError;
use upmem_sim::SimError;
use vpim::VpimError;

/// Errors surfaced by the SDK mirror.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SdkError {
    /// Not enough DPUs available in the environment.
    NotEnoughDpus {
        /// DPUs requested.
        requested: usize,
        /// DPUs available.
        available: usize,
    },
    /// A per-DPU buffer vector did not match the set size.
    BufferCountMismatch {
        /// Expected buffers (set size).
        expected: usize,
        /// Provided buffers.
        got: usize,
    },
    /// An out-of-range DPU index within the set.
    BadDpuIndex(usize),
    /// The native driver rejected an operation.
    Driver(DriverError),
    /// The simulated hardware rejected an operation.
    Sim(SimError),
    /// The vPIM stack rejected an operation.
    Vpim(VpimError),
}

impl fmt::Display for SdkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SdkError::NotEnoughDpus { requested, available } => {
                write!(f, "requested {requested} dpus but only {available} are available")
            }
            SdkError::BufferCountMismatch { expected, got } => {
                write!(f, "expected {expected} per-dpu buffers, got {got}")
            }
            SdkError::BadDpuIndex(i) => write!(f, "dpu index {i} is outside the set"),
            SdkError::Driver(e) => write!(f, "driver: {e}"),
            SdkError::Sim(e) => write!(f, "hardware: {e}"),
            SdkError::Vpim(e) => write!(f, "vpim: {e}"),
        }
    }
}

impl std::error::Error for SdkError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            SdkError::Driver(e) => Some(e),
            SdkError::Sim(e) => Some(e),
            SdkError::Vpim(e) => Some(e),
            _ => None,
        }
    }
}

impl From<DriverError> for SdkError {
    fn from(e: DriverError) -> Self {
        SdkError::Driver(e)
    }
}

impl From<SimError> for SdkError {
    fn from(e: SimError) -> Self {
        SdkError::Sim(e)
    }
}

impl From<VpimError> for SdkError {
    fn from(e: VpimError) -> Self {
        SdkError::Vpim(e)
    }
}

impl HasErrorKind for SdkError {
    fn kind(&self) -> ErrorKind {
        match self {
            SdkError::NotEnoughDpus { .. } => ErrorKind::ResourceExhausted,
            SdkError::BufferCountMismatch { .. } | SdkError::BadDpuIndex(_) => {
                ErrorKind::InvalidInput
            }
            SdkError::Driver(e) => e.kind(),
            SdkError::Sim(e) => e.kind(),
            SdkError::Vpim(e) => e.kind(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_conversions() {
        let e = SdkError::NotEnoughDpus { requested: 100, available: 8 };
        assert!(e.to_string().contains("100"));
        let e: SdkError = SimError::InvalidDpu(3).into();
        assert!(matches!(e, SdkError::Sim(_)));
        let e: SdkError = VpimError::NoRankAvailable.into();
        assert!(matches!(e, SdkError::Vpim(_)));
    }

    #[test]
    fn kind_survives_nested_conversions() {
        let e: SdkError = SimError::MramOutOfBounds { offset: 8, len: 8, capacity: 4 }.into();
        assert_eq!(e.kind(), ErrorKind::OutOfBounds);
        let e: SdkError = VpimError::NoRankAvailable.into();
        assert_eq!(e.kind(), ErrorKind::ResourceExhausted);
        let e = SdkError::NotEnoughDpus { requested: 100, available: 8 };
        assert_eq!(e.kind(), ErrorKind::ResourceExhausted);
        let e = SdkError::BadDpuIndex(7);
        assert_eq!(e.kind(), ErrorKind::InvalidInput);
    }

    #[test]
    fn is_send_sync() {
        fn f<T: Send + Sync>() {}
        f::<SdkError>();
    }
}
