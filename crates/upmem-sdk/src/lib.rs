//! # upmem-sdk — the host-side UPMEM SDK mirror
//!
//! PrIM applications and the UPMEM demos are written against the UPMEM SDK
//! (`dpu_alloc`, `dpu_load`, `dpu_push_xfer`, `dpu_launch`,
//! `dpu_copy_to/from`, …). This crate mirrors that API in Rust so that the
//! *same application code* runs in two environments, exactly as vPIM's R3
//! transparency requirement demands:
//!
//! * **natively** — the SDK opens ranks in performance mode through the
//!   host driver and talks to the hardware directly (the paper's baseline);
//! * **virtualized** — the SDK runs "inside a VM" and every operation goes
//!   through the vPIM frontend, the virtqueue, Firecracker's backend and
//!   back.
//!
//! The choice is a single constructor argument ([`DpuSet::alloc_native`]
//! vs [`DpuSet::alloc_vm`]); nothing else in the application changes.
//!
//! Every operation charges a [`simkit::Timeline`] owned by the set, in the
//! paper's two breakdowns. Applications switch the active segment with
//! [`DpuSet::set_segment`] around their phases, matching how PrIM
//! instruments CPU-DPU / DPU / Inter-DPU / DPU-CPU.
//!
//! ## Example
//!
//! ```
//! use std::sync::Arc;
//! use upmem_sdk::DpuSet;
//! use upmem_driver::UpmemDriver;
//! use upmem_sim::{PimConfig, PimMachine};
//! use simkit::CostModel;
//!
//! let machine = PimMachine::new(PimConfig::small());
//! let driver = Arc::new(UpmemDriver::new(machine));
//! let mut set = DpuSet::alloc_native(&driver, 4, CostModel::default())?;
//! set.copy_to_heap(0, 0, &[1, 2, 3, 4])?;
//! let back = set.copy_from_heap(0, 0, 4)?;
//! assert_eq!(back, vec![1, 2, 3, 4]);
//! # Ok::<(), upmem_sdk::SdkError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod error;
pub mod set;

pub use channel::{PendingMatrixRead, PendingMatrixWrite, RankChannel, Transfer};
pub use error::SdkError;
pub use set::DpuSet;
