//! Per-rank transport channels: native performance mode vs vPIM frontend.

use std::sync::Arc;

use simkit::{CostModel, VirtualNanos};
use upmem_driver::PerfMapping;
use simkit::cost::DataPath;
use upmem_sim::ci::CiStatus;
use vpim::frontend::{Frontend, InFlightRead, InFlightWrite};
use vpim::OpReport;

use crate::error::SdkError;

/// One rank's transport: either the mmap'ed hardware (native) or a vUPMEM
/// frontend (virtualized). Both expose the same operations; PrIM code never
/// sees the difference (requirement R3).
pub enum RankChannel {
    /// Direct performance-mode access (the paper's baseline).
    Native(PerfMapping),
    /// Through the vPIM frontend inside a VM.
    Virt(Arc<Frontend>),
}

impl std::fmt::Debug for RankChannel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RankChannel::Native(p) => write!(f, "RankChannel::Native(rank {})", p.rank_id()),
            RankChannel::Virt(_) => write!(f, "RankChannel::Virt"),
        }
    }
}

/// One write-side transfer through a [`RankChannel`], in all the shapes
/// the UPMEM SDK surface produces. [`RankChannel::transfer`] is the single
/// entry point; the named methods (`write_matrix`, `write_serial`,
/// `write_symbol`, `scatter_symbol`) are thin wrappers over it.
#[derive(Debug, Clone, Copy)]
pub enum Transfer<'a> {
    /// Parallel `write-to-rank` of per-DPU buffers: `(dpu, offset, data)`.
    Matrix(&'a [(u32, u64, &'a [u8])]),
    /// Serial single-DPU write (`dpu_copy_to`).
    Serial {
        /// Target DPU index within the rank.
        dpu: u32,
        /// MRAM byte offset.
        offset: u64,
        /// Bytes to write.
        data: &'a [u8],
    },
    /// Host-symbol write on one DPU.
    Symbol {
        /// Target DPU index within the rank.
        dpu: u32,
        /// Symbol name in the loaded program.
        name: &'a str,
        /// Raw little-endian value bytes.
        bytes: &'a [u8],
    },
    /// A `u32` symbol scattered over many DPUs: `(dpu, value)` pairs.
    Scatter {
        /// Symbol name in the loaded program.
        name: &'a str,
        /// Per-DPU values.
        entries: &'a [(u32, u32)],
    },
}

/// A matrix write started with [`RankChannel::begin_write_matrix`].
/// Native channels complete synchronously (the mmap'ed copy happens during
/// begin); virtualized channels are genuinely in flight, so beginning the
/// next rank's write before finishing this one overlaps the two transfers.
#[derive(Debug)]
pub enum PendingMatrixWrite {
    /// Already complete; carries the final report.
    Done(OpReport),
    /// Awaiting a vUPMEM device completion.
    Virt(InFlightWrite),
}

/// A matrix read started with [`RankChannel::begin_read_matrix`].
#[derive(Debug)]
pub enum PendingMatrixRead {
    /// Already complete; carries the outputs and the final report.
    Done(Vec<Vec<u8>>, OpReport),
    /// Awaiting a vUPMEM device completion.
    Virt(InFlightRead),
}

impl RankChannel {
    /// Functional DPUs behind this channel.
    #[must_use]
    pub fn dpu_count(&self) -> usize {
        match self {
            RankChannel::Native(p) => p.dpu_count(),
            RankChannel::Virt(f) => f.nr_dpus() as usize,
        }
    }

    /// MRAM bytes per DPU.
    #[must_use]
    pub fn mram_size(&self) -> u64 {
        match self {
            RankChannel::Native(p) => p.rank().mram_size(),
            RankChannel::Virt(f) => f.mram_size(),
        }
    }

    /// Loads a program image by name on the given DPUs.
    ///
    /// # Errors
    ///
    /// Unknown kernel or IRAM overflow.
    pub fn load(&self, name: &str, dpus: &[u32], cm: &CostModel) -> Result<OpReport, SdkError> {
        match self {
            RankChannel::Native(p) => {
                let list: Vec<usize> = dpus.iter().map(|d| *d as usize).collect();
                p.load_by_name(if list.is_empty() { None } else { Some(&list) }, name)?;
                Ok(OpReport::of(cm.ci_op().saturating_mul(self.dpu_count() as u64)))
            }
            RankChannel::Virt(f) => Ok(f.load_program(name, dpus)?),
        }
    }

    /// The single write-side entry point: performs any [`Transfer`] shape
    /// on this channel and returns its cost report.
    ///
    /// # Errors
    ///
    /// Hardware bounds errors, unknown symbols, or transport failures.
    pub fn transfer(&self, t: Transfer<'_>, cm: &CostModel) -> Result<OpReport, SdkError> {
        match (self, t) {
            (RankChannel::Native(p), Transfer::Matrix(entries)) => {
                let native: Vec<(usize, u64, &[u8])> =
                    entries.iter().map(|(d, o, b)| (*d as usize, *o, *b)).collect();
                let cost = p.write_matrix(&native)?;
                let ddr = cost.duration(cm);
                let mut r =
                    OpReport::of(cm.interleave(cost.bytes, DataPath::Vectorized) + ddr);
                r.set_ddr(ddr);
                r.add_rank_ops(1);
                Ok(r)
            }
            (RankChannel::Virt(f), Transfer::Matrix(entries)) => Ok(f.write_rank(entries)?),
            (RankChannel::Native(p), Transfer::Serial { dpu, offset, data }) => {
                let cost = p.write_dpu(dpu as usize, offset, data)?;
                let ddr = cost.duration(cm);
                let mut r =
                    OpReport::of(cm.interleave(cost.bytes, DataPath::Vectorized) + ddr);
                r.set_ddr(ddr);
                r.add_rank_ops(1);
                Ok(r)
            }
            (RankChannel::Virt(f), Transfer::Serial { dpu, offset, data }) => {
                Ok(f.write_rank(&[(dpu, offset, data)])?)
            }
            (RankChannel::Native(p), Transfer::Symbol { dpu, name, bytes }) => {
                p.write_symbol(dpu as usize, name, bytes)?;
                Ok(OpReport::of(cm.ci_op()))
            }
            (RankChannel::Virt(f), Transfer::Symbol { dpu, name, bytes }) => {
                Ok(f.write_symbol(dpu, name, bytes)?)
            }
            (RankChannel::Native(p), Transfer::Scatter { name, entries }) => {
                for (dpu, v) in entries {
                    p.write_symbol(*dpu as usize, name, &v.to_le_bytes())?;
                }
                Ok(OpReport::of(cm.ci_op().saturating_mul(entries.len() as u64)))
            }
            (RankChannel::Virt(f), Transfer::Scatter { name, entries }) => {
                Ok(f.scatter_symbol(name, entries)?)
            }
        }
    }

    /// Parallel `write-to-rank` of per-DPU buffers.
    ///
    /// # Errors
    ///
    /// Hardware bounds errors or transport failures.
    pub fn write_matrix(
        &self,
        entries: &[(u32, u64, &[u8])],
        cm: &CostModel,
    ) -> Result<OpReport, SdkError> {
        self.transfer(Transfer::Matrix(entries), cm)
    }

    /// Parallel `read-from-rank` of per-DPU ranges.
    ///
    /// # Errors
    ///
    /// Hardware bounds errors or transport failures.
    pub fn read_matrix(
        &self,
        reqs: &[(u32, u64, u64)],
        cm: &CostModel,
    ) -> Result<(Vec<Vec<u8>>, OpReport), SdkError> {
        match self {
            RankChannel::Native(p) => {
                let mut outs: Vec<Vec<u8>> =
                    reqs.iter().map(|(_, _, len)| vec![0u8; *len as usize]).collect();
                let mut total = 0u64;
                {
                    let mut views: Vec<(usize, u64, &mut [u8])> = reqs
                        .iter()
                        .zip(outs.iter_mut())
                        .map(|((d, o, _), buf)| (*d as usize, *o, buf.as_mut_slice()))
                        .collect();
                    let cost = p.read_matrix(&mut views)?;
                    total += cost.bytes;
                }
                let ddr = cm.rank_transfer_parallel(total);
                let mut r = OpReport::of(cm.interleave(total, DataPath::Vectorized) + ddr);
                r.set_ddr(ddr);
                r.add_rank_ops(1);
                Ok((outs, r))
            }
            RankChannel::Virt(f) => Ok(f.read_rank(reqs)?),
        }
    }

    /// Starts a parallel `write-to-rank` without waiting for completion.
    /// Begin the write on every channel of a multi-rank set first, then
    /// [`finish_write_matrix`](Self::finish_write_matrix) each one: under
    /// parallel dispatch the per-rank transfers overlap in wall-clock time,
    /// while every virtual-time figure matches the serial
    /// [`write_matrix`](Self::write_matrix) path exactly.
    ///
    /// # Errors
    ///
    /// Hardware bounds errors or transport failures.
    pub fn begin_write_matrix(
        &self,
        entries: &[(u32, u64, &[u8])],
        cm: &CostModel,
    ) -> Result<PendingMatrixWrite, SdkError> {
        match self {
            RankChannel::Native(_) => {
                Ok(PendingMatrixWrite::Done(self.write_matrix(entries, cm)?))
            }
            RankChannel::Virt(f) => Ok(PendingMatrixWrite::Virt(f.begin_write_rank(entries)?)),
        }
    }

    /// Completes a write started by
    /// [`begin_write_matrix`](Self::begin_write_matrix) on this channel.
    ///
    /// # Errors
    ///
    /// Hardware bounds errors or transport failures.
    pub fn finish_write_matrix(
        &self,
        pending: PendingMatrixWrite,
    ) -> Result<OpReport, SdkError> {
        match pending {
            PendingMatrixWrite::Done(report) => Ok(report),
            PendingMatrixWrite::Virt(inflight) => match self {
                RankChannel::Virt(f) => Ok(f.finish_write_rank(inflight)?),
                RankChannel::Native(_) => {
                    unreachable!("pending write finished on a different channel")
                }
            },
        }
    }

    /// Starts a parallel `read-from-rank` without waiting for completion;
    /// pair with [`finish_read_matrix`](Self::finish_read_matrix).
    ///
    /// # Errors
    ///
    /// Hardware bounds errors or transport failures.
    pub fn begin_read_matrix(
        &self,
        reqs: &[(u32, u64, u64)],
        cm: &CostModel,
    ) -> Result<PendingMatrixRead, SdkError> {
        match self {
            RankChannel::Native(_) => {
                let (outs, report) = self.read_matrix(reqs, cm)?;
                Ok(PendingMatrixRead::Done(outs, report))
            }
            RankChannel::Virt(f) => Ok(PendingMatrixRead::Virt(f.begin_read_rank(reqs)?)),
        }
    }

    /// Completes a read started by
    /// [`begin_read_matrix`](Self::begin_read_matrix) on this channel.
    ///
    /// # Errors
    ///
    /// Hardware bounds errors or transport failures.
    pub fn finish_read_matrix(
        &self,
        pending: PendingMatrixRead,
    ) -> Result<(Vec<Vec<u8>>, OpReport), SdkError> {
        match pending {
            PendingMatrixRead::Done(outs, report) => Ok((outs, report)),
            PendingMatrixRead::Virt(inflight) => match self {
                RankChannel::Virt(f) => Ok(f.finish_read_rank(inflight)?),
                RankChannel::Native(_) => {
                    unreachable!("pending read finished on a different channel")
                }
            },
        }
    }

    /// Serial single-DPU write (`dpu_copy_to`).
    ///
    /// # Errors
    ///
    /// Hardware bounds errors or transport failures.
    pub fn write_serial(
        &self,
        dpu: u32,
        offset: u64,
        data: &[u8],
        cm: &CostModel,
    ) -> Result<OpReport, SdkError> {
        self.transfer(Transfer::Serial { dpu, offset, data }, cm)
    }

    /// Serial single-DPU read (`dpu_copy_from`).
    ///
    /// # Errors
    ///
    /// Hardware bounds errors or transport failures.
    pub fn read_serial(
        &self,
        dpu: u32,
        offset: u64,
        len: u64,
        cm: &CostModel,
    ) -> Result<(Vec<u8>, OpReport), SdkError> {
        match self {
            RankChannel::Native(p) => {
                let mut buf = vec![0u8; len as usize];
                let cost = p.read_dpu(dpu as usize, offset, &mut buf)?;
                let ddr = cost.duration(cm);
                let mut r =
                    OpReport::of(cm.interleave(cost.bytes, DataPath::Vectorized) + ddr);
                r.set_ddr(ddr);
                r.add_rank_ops(1);
                Ok((buf, r))
            }
            RankChannel::Virt(f) => {
                let (mut outs, r) = f.read_rank(&[(dpu, offset, len)])?;
                Ok((outs.pop().expect("one range requested"), r))
            }
        }
    }

    /// Writes a host symbol on one DPU.
    ///
    /// # Errors
    ///
    /// Unknown symbol or size mismatch.
    pub fn write_symbol(
        &self,
        dpu: u32,
        name: &str,
        bytes: &[u8],
        cm: &CostModel,
    ) -> Result<OpReport, SdkError> {
        self.transfer(Transfer::Symbol { dpu, name, bytes }, cm)
    }

    /// Writes a `u32` symbol on many DPUs (one request in virtualized
    /// mode; a CI op per DPU natively).
    ///
    /// # Errors
    ///
    /// Unknown symbol or size mismatch.
    pub fn scatter_symbol(
        &self,
        name: &str,
        entries: &[(u32, u32)],
        cm: &CostModel,
    ) -> Result<OpReport, SdkError> {
        self.transfer(Transfer::Scatter { name, entries }, cm)
    }

    /// Reads a host symbol from one DPU.
    ///
    /// # Errors
    ///
    /// Unknown symbol or size mismatch.
    pub fn read_symbol(
        &self,
        dpu: u32,
        name: &str,
        len: usize,
        cm: &CostModel,
    ) -> Result<(Vec<u8>, OpReport), SdkError> {
        match self {
            RankChannel::Native(p) => {
                let mut bytes = vec![0u8; len];
                p.read_symbol(dpu as usize, name, &mut bytes)?;
                Ok((bytes, OpReport::of(cm.ci_op())))
            }
            RankChannel::Virt(f) => Ok(f.read_symbol(dpu, name, len)?),
        }
    }

    /// Boots the loaded program on the given DPUs; returns the slowest
    /// DPU's cycles plus the boot-side report (execution time itself is the
    /// caller's to charge).
    ///
    /// # Errors
    ///
    /// DPU faults or transport failures.
    pub fn launch(
        &self,
        dpus: &[u32],
        nr_tasklets: u32,
        cm: &CostModel,
    ) -> Result<(u64, OpReport), SdkError> {
        match self {
            RankChannel::Native(p) => {
                let list: Vec<usize> = dpus.iter().map(|d| *d as usize).collect();
                let reports =
                    p.launch(if list.is_empty() { None } else { Some(&list) }, nr_tasklets as usize)?;
                let cycles = reports.iter().map(|(_, r)| r.cycles).max().unwrap_or(0);
                let boots = if dpus.is_empty() { self.dpu_count() } else { dpus.len() };
                Ok((cycles, OpReport::of(cm.ci_op().saturating_mul(boots as u64))))
            }
            RankChannel::Virt(f) => {
                let report = f.launch(dpus, nr_tasklets)?;
                Ok((report.launch_cycles(), report))
            }
        }
    }

    /// Polls one DPU's status.
    ///
    /// # Errors
    ///
    /// Invalid DPU index or transport failures.
    pub fn poll(&self, dpu: u32, cm: &CostModel) -> Result<(CiStatus, OpReport), SdkError> {
        match self {
            RankChannel::Native(p) => {
                let s = p.poll_status(dpu as usize)?;
                Ok((s, OpReport::of(cm.ci_op())))
            }
            RankChannel::Virt(f) => Ok(f.poll_status(dpu)?),
        }
    }

    /// The cost of the SDK's synchronous-launch polling loop for a run of
    /// `exec_time`: `(messages, overhead)`. One real poll is issued by the
    /// caller; the rest are charged analytically and recorded in the CI
    /// counters where reachable. Native polls cross no VM boundary, so
    /// their message count is zero.
    #[must_use]
    pub fn sync_poll_cost(&self, exec_time: VirtualNanos, cm: &CostModel) -> (u64, VirtualNanos) {
        match self {
            RankChannel::Native(p) => {
                let polls = cm.launch_polls(exec_time);
                let extra = polls.saturating_sub(1);
                p.rank().record_polls(extra);
                (0, cm.ci_op().saturating_mul(extra))
            }
            RankChannel::Virt(f) => f.sync_poll_cost(exec_time),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use upmem_driver::UpmemDriver;
    use upmem_sim::{PimConfig, PimMachine};

    fn native_channel() -> RankChannel {
        let driver = UpmemDriver::new(PimMachine::new(PimConfig::small()));
        RankChannel::Native(driver.open_perf(0, "chan-test").unwrap())
    }

    #[test]
    fn transfer_serial_roundtrips_through_mram() {
        let ch = native_channel();
        let cm = CostModel::default();
        let data = [7u8; 64];
        let r = ch
            .transfer(Transfer::Serial { dpu: 0, offset: 4096, data: &data }, &cm)
            .unwrap();
        assert!(r.duration() > VirtualNanos::ZERO);
        let (back, _) = ch.read_serial(0, 4096, 64, &cm).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn wrappers_match_transfer_costs() {
        let ch = native_channel();
        let cm = CostModel::default();
        let bufs = [5u8; 128];
        let entries: Vec<(u32, u64, &[u8])> =
            (0..4u32).map(|d| (d, 0u64, &bufs[..])).collect();
        let via_enum = ch.transfer(Transfer::Matrix(&entries), &cm).unwrap();
        let via_wrapper = ch.write_matrix(&entries, &cm).unwrap();
        assert_eq!(via_enum.duration(), via_wrapper.duration());
        assert_eq!(via_enum.rank_ops(), via_wrapper.rank_ops());
    }
}
