//! The DPU set: the SDK's central object (`struct dpu_set_t`).

use std::sync::Arc;

use simkit::{
    AppSegment, CostModel, DriverSegment, Timeline, VirtualNanos,
};
use upmem_driver::UpmemDriver;
use upmem_sim::ci::CiStatus;
use vpim::frontend::Frontend;
use vpim::OpReport;

use crate::channel::{PendingMatrixRead, PendingMatrixWrite, RankChannel};
use crate::error::SdkError;

/// True when a channel error means "the VM's bounded transport resources
/// (bounce pages, virtqueue slots) are exhausted by in-flight operations
/// on *other* channels" — finishing those and retrying is the correct
/// response. Intra-channel pressure is already handled inside the
/// frontend's begin path.
fn is_backpressure(e: &SdkError) -> bool {
    matches!(e, SdkError::Vpim(v) if v.is_backpressure())
}

/// A set of allocated DPUs spanning one or more ranks.
///
/// Mirrors the UPMEM SDK workflow: allocate, load a program, distribute
/// input (`push_to_heap` = parallel `dpu_push_xfer`, `copy_to_heap` =
/// serial `dpu_copy_to`), launch, retrieve results, drop (free).
///
/// The set owns a [`Timeline`] charged by every operation; applications
/// bracket their phases with [`set_segment`](DpuSet::set_segment) to get
/// the paper's CPU-DPU / DPU / Inter-DPU / DPU-CPU breakdown.
#[derive(Debug)]
pub struct DpuSet {
    channels: Vec<RankChannel>,
    /// DPUs used within each channel.
    per_channel: Vec<Vec<u32>>,
    /// Global DPU index → (channel, dpu-in-rank).
    members: Vec<(usize, u32)>,
    cm: CostModel,
    timeline: Timeline,
    segment: AppSegment,
    /// Whether multi-rank operations overlap (native threads / vPIM's
    /// parallel handling) or serialize (vPIM-Seq).
    parallel_ranks: bool,
    /// Per-rank completion offsets of the most recent multi-rank operation
    /// (Fig. 16).
    last_per_rank: Vec<(usize, VirtualNanos)>,
}

impl DpuSet {
    /// Allocates `nr_dpus` DPUs natively (performance mode, the paper's
    /// baseline). Ranks are claimed through the driver; native rank
    /// operations overlap across ranks (the SDK uses per-rank threads).
    ///
    /// # Errors
    ///
    /// [`SdkError::NotEnoughDpus`] when the machine cannot satisfy the
    /// request; driver claim conflicts.
    pub fn alloc_native(
        driver: &Arc<UpmemDriver>,
        nr_dpus: usize,
        cm: CostModel,
    ) -> Result<DpuSet, SdkError> {
        let mut channels = Vec::new();
        let mut remaining = nr_dpus;
        for rank in 0..driver.rank_count() {
            if remaining == 0 {
                break;
            }
            match driver.open_perf(rank, "sdk-native") {
                Ok(p) => {
                    let take = remaining.min(p.dpu_count());
                    remaining -= take;
                    channels.push((RankChannel::Native(p), take));
                }
                Err(upmem_driver::DriverError::RankInUse { .. }) => continue,
                Err(e) => return Err(e.into()),
            }
        }
        if remaining > 0 {
            return Err(SdkError::NotEnoughDpus {
                requested: nr_dpus,
                available: nr_dpus - remaining,
            });
        }
        Ok(Self::assemble(channels, cm, true))
    }

    /// Allocates `nr_dpus` DPUs inside a VM, one vUPMEM frontend per rank.
    /// Rank-overlap behaviour follows the vPIM configuration
    /// (`parallel_handling`).
    ///
    /// On an oversubscribed host (`sched.oversubscription`) the physical
    /// rank behind a device may be lent to another tenant between this
    /// call and later operations. That is transparent here: each
    /// operation relinks through the scheduler at its next safe point and
    /// the rank's contents are restored bit-identically from the parked
    /// checkpoint, so SDK code is written exactly as on a dedicated host —
    /// operations may just block while the tenant waits in the admission
    /// queue.
    ///
    /// # Errors
    ///
    /// [`SdkError::NotEnoughDpus`] when the VM's devices cannot cover the
    /// request.
    pub fn alloc_vm(
        frontends: &[Arc<Frontend>],
        nr_dpus: usize,
        cm: CostModel,
    ) -> Result<DpuSet, SdkError> {
        let mut channels = Vec::new();
        let mut remaining = nr_dpus;
        let mut parallel = true;
        for f in frontends {
            if remaining == 0 {
                break;
            }
            parallel = f.config().parallel_handling;
            let take = remaining.min(f.nr_dpus() as usize);
            if take == 0 {
                continue;
            }
            remaining -= take;
            channels.push((RankChannel::Virt(f.clone()), take));
        }
        if remaining > 0 {
            return Err(SdkError::NotEnoughDpus {
                requested: nr_dpus,
                available: nr_dpus - remaining,
            });
        }
        Ok(Self::assemble(channels, cm, parallel))
    }

    fn assemble(
        channels: Vec<(RankChannel, usize)>,
        cm: CostModel,
        parallel_ranks: bool,
    ) -> DpuSet {
        let mut per_channel = Vec::with_capacity(channels.len());
        let mut members = Vec::new();
        for (ci, (_, take)) in channels.iter().enumerate() {
            let dpus: Vec<u32> = (0..*take as u32).collect();
            for d in &dpus {
                members.push((ci, *d));
            }
            per_channel.push(dpus);
        }
        DpuSet {
            channels: channels.into_iter().map(|(c, _)| c).collect(),
            per_channel,
            members,
            cm,
            timeline: Timeline::new(),
            segment: AppSegment::CpuToDpu,
            parallel_ranks,
            last_per_rank: Vec::new(),
        }
    }

    /// Number of DPUs in the set.
    #[must_use]
    pub fn nr_dpus(&self) -> usize {
        self.members.len()
    }

    /// Number of ranks the set spans.
    #[must_use]
    pub fn nr_ranks(&self) -> usize {
        self.channels.len()
    }

    /// MRAM bytes per DPU.
    #[must_use]
    pub fn mram_size(&self) -> u64 {
        self.channels.first().map_or(0, RankChannel::mram_size)
    }

    /// The accumulated timeline.
    #[must_use]
    pub fn timeline(&self) -> &Timeline {
        &self.timeline
    }

    /// Takes the timeline, leaving an empty one (per-experiment resets).
    pub fn take_timeline(&mut self) -> Timeline {
        std::mem::take(&mut self.timeline)
    }

    /// Sets the application segment subsequent operations charge into.
    pub fn set_segment(&mut self, segment: AppSegment) {
        self.segment = segment;
    }

    /// Per-rank completion offsets of the most recent multi-rank operation
    /// (Fig. 16's per-rank series).
    #[must_use]
    pub fn last_per_rank(&self) -> &[(usize, VirtualNanos)] {
        &self.last_per_rank
    }

    /// Composes per-channel reports into one: when ranks run in parallel
    /// (native threads / vPIM's parallel handling), the request *handling*
    /// overlaps but the DDR transfers still share one memory controller, so
    /// the composed duration is `max(maxᵢ dᵢ, Σᵢ ddrᵢ)`; sequential
    /// handling is plain back-to-back — Fig. 15/16.
    fn compose(&mut self, reports: Vec<OpReport>) -> OpReport {
        let mut merged = OpReport::default();
        let mut offsets = Vec::with_capacity(reports.len());
        let mut acc = VirtualNanos::ZERO;
        let mut max = VirtualNanos::ZERO;
        let mut ddr_acc = VirtualNanos::ZERO;
        for (i, r) in reports.iter().enumerate() {
            acc += r.duration();
            max = max.max(r.duration());
            ddr_acc += r.ddr();
            // Parallel: rank i completes once its own work is done and the
            // bus has served every transfer queued so far.
            let offset = if self.parallel_ranks { r.duration().max(ddr_acc) } else { acc };
            offsets.push((i, offset));
            merged.add_messages(r.messages());
            merged.add_rank_ops(r.rank_ops());
            for (step, d) in r.steps() {
                merged.step_only(step, d);
            }
            merged.set_launch_cycles(merged.launch_cycles().max(r.launch_cycles()));
        }
        merged.set_ddr(ddr_acc);
        merged.set_duration(if self.parallel_ranks { max.max(ddr_acc) } else { acc });
        if reports.len() > 1 {
            self.last_per_rank = offsets.clone();
        }
        merged.set_per_rank(offsets);
        merged
    }

    fn charge(&mut self, seg: DriverSegment, report: &OpReport) {
        self.timeline.charge_app(self.segment, report.duration());
        self.timeline.charge_driver(seg, report.duration());
        for (step, d) in report.steps() {
            self.timeline.charge_write_step(step, d);
        }
        self.timeline.add_messages(report.messages());
        self.timeline.add_rank_ops(report.rank_ops());
    }

    fn member(&self, dpu: usize) -> Result<(usize, u32), SdkError> {
        self.members.get(dpu).copied().ok_or(SdkError::BadDpuIndex(dpu))
    }

    /// Loads a registered program on every DPU of the set (`dpu_load`).
    ///
    /// # Errors
    ///
    /// Unknown kernel name or IRAM overflow.
    pub fn load(&mut self, program: &str) -> Result<(), SdkError> {
        let mut reports = Vec::with_capacity(self.channels.len());
        for (c, dpus) in self.channels.iter().zip(&self.per_channel) {
            reports.push(c.load(program, dpus, &self.cm)?);
        }
        let merged = self.compose(reports);
        self.charge(DriverSegment::Ci, &merged);
        Ok(())
    }

    /// Parallel transfer of per-DPU buffers into the MRAM heap at `offset`
    /// (`dpu_push_xfer(DPU_XFER_TO_DPU)`). `bufs[i]` goes to DPU `i`;
    /// `bufs.len()` must equal the set size.
    ///
    /// # Errors
    ///
    /// Buffer-count mismatch or hardware/transport failures.
    pub fn push_to_heap(&mut self, offset: u64, bufs: &[Vec<u8>]) -> Result<(), SdkError> {
        if bufs.len() != self.nr_dpus() {
            return Err(SdkError::BufferCountMismatch {
                expected: self.nr_dpus(),
                got: bufs.len(),
            });
        }
        // Begin the write on every rank before finishing any: under
        // parallel dispatch the per-rank transfers genuinely overlap in
        // wall-clock time (§4.2's overlapped multi-rank dpu_push_xfer);
        // under sequential dispatch begin runs the handler inline, so the
        // two modes produce identical reports.
        let mut pendings: Vec<(usize, PendingMatrixWrite)> =
            Vec::with_capacity(self.channels.len());
        let mut reports = Vec::with_capacity(self.channels.len());
        let mut begin_err: Option<SdkError> = None;
        let mut finish_err: Option<SdkError> = None;
        let mut cursor = 0usize;
        for (ci, dpus) in self.per_channel.iter().enumerate() {
            let entries: Vec<(u32, u64, &[u8])> = dpus
                .iter()
                .enumerate()
                .map(|(k, d)| (*d, offset, bufs[cursor + k].as_slice()))
                .collect();
            cursor += dpus.len();
            let mut attempt = self.channels[ci].begin_write_matrix(&entries, &self.cm);
            if matches!(&attempt, Err(e) if is_backpressure(e)) && !pendings.is_empty() {
                // Earlier ranks' in-flight transfers hold the VM-wide
                // bounce pool: reclaim by finishing them (reports stay in
                // channel order), then retry this rank once.
                for (pci, p) in pendings.drain(..) {
                    match self.channels[pci].finish_write_matrix(p) {
                        Ok(r) => reports.push(r),
                        Err(e) => {
                            finish_err.get_or_insert(e);
                        }
                    }
                }
                attempt = self.channels[ci].begin_write_matrix(&entries, &self.cm);
            }
            match attempt {
                Ok(p) => pendings.push((ci, p)),
                Err(e) => {
                    begin_err = Some(e);
                    break;
                }
            }
        }
        // Always finish what was begun (reclaims guest pages and queue
        // slots); report the first error in channel order, as the serial
        // loop would.
        for (ci, p) in pendings {
            match self.channels[ci].finish_write_matrix(p) {
                Ok(r) => reports.push(r),
                Err(e) => {
                    finish_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = finish_err.or(begin_err) {
            return Err(e);
        }
        let merged = self.compose(reports);
        self.charge(DriverSegment::WriteRank, &merged);
        Ok(())
    }

    /// Parallel retrieval of `len` bytes from the MRAM heap at `offset` on
    /// every DPU (`dpu_push_xfer(DPU_XFER_FROM_DPU)`).
    ///
    /// # Errors
    ///
    /// Hardware/transport failures.
    pub fn push_from_heap(&mut self, offset: u64, len: usize) -> Result<Vec<Vec<u8>>, SdkError> {
        // Same begin-all / finish-all split as `push_to_heap`: overlapped
        // retrieval across ranks, identical reports in either mode, and the
        // same finish-and-retry response to bounce-pool exhaustion.
        let mut pendings: Vec<(usize, PendingMatrixRead)> =
            Vec::with_capacity(self.channels.len());
        let mut reports = Vec::with_capacity(self.channels.len());
        let mut outputs = Vec::with_capacity(self.nr_dpus());
        let mut begin_err: Option<SdkError> = None;
        let mut finish_err: Option<SdkError> = None;
        for (ci, dpus) in self.per_channel.iter().enumerate() {
            let reqs: Vec<(u32, u64, u64)> =
                dpus.iter().map(|d| (*d, offset, len as u64)).collect();
            let mut attempt = self.channels[ci].begin_read_matrix(&reqs, &self.cm);
            if matches!(&attempt, Err(e) if is_backpressure(e)) && !pendings.is_empty() {
                for (pci, p) in pendings.drain(..) {
                    match self.channels[pci].finish_read_matrix(p) {
                        Ok((mut outs, r)) => {
                            outputs.append(&mut outs);
                            reports.push(r);
                        }
                        Err(e) => {
                            finish_err.get_or_insert(e);
                        }
                    }
                }
                attempt = self.channels[ci].begin_read_matrix(&reqs, &self.cm);
            }
            match attempt {
                Ok(p) => pendings.push((ci, p)),
                Err(e) => {
                    begin_err = Some(e);
                    break;
                }
            }
        }
        for (ci, p) in pendings {
            match self.channels[ci].finish_read_matrix(p) {
                Ok((mut outs, r)) => {
                    outputs.append(&mut outs);
                    reports.push(r);
                }
                Err(e) => {
                    finish_err.get_or_insert(e);
                }
            }
        }
        if let Some(e) = finish_err.or(begin_err) {
            return Err(e);
        }
        let merged = self.compose(reports);
        self.charge(DriverSegment::ReadRank, &merged);
        Ok(outputs)
    }

    /// Serial write to one DPU's heap (`dpu_copy_to`): the slow path PrIM
    /// uses in SEL/UNI/SpMV/BFS, and the op vPIM's batching absorbs.
    ///
    /// # Errors
    ///
    /// Bad DPU index or hardware/transport failures.
    pub fn copy_to_heap(&mut self, dpu: usize, offset: u64, data: &[u8]) -> Result<(), SdkError> {
        let (ci, d) = self.member(dpu)?;
        let r = self.channels[ci].write_serial(d, offset, data, &self.cm)?;
        self.charge(DriverSegment::WriteRank, &r);
        Ok(())
    }

    /// Serial read from one DPU's heap (`dpu_copy_from`): the op vPIM's
    /// prefetch cache accelerates.
    ///
    /// # Errors
    ///
    /// Bad DPU index or hardware/transport failures.
    pub fn copy_from_heap(
        &mut self,
        dpu: usize,
        offset: u64,
        len: usize,
    ) -> Result<Vec<u8>, SdkError> {
        let (ci, d) = self.member(dpu)?;
        let (data, r) = self.channels[ci].read_serial(d, offset, len as u64, &self.cm)?;
        self.charge(DriverSegment::ReadRank, &r);
        Ok(data)
    }

    /// Writes a `u32` host symbol on one DPU.
    ///
    /// # Errors
    ///
    /// Unknown symbol or bad DPU index.
    pub fn set_symbol_u32(&mut self, dpu: usize, name: &str, v: u32) -> Result<(), SdkError> {
        let (ci, d) = self.member(dpu)?;
        let r = self.channels[ci].write_symbol(d, name, &v.to_le_bytes(), &self.cm)?;
        self.charge(DriverSegment::Ci, &r);
        Ok(())
    }

    /// Reads a `u32` host symbol from one DPU.
    ///
    /// # Errors
    ///
    /// Unknown symbol or bad DPU index.
    pub fn symbol_u32(&mut self, dpu: usize, name: &str) -> Result<u32, SdkError> {
        let (ci, d) = self.member(dpu)?;
        let (bytes, r) = self.channels[ci].read_symbol(d, name, 4, &self.cm)?;
        self.charge(DriverSegment::Ci, &r);
        Ok(u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")))
    }

    /// Writes a `u64` host symbol on one DPU.
    ///
    /// # Errors
    ///
    /// Unknown symbol or bad DPU index.
    pub fn set_symbol_u64(&mut self, dpu: usize, name: &str, v: u64) -> Result<(), SdkError> {
        let (ci, d) = self.member(dpu)?;
        let r = self.channels[ci].write_symbol(d, name, &v.to_le_bytes(), &self.cm)?;
        self.charge(DriverSegment::Ci, &r);
        Ok(())
    }

    /// Reads a `u64` host symbol from one DPU.
    ///
    /// # Errors
    ///
    /// Unknown symbol or bad DPU index.
    pub fn symbol_u64(&mut self, dpu: usize, name: &str) -> Result<u64, SdkError> {
        let (ci, d) = self.member(dpu)?;
        let (bytes, r) = self.channels[ci].read_symbol(d, name, 8, &self.cm)?;
        self.charge(DriverSegment::Ci, &r);
        Ok(u64::from_le_bytes(bytes[..8].try_into().expect("8 bytes")))
    }

    /// Pushes per-DPU `u32` argument values in one parallel operation
    /// (`values[i]` goes to DPU `i`) — PrIM's `dpu_push_xfer` on an
    /// argument symbol, costing one transition per rank under vPIM.
    ///
    /// # Errors
    ///
    /// Count mismatch or unknown symbol.
    pub fn scatter_symbol_u32(&mut self, name: &str, values: &[u32]) -> Result<(), SdkError> {
        if values.len() != self.nr_dpus() {
            return Err(SdkError::BufferCountMismatch {
                expected: self.nr_dpus(),
                got: values.len(),
            });
        }
        let mut reports = Vec::with_capacity(self.channels.len());
        let mut cursor = 0usize;
        for (ci, dpus) in self.per_channel.iter().enumerate() {
            let entries: Vec<(u32, u32)> = dpus
                .iter()
                .enumerate()
                .map(|(k, d)| (*d, values[cursor + k]))
                .collect();
            cursor += dpus.len();
            reports.push(self.channels[ci].scatter_symbol(name, &entries, &self.cm)?);
        }
        let merged = self.compose(reports);
        self.charge(DriverSegment::Ci, &merged);
        Ok(())
    }

    /// Broadcasts a `u32` symbol to every DPU in the set.
    ///
    /// # Errors
    ///
    /// Unknown symbol.
    pub fn broadcast_symbol_u32(&mut self, name: &str, v: u32) -> Result<(), SdkError> {
        let values = vec![v; self.nr_dpus()];
        self.scatter_symbol_u32(name, &values)
    }

    /// Synchronous launch (`dpu_launch(DPU_SYNCHRONOUS)`): boots every DPU,
    /// waits for completion (modeled by the slowest DPU's cycles), and
    /// charges the SDK's status-polling loop.
    ///
    /// # Errors
    ///
    /// DPU faults surface with the faulting program's message.
    pub fn launch(&mut self, nr_tasklets: usize) -> Result<(), SdkError> {
        let all: Vec<usize> = (0..self.nr_dpus()).collect();
        self.launch_on(&all, nr_tasklets)
    }

    /// Synchronous launch restricted to a subset of the set's DPUs (PrIM's
    /// wavefront workloads boot only the active diagonal).
    ///
    /// # Errors
    ///
    /// Bad DPU index, or DPU faults with the faulting program's message.
    pub fn launch_on(&mut self, dpus: &[usize], nr_tasklets: usize) -> Result<(), SdkError> {
        let mut per_channel: Vec<Vec<u32>> = vec![Vec::new(); self.channels.len()];
        for &d in dpus {
            let (ci, local) = self.member(d)?;
            per_channel[ci].push(local);
        }
        let mut boot_reports = Vec::with_capacity(self.channels.len());
        let mut max_cycles = 0u64;
        let mut first_active: Option<(usize, u32)> = None;
        for (ci, (c, dpus)) in self.channels.iter().zip(&per_channel).enumerate() {
            if dpus.is_empty() {
                continue;
            }
            first_active.get_or_insert((ci, dpus[0]));
            let (cycles, r) = c.launch(dpus, nr_tasklets as u32, &self.cm)?;
            max_cycles = max_cycles.max(cycles);
            boot_reports.push(r);
        }
        let Some((poll_ci, poll_dpu)) = first_active else {
            return Ok(()); // nothing to launch
        };
        let mut merged = self.compose(boot_reports);
        let exec = self.cm.dpu_cycles(max_cycles);

        // One real status poll confirms completion…
        let (status, poll_r) = self.channels[poll_ci].poll(poll_dpu, &self.cm)?;
        debug_assert!(matches!(status, CiStatus::Done));
        merged.absorb(&poll_r);
        // …the rest of the polling loop is charged analytically.
        let (extra_polls, poll_cost) = self.channels[poll_ci].sync_poll_cost(exec, &self.cm);
        merged.add_messages(extra_polls);
        merged.add_duration(poll_cost);

        // Driver-centric: only the CI traffic counts (Fig. 12 excludes SDK
        // wait time); application-centric: the whole synchronous launch.
        self.timeline.charge_driver(DriverSegment::Ci, merged.duration());
        self.timeline.charge_app(self.segment, merged.duration() + exec);
        for (step, d) in merged.steps() {
            self.timeline.charge_write_step(step, d);
        }
        self.timeline.add_messages(merged.messages());
        self.timeline.add_rank_ops(merged.rank_ops());
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use upmem_sim::dpu::MRAM_HEAP_BASE;
    use upmem_sim::error::DpuFault;
    use upmem_sim::kernel::{DpuKernel, KernelImage, SymbolDef};
    use upmem_sim::{DpuContext, PimConfig, PimMachine};
    use vpim::{StartOpts, TenantSpec, VpimConfig, VpimSystem};

    /// The paper's Fig. 2 kernel: count zeroes in a partition.
    struct CountZeroes;
    impl DpuKernel for CountZeroes {
        fn image(&self) -> KernelImage {
            KernelImage::new("count_zeroes", 2048)
                .with_symbol(SymbolDef::u32("zero_count"))
                .with_symbol(SymbolDef::u32("partition_size"))
        }
        fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
            let n = ctx.host_u32("partition_size")? as usize;
            let tasklets = ctx.nr_tasklets();
            ctx.parallel(|t| {
                let per = n.div_ceil(tasklets);
                let lo = (t.id() * per).min(n);
                let hi = ((t.id() + 1) * per).min(n);
                if lo >= hi {
                    return Ok(());
                }
                t.wram_alloc((hi - lo) * 4)?;
                let mut buf = vec![0u32; hi - lo];
                t.mram_read_u32s(MRAM_HEAP_BASE + (lo * 4) as u64, &mut buf)?;
                let zeroes = buf.iter().filter(|v| **v == 0).count() as u32;
                t.charge(3 * (hi - lo) as u64);
                t.add_host_u32("zero_count", zeroes)?;
                Ok(())
            })
        }
    }

    fn machine() -> PimMachine {
        let m = PimMachine::new(PimConfig::small());
        m.register_kernel(Arc::new(CountZeroes));
        m
    }

    fn count_zero_program(set: &mut DpuSet, words_per_dpu: usize) -> u32 {
        // Mirrors the paper's Fig. 2 host program end to end.
        set.load("count_zeroes").unwrap();
        set.set_segment(AppSegment::CpuToDpu);
        let n = set.nr_dpus();
        let bufs: Vec<Vec<u8>> = (0..n)
            .map(|d| {
                let mut raw = Vec::new();
                for i in 0..words_per_dpu {
                    let v = if (i + d) % 4 == 0 { 0u32 } else { (i + d) as u32 };
                    raw.extend_from_slice(&v.to_le_bytes());
                }
                raw
            })
            .collect();
        for d in 0..n {
            set.set_symbol_u32(d, "partition_size", words_per_dpu as u32).unwrap();
            set.set_symbol_u32(d, "zero_count", 0).unwrap();
        }
        set.push_to_heap(0, &bufs).unwrap();
        set.set_segment(AppSegment::Dpu);
        set.launch(12).unwrap();
        set.set_segment(AppSegment::DpuToCpu);
        let mut total = 0u32;
        for d in 0..n {
            total += set.symbol_u32(d, "zero_count").unwrap();
        }
        total
    }

    fn expected_zeroes(n_dpus: usize, words: usize) -> u32 {
        let mut total = 0;
        for d in 0..n_dpus {
            for i in 0..words {
                let v = if (i + d) % 4 == 0 { 0u32 } else { (i + d) as u32 };
                if v == 0 {
                    total += 1;
                }
            }
        }
        total
    }

    #[test]
    fn native_count_zeroes_end_to_end() {
        let driver = Arc::new(upmem_driver::UpmemDriver::new(machine()));
        let mut set = DpuSet::alloc_native(&driver, 12, CostModel::default()).unwrap();
        assert_eq!(set.nr_dpus(), 12);
        assert_eq!(set.nr_ranks(), 2);
        let zeroes = count_zero_program(&mut set, 256);
        assert_eq!(zeroes, expected_zeroes(12, 256));
        let tl = set.timeline();
        assert!(tl.app(AppSegment::Dpu) > VirtualNanos::ZERO);
        assert!(tl.app(AppSegment::CpuToDpu) > VirtualNanos::ZERO);
        // Native execution never crosses a VM boundary.
        assert_eq!(tl.messages(), 0);
    }

    #[test]
    fn virtualized_count_zeroes_matches_native_results() {
        let driver = Arc::new(upmem_driver::UpmemDriver::new(machine()));
        let sys = VpimSystem::start(driver, VpimConfig::full(), StartOpts::default());
        let vm = sys.launch(TenantSpec::new("vm-0").devices(2)).unwrap();
        let mut set =
            DpuSet::alloc_vm(vm.frontends(), 12, CostModel::default()).unwrap();
        let zeroes = count_zero_program(&mut set, 256);
        assert_eq!(zeroes, expected_zeroes(12, 256));
        // The virtualized run pays guest↔VMM messages.
        assert!(set.timeline().messages() > 0);
        sys.shutdown();
    }

    #[test]
    fn virtualization_overhead_is_positive_but_bounded() {
        let driver = Arc::new(upmem_driver::UpmemDriver::new(machine()));
        let mut native = DpuSet::alloc_native(&driver, 8, CostModel::default()).unwrap();
        let _ = count_zero_program(&mut native, 2048);
        let native_total = native.timeline().app_total();
        drop(native);

        let sys = VpimSystem::start(driver, VpimConfig::full(), StartOpts::default());
        let vm = sys.launch(TenantSpec::new("vm-0")).unwrap();
        let mut virt = DpuSet::alloc_vm(vm.frontends(), 8, CostModel::default()).unwrap();
        let _ = count_zero_program(&mut virt, 2048);
        let virt_total = virt.timeline().app_total();

        let overhead = virt_total.ratio(native_total);
        assert!(overhead > 1.0, "virtualization cannot be free: {overhead}");
        assert!(overhead < 60.0, "overhead out of the paper's regime: {overhead}");
        sys.shutdown();
    }

    #[test]
    fn serial_copy_roundtrip_and_prefetch_hits() {
        let driver = Arc::new(upmem_driver::UpmemDriver::new(machine()));
        let sys = VpimSystem::start(driver, VpimConfig::full(), StartOpts::default());
        let vm = sys.launch(TenantSpec::new("vm-0")).unwrap();
        let mut set = DpuSet::alloc_vm(vm.frontends(), 4, CostModel::default()).unwrap();
        set.copy_to_heap(2, 64, &[9u8; 512]).unwrap();
        // Many small reads over the same region: first misses, rest hit.
        for i in 0..16 {
            let got = set.copy_from_heap(2, 64 + i * 16, 16).unwrap();
            assert_eq!(got, vec![9u8; 16]);
        }
        let (hits, misses) = vm.frontend(0).prefetch_stats();
        assert!(hits >= 15, "expected cache hits, got {hits} hits / {misses} misses");
        sys.shutdown();
    }

    #[test]
    fn alloc_errors() {
        let driver = Arc::new(upmem_driver::UpmemDriver::new(machine()));
        assert!(matches!(
            DpuSet::alloc_native(&driver, 1000, CostModel::default()),
            Err(SdkError::NotEnoughDpus { .. })
        ));
        let mut set = DpuSet::alloc_native(&driver, 4, CostModel::default()).unwrap();
        assert!(matches!(
            set.copy_to_heap(99, 0, &[0]),
            Err(SdkError::BadDpuIndex(99))
        ));
        assert!(matches!(
            set.push_to_heap(0, &[vec![0u8; 4]]),
            Err(SdkError::BufferCountMismatch { .. })
        ));
    }

    #[test]
    fn dropping_a_native_set_releases_its_ranks() {
        let driver = Arc::new(upmem_driver::UpmemDriver::new(machine()));
        {
            let _set = DpuSet::alloc_native(&driver, 16, CostModel::default()).unwrap();
            assert!(DpuSet::alloc_native(&driver, 1, CostModel::default()).is_err());
        }
        assert!(DpuSet::alloc_native(&driver, 16, CostModel::default()).is_ok());
    }

    #[test]
    fn multi_rank_per_rank_offsets_follow_dispatch_mode() {
        let driver = Arc::new(upmem_driver::UpmemDriver::new(machine()));
        // Sequential variant (vPIM-Seq): completion offsets accumulate.
        let sys = VpimSystem::start(driver.clone(), vpim::VpimConfig::variant_config(vpim::Variant::VpimSeq), StartOpts::default());
        let vm = sys.launch(TenantSpec::new("vm-0").devices(2)).unwrap();
        let mut set = DpuSet::alloc_vm(vm.frontends(), 16, CostModel::default()).unwrap();
        let bufs: Vec<Vec<u8>> = (0..16).map(|_| vec![7u8; 8192]).collect();
        set.push_to_heap(0, &bufs).unwrap();
        let offsets = set.last_per_rank().to_vec();
        assert_eq!(offsets.len(), 2);
        assert!(offsets[1].1 > offsets[0].1, "sequential offsets accumulate");
        sys.shutdown();
    }
}
