# Convenience targets; all of them work offline (deps are vendored, see
# vendor/ and .cargo/config.toml).

.PHONY: tier1 build test figures bench clean

# The repo's tier-1 gate (ROADMAP.md): release build + full test suite,
# then the concurrency stress/determinism and scheduler oversubscription
# suites under varied harness parallelism, the zero-copy data-path
# integrity/leak gate, the fault-injection chaos gate with its seed
# matrix, the sharded-control-plane gate (oracle differential + exact
# end-state churn accounting + the contention bench, refreshes
# BENCH_control_plane.json), the load gate (1k-session service-level
# smoke, bit-identical LoadReport across thread counts, refreshes
# BENCH_load.json), the cluster gate (migration determinism under
# varied harness parallelism plus the 1/2/4-host consolidation bench,
# refreshes BENCH_cluster.json), and the pheap gate (crash-consistency
# suites under varied harness parallelism, the 8-seed chaos sweep, the
# durability bench, refreshes BENCH_pheap.json).
tier1:
	sh ci/offline-gate.sh
	sh ci/stress-gate.sh
	sh ci/sched-gate.sh
	sh ci/perf-gate.sh
	sh ci/chaos-gate.sh
	sh ci/shard-gate.sh
	sh ci/load-gate.sh
	sh ci/cluster-gate.sh
	sh ci/adaptive-gate.sh
	sh ci/pheap-gate.sh

build:
	cargo build --offline --workspace

test:
	cargo test --offline -q

# Regenerate the paper's tables and figures (quick scale).
figures:
	cargo run --release --offline -p vpim-bench --bin figures

bench:
	cargo bench --offline -p vpim-bench

clean:
	cargo clean
