//! The Wikipedia-style index search (§5.3.2) on a vPIM VM: builds a
//! synthetic corpus, shards its inverted index across DPUs, and streams
//! query batches through the virtualized device.
//!
//! ```text
//! cargo run --example index_search
//! ```

use std::sync::Arc;

use microbench::{IndexSearch, IndexSearchParams};
use simkit::CostModel;
use upmem_driver::UpmemDriver;
use upmem_sdk::DpuSet;
use upmem_sim::{PimConfig, PimMachine};
use vpim::prelude::*;

fn main() {
    let machine = PimMachine::new(PimConfig {
        ranks: 2,
        functional_dpus: vec![16, 16],
        mram_size: 8 << 20,
        ..PimConfig::small()
    });
    IndexSearch::register(&machine);
    let driver = Arc::new(UpmemDriver::new(machine));

    let params = IndexSearchParams {
        n_docs: 430,
        doc_len: 128,
        vocab: 1024,
        n_queries: 96,
        batch: 32,
    };
    println!(
        "corpus: {} docs x {} words, vocab {}, {} queries in batches of {}",
        params.n_docs, params.doc_len, params.vocab, params.n_queries, params.batch
    );

    for dpus in [4usize, 16, 32] {
        // Native.
        let (native_hits, native_t) = {
            let mut set =
                DpuSet::alloc_native(&driver, dpus, CostModel::default()).expect("alloc");
            let run = IndexSearch::run(&mut set, &params, 42).expect("search");
            assert!(run.verified);
            (run.total_hits, set.timeline().app_total())
        };
        // vPIM.
        let sys = VpimSystem::start(driver.clone(), VpimConfig::full(), StartOpts::default());
        let vm = sys.launch(TenantSpec::new("search-vm").devices(dpus.div_ceil(16))).expect("vm");
        let mut set = DpuSet::alloc_vm(vm.frontends(), dpus, CostModel::default()).expect("alloc");
        let run = IndexSearch::run(&mut set, &params, 42).expect("search");
        assert!(run.verified && run.total_hits == native_hits);
        let virt_t = set.timeline().app_total();
        println!(
            "{dpus:>3} DPUs: {native_hits:>4} hits | native {native_t} | vPIM {virt_t} | overhead {:.2}x",
            virt_t.ratio(native_t)
        );
        drop(set);
        drop(vm);
        sys.shutdown();
    }
}
