//! Multi-tenancy (§3.5): two VMs and a native host application share four
//! ranks through the manager. Shows rank states transiting
//! NAAV → ALLO → NANA → NAAV, content erasure on release, and coexistence
//! with native applications that never talk to the manager.
//!
//! ```text
//! cargo run --example multi_tenant
//! ```

use std::sync::Arc;
use std::time::{Duration, Instant};

use simkit::CostModel;
use upmem_driver::UpmemDriver;
use upmem_sdk::DpuSet;
use upmem_sim::{PimConfig, PimMachine};
use vpim::manager::RankState;
use vpim::prelude::*;

fn states(sys: &VpimSystem) -> String {
    sys.manager()
        .rank_states()
        .iter()
        .enumerate()
        .map(|(i, s)| format!("rank{i}={s:?}"))
        .collect::<Vec<_>>()
        .join(" ")
}

fn main() {
    let machine = PimMachine::new(PimConfig {
        ranks: 4,
        functional_dpus: vec![8; 4],
        mram_size: 1 << 20,
        ..PimConfig::small()
    });
    let driver = Arc::new(UpmemDriver::new(machine));

    // A native host application grabs rank 0 directly through the driver —
    // no manager involvement (requirement R3: coexistence).
    let native_app = driver.open_perf(0, "native:analytics").expect("native claim");
    native_app.write_dpu(0, 0, b"native tenant data").expect("native write");

    let sys = VpimSystem::start(driver.clone(), VpimConfig::full(), StartOpts::default());
    std::thread::sleep(Duration::from_millis(100)); // observer notices the native claim
    println!("after native app claim:   {}", states(&sys));

    // Two VMs book ranks through the manager.
    let vm_a = sys.launch(TenantSpec::new("tenant-a")).expect("vm a");
    let vm_b = sys.launch(TenantSpec::new("tenant-b").devices(2)).expect("vm b");
    println!("after tenant VMs booked:  {}", states(&sys));

    // Tenant A leaves secrets in its rank, then releases it.
    let mut set = DpuSet::alloc_vm(vm_a.frontends(), 8, CostModel::default()).expect("alloc");
    set.copy_to_heap(0, 0, b"tenant-a secret payload").expect("write");
    drop(set);
    let a_rank = vm_a.devices()[0].backend().linked_rank().expect("linked");
    vm_a.release_all().expect("release");
    drop(vm_a);

    // The manager's observer detects the release (no RPC from the VM!),
    // resets the content, and brings the rank back to NAAV.
    let deadline = Instant::now() + Duration::from_secs(5);
    while sys.manager().rank_states()[a_rank] != RankState::Naav {
        assert!(Instant::now() < deadline, "rank was never recycled");
        std::thread::sleep(Duration::from_millis(20));
    }
    println!("after tenant A released:  {}", states(&sys));

    // The next tenant cannot see tenant A's data.
    let vm_c = sys.launch(TenantSpec::new("tenant-c")).expect("vm c");
    let mut set = DpuSet::alloc_vm(vm_c.frontends(), 8, CostModel::default()).expect("alloc");
    let back = set.copy_from_heap(0, 0, 23).expect("read");
    assert_eq!(back, vec![0u8; 23], "rank content must be erased between tenants");
    println!("tenant C reads zeroes where tenant A's secret was: isolation holds");

    let stats = sys.manager().stats();
    println!(
        "manager: {} allocations ({} reused), {} resets ({} virtual), {} abandoned",
        stats.allocations, stats.reuses, stats.resets, stats.reset_virtual, stats.abandoned
    );

    drop(set);
    drop(vm_c);
    drop(vm_b);
    drop(native_app);
    sys.shutdown();
}
