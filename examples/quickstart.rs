//! Quickstart: the paper's Fig. 2 example — count the zeroes in an array —
//! written once and run on both transports.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use simkit::{AppSegment, CostModel};
use upmem_driver::UpmemDriver;
use upmem_sdk::DpuSet;
use upmem_sim::dpu::MRAM_HEAP_BASE;
use upmem_sim::error::DpuFault;
use upmem_sim::kernel::{DpuKernel, KernelImage, SymbolDef};
use upmem_sim::{DpuContext, PimConfig, PimMachine};
use vpim::prelude::*;

/// The DPU-side program of Fig. 2(b): each tasklet scans its slice of the
/// partition and accumulates into the `zero_count` host variable.
struct CountZeroes;

impl DpuKernel for CountZeroes {
    fn image(&self) -> KernelImage {
        KernelImage::new("count_zeroes", 2 << 10)
            .with_symbol(SymbolDef::u32("zero_count"))
            .with_symbol(SymbolDef::u32("partition_size"))
    }

    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
        let n = ctx.host_u32("partition_size")? as usize;
        let tasklets = ctx.nr_tasklets();
        ctx.parallel(|t| {
            let per = n.div_ceil(tasklets);
            let lo = (t.id() * per).min(n);
            let hi = ((t.id() + 1) * per).min(n);
            if lo >= hi {
                return Ok(());
            }
            t.wram_alloc((hi - lo) * 4)?;
            let mut buf = vec![0u32; hi - lo];
            t.mram_read_u32s(MRAM_HEAP_BASE + (lo * 4) as u64, &mut buf)?;
            let zeroes = buf.iter().filter(|v| **v == 0).count() as u32;
            t.charge(3 * (hi - lo) as u64);
            t.add_host_u32("zero_count", zeroes)?;
            Ok(())
        })
    }
}

/// The host-side program of Fig. 2(a), against the SDK mirror.
fn count_zero(set: &mut DpuSet, array: &[u32]) -> u32 {
    let nr_dpus = set.nr_dpus();
    let each = array.len() / nr_dpus;
    set.load("count_zeroes").expect("load DPU program");

    set.set_segment(AppSegment::CpuToDpu);
    let bufs: Vec<Vec<u8>> = (0..nr_dpus)
        .map(|d| {
            array[d * each..(d + 1) * each]
                .iter()
                .flat_map(|v| v.to_le_bytes())
                .collect()
        })
        .collect();
    for d in 0..nr_dpus {
        set.set_symbol_u32(d, "partition_size", each as u32).expect("xfer parameter");
        set.set_symbol_u32(d, "zero_count", 0).expect("reset accumulator");
    }
    set.push_to_heap(0, &bufs).expect("transfer data");

    set.set_segment(AppSegment::Dpu);
    set.launch(16).expect("launch DPU program");

    set.set_segment(AppSegment::DpuToCpu);
    (0..nr_dpus)
        .map(|d| set.symbol_u32(d, "zero_count").expect("copy result to CPU"))
        .sum()
}

fn main() {
    // A host with two small ranks; register the DPU "binary".
    let machine = PimMachine::new(PimConfig::small());
    machine.register_kernel(Arc::new(CountZeroes));
    let driver = Arc::new(UpmemDriver::new(machine));

    // The input: every fourth element is zero.
    let array: Vec<u32> = (0..64 * 1024u32).map(|i| if i % 4 == 0 { 0 } else { i }).collect();
    let expected = array.iter().filter(|v| **v == 0).count() as u32;

    // --- Native execution (performance mode, the paper's baseline).
    let native = {
        let mut set = DpuSet::alloc_native(&driver, 8, CostModel::default()).expect("alloc");
        let zeroes = count_zero(&mut set, &array);
        println!("native: {zeroes} zeroes in {} (expected {expected})", set.timeline().app_total());
        assert_eq!(zeroes, expected);
        set.timeline().app_total()
    };

    // --- The same code inside a vPIM VM.
    let sys = VpimSystem::start(driver, VpimConfig::full(), StartOpts::default());
    let vm = sys.launch(TenantSpec::new("quickstart-vm")).expect("launch VM");
    let mut set = DpuSet::alloc_vm(vm.frontends(), 8, CostModel::default()).expect("alloc");
    let zeroes = count_zero(&mut set, &array);
    let virt = set.timeline().app_total();
    println!(
        "vPIM:   {zeroes} zeroes in {virt} ({} guest<->VMM messages, overhead {:.2}x)",
        set.timeline().messages(),
        virt.ratio(native)
    );
    assert_eq!(zeroes, expected);
    drop(set);
    drop(vm);
    sys.shutdown();
}
