//! The UPMEM checksum demo inside a vPIM microVM, with the paper's
//! application- and driver-centric breakdowns printed side by side
//! (the §5.3.1 workflow at example scale).
//!
//! ```text
//! cargo run --example checksum_vm
//! ```

use std::sync::Arc;

use microbench::Checksum;
use simkit::{AppSegment, CostModel, DriverSegment};
use upmem_driver::UpmemDriver;
use upmem_sdk::DpuSet;
use upmem_sim::{PimConfig, PimMachine};
use vpim::prelude::*;

fn main() {
    let machine = PimMachine::new(PimConfig {
        ranks: 2,
        functional_dpus: vec![16, 16],
        mram_size: 8 << 20,
        ..PimConfig::small()
    });
    Checksum::register(&machine);
    let driver = Arc::new(UpmemDriver::new(machine));

    let file_bytes = 2 << 20; // a 2 MiB "file" per DPU
    let dpus = 16;

    // Native baseline.
    let (native_total, native_value) = {
        let mut set = DpuSet::alloc_native(&driver, dpus, CostModel::default()).expect("alloc");
        let run = Checksum::run(&mut set, file_bytes, 42).expect("checksum");
        assert!(run.verified);
        (set.timeline().app_total(), run.value)
    };
    println!("native checksum: {native_value:#010x} in {native_total}");

    // The same demo, unmodified, inside VMs of three vPIM variants.
    for variant in [Variant::VpimRust, Variant::VpimC, Variant::Vpim] {
        let sys = VpimSystem::start(driver.clone(), VpimConfig::variant_config(variant), StartOpts::default());
        let vm = sys.launch(TenantSpec::new("checksum-vm")).expect("vm");
        let mut set = DpuSet::alloc_vm(vm.frontends(), dpus, CostModel::default()).expect("alloc");
        let run = Checksum::run(&mut set, file_bytes, 42).expect("checksum");
        assert!(run.verified && run.value == native_value);
        let tl = set.take_timeline();
        println!(
            "\n{variant} (overhead {:.2}x, {} messages)",
            tl.app_total().ratio(native_total),
            tl.messages()
        );
        println!(
            "  app-centric:    CPU-DPU {} | DPU {} | Inter-DPU {} | DPU-CPU {}",
            tl.app(AppSegment::CpuToDpu),
            tl.app(AppSegment::Dpu),
            tl.app(AppSegment::InterDpu),
            tl.app(AppSegment::DpuToCpu),
        );
        println!(
            "  driver-centric: CI {} | R-rank {} | W-rank {}",
            tl.driver(DriverSegment::Ci),
            tl.driver(DriverSegment::ReadRank),
            tl.driver(DriverSegment::WriteRank),
        );
        drop(set);
        drop(vm);
        sys.shutdown();
    }
}
