//! The seven Table 2 variants: functional equivalence (every optimization
//! is semantics-preserving) and the performance orderings the paper
//! establishes.

use std::sync::Arc;

use simkit::{CostModel, VirtualNanos};
use upmem_driver::UpmemDriver;
use upmem_sdk::DpuSet;
use upmem_sim::{PimConfig, PimMachine};
use vpim::{Variant, StartOpts, TenantSpec, VpimConfig, VpimSystem};

fn host() -> Arc<UpmemDriver> {
    let machine = PimMachine::new(PimConfig {
        ranks: 8,
        functional_dpus: vec![16; 8],
        mram_size: 2 << 20,
        verify_interleave: true, // really run both data paths
        ..PimConfig::small()
    });
    microbench::Checksum::register(&machine);
    prim::register_all(&machine);
    Arc::new(UpmemDriver::new(machine))
}

fn checksum_under(
    driver: &Arc<UpmemDriver>,
    variant: Variant,
    dpus: usize,
) -> (u32, VirtualNanos, u64) {
    let sys = VpimSystem::start(driver.clone(), VpimConfig::variant_config(variant), StartOpts::default());
    let vm = sys.launch(TenantSpec::new("vt").devices(dpus.div_ceil(16))).unwrap();
    let mut set = DpuSet::alloc_vm(vm.frontends(), dpus, CostModel::default()).unwrap();
    let run = microbench::Checksum::run(&mut set, 256 << 10, 21).unwrap();
    assert!(run.verified, "{variant}: verification failed");
    let tl = set.take_timeline();
    drop(set);
    drop(vm);
    sys.shutdown();
    (run.value, tl.app_total(), tl.messages())
}

#[test]
fn all_variants_compute_identical_results() {
    let driver = host();
    let native_value = {
        let mut set = DpuSet::alloc_native(&driver, 16, CostModel::default()).unwrap();
        let run = microbench::Checksum::run(&mut set, 256 << 10, 21).unwrap();
        assert!(run.verified);
        run.value
    };
    for v in Variant::ALL {
        let (value, _, _) = checksum_under(&driver, v, 16);
        assert_eq!(value, native_value, "{v} changed the result");
    }
}

#[test]
fn c_path_is_never_slower_than_rust_path() {
    let driver = host();
    let (_, rust_t, _) = checksum_under(&driver, Variant::VpimRust, 16);
    let (_, c_t, _) = checksum_under(&driver, Variant::VpimC, 16);
    assert!(c_t < rust_t, "C path {c_t} should beat rust path {rust_t}");
}

#[test]
fn batching_cuts_messages_on_small_write_workloads() {
    // NW is the paper's batching showcase: Fig. 14 reports two orders of
    // magnitude fewer context switches with batching on.
    let driver = host();
    let nw = prim::by_name("NW").unwrap();
    let scale = prim::ScaleParams::of(4096);
    let mut messages = std::collections::HashMap::new();
    for v in [Variant::VpimC, Variant::VpimB] {
        let sys = VpimSystem::start(driver.clone(), VpimConfig::variant_config(v), StartOpts::default());
        let vm = sys.launch(TenantSpec::new("vt")).unwrap();
        let mut set = DpuSet::alloc_vm(vm.frontends(), 16, CostModel::default()).unwrap();
        let run = nw.run(&mut set, &scale, 5).unwrap();
        assert!(run.verified);
        messages.insert(v, set.timeline().messages());
        drop(set);
        drop(vm);
        sys.shutdown();
    }
    let unbatched = messages[&Variant::VpimC];
    let batched = messages[&Variant::VpimB];
    assert!(
        batched * 2 < unbatched,
        "batching should cut messages substantially: {batched} vs {unbatched}"
    );
}

#[test]
fn prefetch_cuts_messages_on_small_read_workloads() {
    let driver = host();
    let mut messages = std::collections::HashMap::new();
    for v in [Variant::VpimC, Variant::VpimP] {
        let sys = VpimSystem::start(driver.clone(), VpimConfig::variant_config(v), StartOpts::default());
        let vm = sys.launch(TenantSpec::new("vt")).unwrap();
        let mut set = DpuSet::alloc_vm(vm.frontends(), 4, CostModel::default()).unwrap();
        set.copy_to_heap(0, 0, &vec![7u8; 32 << 10]).unwrap();
        let before = set.timeline().messages();
        for i in 0..200u64 {
            let _ = set.copy_from_heap(0, (i % 500) * 64, 64).unwrap();
        }
        messages.insert(v, set.timeline().messages() - before);
        drop(set);
        drop(vm);
        sys.shutdown();
    }
    let uncached = messages[&Variant::VpimC];
    let cached = messages[&Variant::VpimP];
    assert!(
        cached * 10 < uncached,
        "prefetch should cut read messages by an order of magnitude: {cached} vs {uncached}"
    );
}

#[test]
fn parallel_handling_helps_multi_rank_only() {
    let driver = host();
    // Single rank: no benefit expected (identical durations).
    let (_, seq1, _) = checksum_under(&driver, Variant::VpimSeq, 16);
    let (_, par1, _) = checksum_under(&driver, Variant::Vpim, 16);
    assert_eq!(seq1, par1, "single-rank parallel handling should be neutral");
    // Four ranks: parallel handling must win.
    let (_, seq4, _) = checksum_under(&driver, Variant::VpimSeq, 64);
    let (_, par4, _) = checksum_under(&driver, Variant::Vpim, 64);
    assert!(par4 < seq4, "multi-rank: {par4} should beat {seq4}");
}

#[test]
fn full_vpim_beats_unoptimized_on_the_nw_worst_case() {
    // Fig. 14's headline: the optimization stack yields a large speedup on
    // NW (10.8x on the testbed).
    let driver = host();
    let nw = prim::by_name("NW").unwrap();
    let scale = prim::ScaleParams::of(4096);
    let mut totals = std::collections::HashMap::new();
    for v in [Variant::VpimC, Variant::VpimPB] {
        let sys = VpimSystem::start(driver.clone(), VpimConfig::variant_config(v), StartOpts::default());
        let vm = sys.launch(TenantSpec::new("vt")).unwrap();
        let mut set = DpuSet::alloc_vm(vm.frontends(), 16, CostModel::default()).unwrap();
        let run = nw.run(&mut set, &scale, 5).unwrap();
        assert!(run.verified);
        totals.insert(v, set.timeline().app_total());
        drop(set);
        drop(vm);
        sys.shutdown();
    }
    let unopt = totals[&Variant::VpimC];
    let opt = totals[&Variant::VpimPB];
    let speedup = unopt.ratio(opt);
    // Batching merges messages but — faithfully to §4.1 — does not reduce
    // the data-writing time itself, so at this tiny test scale the win is
    // bounded by the transition count it removes.
    assert!(speedup > 1.4, "PB should speed NW up substantially, got {speedup:.2}x");
}
