//! End-to-end integration: PrIM applications through the whole stack
//! (SDK → frontend → virtqueue → backend → simulated hardware) on the
//! paper's machine geometry, compared against native execution.

use std::sync::Arc;

use simkit::{AppSegment, CostModel};
use upmem_driver::UpmemDriver;
use upmem_sdk::DpuSet;
use upmem_sim::{PimConfig, PimMachine};
use vpim::{StartOpts, TenantSpec, VpimConfig, VpimSystem};

fn testbed() -> Arc<UpmemDriver> {
    let machine = PimMachine::new(PimConfig {
        ranks: 8,
        functional_dpus: vec![60; 8],
        mram_size: 4 << 20,
        verify_interleave: false,
        ..PimConfig::paper_testbed()
    });
    prim::register_all(&machine);
    microbench::Checksum::register(&machine);
    Arc::new(UpmemDriver::new(machine))
}

#[test]
fn prim_apps_run_unmodified_on_60_dpus_under_vpim() {
    // R3 transparency at the paper's single-rank configuration: same code,
    // both transports, identical results — for a representative app from
    // every behaviour class §5.2 discusses.
    let driver = testbed();
    let scale = prim::ScaleParams::of(60 * 256);
    for name in ["VA", "SEL", "RED", "SCAN-RSS", "HST-S"] {
        let app = prim::by_name(name).expect("catalog");
        let native = {
            let mut set = DpuSet::alloc_native(&driver, 60, CostModel::default()).unwrap();
            app.run(&mut set, &scale, 9).unwrap()
        };
        let sys = VpimSystem::start(driver.clone(), VpimConfig::full(), StartOpts::default());
        let vm = sys.launch(TenantSpec::new("e2e")).unwrap();
        let mut set = DpuSet::alloc_vm(vm.frontends(), 60, CostModel::default()).unwrap();
        let virt = app.run(&mut set, &scale, 9).unwrap();
        assert!(native.verified && virt.verified, "{name} verification");
        assert_eq!(native.checksum, virt.checksum, "{name} transports disagree");
        drop(set);
        drop(vm);
        sys.shutdown();
    }
}

#[test]
fn strong_scaling_moves_time_from_dpu_to_transfer() {
    // Fig. 8's scaling mechanism: with 8× the DPUs, per-DPU compute falls;
    // for parallel-transfer apps total time falls too.
    let driver = testbed();
    let app = prim::by_name("VA").expect("catalog");
    let scale = prim::ScaleParams::of(1 << 16);
    let mut dpu_time = Vec::new();
    for dpus in [60usize, 480] {
        let mut set = DpuSet::alloc_native(&driver, dpus, CostModel::default()).unwrap();
        let run = app.run(&mut set, &scale, 4).unwrap();
        assert!(run.verified);
        dpu_time.push(set.timeline().app(AppSegment::Dpu));
    }
    assert!(
        dpu_time[1] < dpu_time[0],
        "DPU segment should shrink with more DPUs: {dpu_time:?}"
    );
}

#[test]
fn serial_transfer_apps_slow_down_with_more_dpus() {
    // §5.2's second observation: SEL's serial DPU-CPU step grows with the
    // DPU count, so its retrieval segment gets *worse* at 480 DPUs.
    let driver = testbed();
    let app = prim::by_name("SEL").expect("catalog");
    let scale = prim::ScaleParams::of(1 << 15);
    let mut retrieval = Vec::new();
    for dpus in [60usize, 480] {
        let mut set = DpuSet::alloc_native(&driver, dpus, CostModel::default()).unwrap();
        let run = app.run(&mut set, &scale, 4).unwrap();
        assert!(run.verified);
        retrieval.push(set.timeline().app(AppSegment::DpuToCpu));
    }
    assert!(
        retrieval[1] > retrieval[0],
        "serial retrieval should grow with DPUs: {retrieval:?}"
    );
}

#[test]
fn vpim_overhead_within_paper_regime_for_parallel_apps() {
    // §5.2: most apps sit between 1.01x and ~2.9x — for datasets that
    // fill the rank (small datasets are fixed-cost dominated, which is
    // exactly the paper's small-transfer story and tested elsewhere).
    let driver = testbed();
    let scale = prim::ScaleParams::of(1 << 22);
    for name in ["VA", "GEMV", "RED"] {
        let app = prim::by_name(name).expect("catalog");
        let native_t = {
            let mut set = DpuSet::alloc_native(&driver, 60, CostModel::default()).unwrap();
            app.run(&mut set, &scale, 3).unwrap();
            set.timeline().app_total()
        };
        let sys = VpimSystem::start(driver.clone(), VpimConfig::full(), StartOpts::default());
        let vm = sys.launch(TenantSpec::new("e2e")).unwrap();
        let mut set = DpuSet::alloc_vm(vm.frontends(), 60, CostModel::default()).unwrap();
        app.run(&mut set, &scale, 3).unwrap();
        let virt_t = set.timeline().app_total();
        let overhead = virt_t.ratio(native_t);
        assert!(overhead >= 1.0, "{name}: {overhead:.2}");
        assert!(overhead < 3.0, "{name}: overhead {overhead:.2} out of regime");
        drop(set);
        drop(vm);
        sys.shutdown();
    }
}

#[test]
fn checksum_microbenchmark_op_mix_matches_paper() {
    // §5.3.1: one write-to-rank, one read-from-rank per DPU, thousands of
    // CI operations.
    let driver = testbed();
    let sys = VpimSystem::start(driver, VpimConfig::full(), StartOpts::default());
    let vm = sys.launch(TenantSpec::new("ck")).unwrap();
    let mut set = DpuSet::alloc_vm(vm.frontends(), 60, CostModel::default()).unwrap();
    let run = microbench::Checksum::run(&mut set, 1 << 20, 11).unwrap();
    assert!(run.verified);
    let tl = set.timeline();
    // 1 parallel write + 60 reads (prefetch-served after the first miss
    // per DPU, but each DPU's first read still reaches the rank).
    assert!(tl.rank_ops() >= 61, "rank ops {}", tl.rank_ops());
    // CI polls dominate the message count.
    assert!(tl.messages() > 100, "messages {}", tl.messages());
    drop(set);
    drop(vm);
    sys.shutdown();
}
