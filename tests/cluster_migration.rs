//! The fleet plane's contract (ISSUE 8): placement invariants, live
//! migration bit-identity across dispatch modes, rollback on injected
//! mid-migration faults, and exact `cluster.*` / `migrate.*` telemetry.
//!
//! The chaos sweep seed set is fixed (eight seeds, in-loop) so a failure
//! names its seed and reproduces without environment setup.

use std::collections::HashMap;

use proptest::prelude::*;
use simkit::{ErrorKind, FaultPlan, HasErrorKind, VirtualNanos};
use vpim::cluster::{Fleet, FleetSpec, MigrateMode, MigrateOpts, PlacementPolicy};
use vpim::{FaultSite, TenantSpec, VpimConfig, VpimError};

fn payload(dpu: u32, len: usize, salt: u64) -> Vec<u8> {
    (0..len)
        .map(|i| {
            let x = (u64::from(dpu) << 32) ^ (i as u64) ^ salt.wrapping_mul(0x9e37_79b9);
            (x.wrapping_mul(2_654_435_761) >> 16) as u8
        })
        .collect()
}

/// A lean per-host config: no soft-state caches, selectable dispatch.
fn lean_vcfg(parallel: bool) -> VpimConfig {
    VpimConfig::builder().batching(false).prefetch(false).parallel(parallel).build()
}

/// Writes a distinct payload to every DPU of the tenant's device 0.
fn write_state(fleet: &Fleet, tenant: &str, len: usize, salt: u64) -> Vec<Vec<u8>> {
    let datas: Vec<Vec<u8>> = (0..4).map(|d| payload(d, len, salt)).collect();
    fleet
        .with_vm(tenant, |vm| {
            let writes: Vec<(u32, u64, &[u8])> =
                datas.iter().enumerate().map(|(d, v)| (d as u32, 0, v.as_slice())).collect();
            vm.frontend(0).write_rank(&writes).map(|_| ())
        })
        .unwrap();
    datas
}

/// Reads back what [`write_state`] wrote, with the op's virtual cost.
fn read_state(fleet: &Fleet, tenant: &str, len: usize) -> (Vec<Vec<u8>>, VirtualNanos) {
    fleet
        .with_vm(tenant, |vm| {
            let reads: Vec<(u32, u64, u64)> = (0..4).map(|d| (d, 0, len as u64)).collect();
            let (outs, report) = vm.frontend(0).read_rank(&reads)?;
            Ok((outs, report.duration()))
        })
        .unwrap()
}

// ------------------------------------------------------------ bit identity

/// The tentpole contract: a migrated tenant's rank state and op costs are
/// bit-identical to a never-migrated control, in both dispatch modes, and
/// the migration reports themselves agree across modes.
#[test]
fn migration_is_bit_identical_across_dispatch_modes() {
    let seed = 0x5EED_0001u64;
    let mut per_mode = Vec::new();
    for parallel in [false, true] {
        let spec = || {
            FleetSpec::new(2).config(lean_vcfg(parallel)).policy(PlacementPolicy::FirstFit)
        };
        let migrated = Fleet::start(spec());
        let control = Fleet::start(spec());
        for fleet in [&migrated, &control] {
            assert_eq!(fleet.launch(TenantSpec::new("t")).unwrap(), 0);
            write_state(fleet, "t", 8192, seed);
        }

        let report = migrated.migrate("t", 1, MigrateOpts::default()).unwrap();
        assert_eq!((report.from, report.to, report.rounds), (0, 1, 1));
        assert_eq!(report.mode, MigrateMode::StopAndCopy);
        assert_eq!(migrated.host_of("t"), Some(1));
        assert!(report.bytes_shipped >= 4 * 8192, "{report:?}");
        assert_eq!(report.precopy_bytes, 0);
        assert!(report.downtime > VirtualNanos::ZERO);

        // Same bytes, same read cost, on both fleets — then again after a
        // post-migration write (the moved rank is fully writable).
        let (m_out, m_cost) = read_state(&migrated, "t", 8192);
        let (c_out, c_cost) = read_state(&control, "t", 8192);
        assert_eq!(m_out, c_out, "parallel={parallel}: migrated state diverged");
        assert_eq!(m_cost, c_cost, "parallel={parallel}: op cost diverged");
        let m2 = write_state(&migrated, "t", 2048, !seed);
        let c2 = write_state(&control, "t", 2048, !seed);
        assert_eq!(m2, c2);
        let (m_out2, _) = read_state(&migrated, "t", 2048);
        let (c_out2, _) = read_state(&control, "t", 2048);
        assert_eq!(m_out2, c_out2);

        // Exact fleet telemetry.
        let snap = migrated.registry().snapshot();
        assert_eq!(snap.count("cluster.link.bytes"), report.bytes_shipped);
        assert_eq!(snap.count("cluster.link.transfers"), report.ranks_moved as u64);
        assert_eq!(snap.count("migrate.attempts"), 1);
        assert_eq!(snap.count("migrate.completed"), 1);
        assert_eq!(snap.count("migrate.aborted"), 0);
        assert_eq!(snap.count("migrate.bytes"), report.bytes_shipped);
        assert_eq!(snap.level("migrate.inflight.bytes"), 0, "no snapshot left in flight");
        assert_eq!(migrated.registry().histogram("migrate.downtime").count(), 1);

        per_mode.push((m_out, m_cost, m_out2, report));
        migrated.shutdown();
        control.shutdown();
    }
    assert_eq!(per_mode[0], per_mode[1], "dispatch modes must agree bit-for-bit");
}

/// Pre-copy runs two rounds: the warm round ships the full bytes while
/// the tenant is live, the final round re-sends only the dirty bytes —
/// here zero, since nothing runs between rounds — so its downtime is
/// strictly smaller than stop-and-copy's for the same state.
#[test]
fn precopy_ships_warm_bytes_and_shrinks_downtime() {
    let seed = 0x5EED_0002u64;
    let spec = || FleetSpec::new(2).config(lean_vcfg(false)).policy(PlacementPolicy::FirstFit);
    let sac = Fleet::start(spec());
    let pre = Fleet::start(spec());
    for fleet in [&sac, &pre] {
        fleet.launch(TenantSpec::new("t")).unwrap();
        write_state(fleet, "t", 8192, seed);
    }
    let sac_report = sac.migrate("t", 1, MigrateOpts::default()).unwrap();
    let pre_report =
        pre.migrate("t", 1, MigrateOpts::new().mode(MigrateMode::PreCopy)).unwrap();

    assert_eq!(pre_report.rounds, 2);
    assert_eq!(pre_report.mode, MigrateMode::PreCopy);
    assert!(pre_report.precopy_bytes >= 4 * 8192, "{pre_report:?}");
    // The tenant is idle between rounds, so the final diff is empty…
    assert_eq!(pre_report.dirty_bytes, 0, "{pre_report:?}");
    // …which is exactly pre-copy's bargain: more total bytes on the wire,
    // less of the wire inside the freeze window.
    assert!(pre_report.total >= sac_report.total, "warm round is extra work");
    assert!(
        pre_report.downtime < sac_report.downtime,
        "pre-copy downtime {:?} must beat stop-and-copy {:?}",
        pre_report.downtime,
        sac_report.downtime
    );
    // Dirty accounting reaches the fleet registry.
    assert_eq!(pre.registry().snapshot().count("migrate.dirty.bytes"), 0);

    // And the moved state is still the written state.
    let (out, _) = read_state(&pre, "t", 8192);
    let expected: Vec<Vec<u8>> = (0..4).map(|d| payload(d, 8192, seed)).collect();
    assert_eq!(out, expected);
    sac.shutdown();
    pre.shutdown();
}

// ---------------------------------------------------------------- rollback

/// A severed link aborts the migration and rolls everything back: the
/// tenant keeps running on the source with intact state, the destination
/// reservation is returned, nothing is left in flight — and the retry
/// (schedule exhausted) completes normally.
#[test]
fn link_drop_aborts_and_rolls_back_then_retry_succeeds() {
    let vcfg = VpimConfig::builder()
        .batching(false)
        .prefetch(false)
        .inject_seed(0xD20)
        .inject_fault(FaultSite::LinkDrop, FaultPlan::Nth(1))
        .build();
    let fleet =
        Fleet::start(FleetSpec::new(2).config(vcfg).policy(PlacementPolicy::FirstFit));
    fleet.launch(TenantSpec::new("t")).unwrap();
    let datas = write_state(&fleet, "t", 4096, 0xD20);

    let err = fleet.migrate("t", 1, MigrateOpts::default()).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Injected, "{err}");
    assert_eq!(fleet.host_of("t"), Some(0), "tenant must stay homed on the source");
    assert_eq!(fleet.live_ranks(1), 0, "destination reservation must be returned");
    let snap = fleet.registry().snapshot();
    assert_eq!(snap.count("migrate.aborted"), 1);
    assert_eq!(snap.count("migrate.completed"), 0);
    assert_eq!(snap.count("cluster.link.drops"), 1);
    assert_eq!(snap.level("migrate.inflight.bytes"), 0, "no torn in-flight state");
    let (out, _) = read_state(&fleet, "t", 4096);
    assert_eq!(out, datas, "source state untouched by the aborted attempt");

    // Nth(1) is exhausted: the retry goes through.
    let report = fleet.migrate("t", 1, MigrateOpts::default()).unwrap();
    assert_eq!(report.to, 1);
    assert_eq!(fleet.host_of("t"), Some(1));
    assert_eq!(fleet.live_ranks(0), 0);
    let (out, _) = read_state(&fleet, "t", 4096);
    assert_eq!(out, datas);
    let snap = fleet.registry().snapshot();
    assert_eq!(snap.count("migrate.attempts"), 2);
    assert_eq!(snap.count("migrate.completed"), 1);
    fleet.shutdown();
}

/// An injected migration stall is wall-clock only: the migration still
/// completes, and its report is bit-identical to an unstalled fleet's.
#[test]
fn migrate_stall_never_perturbs_virtual_time() {
    let clean = Fleet::start(
        FleetSpec::new(2).config(lean_vcfg(false)).policy(PlacementPolicy::FirstFit),
    );
    let stalled_vcfg = VpimConfig::builder()
        .batching(false)
        .prefetch(false)
        .inject_seed(0x57A_11)
        .inject_fault(FaultSite::MigrateStall, FaultPlan::EveryK(1))
        .build();
    let stalled =
        Fleet::start(FleetSpec::new(2).config(stalled_vcfg).policy(PlacementPolicy::FirstFit));
    for fleet in [&clean, &stalled] {
        fleet.launch(TenantSpec::new("t")).unwrap();
        write_state(fleet, "t", 4096, 0x57A_11);
    }
    let clean_report = clean.migrate("t", 1, MigrateOpts::default()).unwrap();
    let stalled_report = stalled.migrate("t", 1, MigrateOpts::default()).unwrap();
    assert_eq!(stalled_report, clean_report, "wall stalls must not leak into virtual time");
    let stats = stalled
        .fault_plane()
        .expect("inject enabled")
        .point_stats(FaultSite::MigrateStall.name())
        .unwrap();
    assert_eq!((stats.hits, stats.fired), (1, 1), "{stats:?}");
    clean.shutdown();
    stalled.shutdown();
}

/// Exceeding the in-flight snapshot budget aborts the migration cleanly:
/// partial parks are evicted, the destination is rolled back, and the
/// tenant keeps its source home and state.
#[test]
fn inflight_budget_violation_aborts_cleanly() {
    let fleet = Fleet::start(
        FleetSpec::new(2)
            .config(lean_vcfg(false))
            .policy(PlacementPolicy::FirstFit)
            .inflight_budget_mib(1),
    );
    fleet.launch(TenantSpec::new("t")).unwrap();
    // 4 × 320 KiB of resident state > the 1 MiB in-flight budget.
    let datas = write_state(&fleet, "t", 320 << 10, 0xB1D);

    let err = fleet.migrate("t", 1, MigrateOpts::default()).unwrap_err();
    assert!(matches!(&err, VpimError::BadRequest(m) if m.contains("budget")), "{err}");
    assert_eq!(fleet.host_of("t"), Some(0));
    assert_eq!(fleet.live_ranks(1), 0);
    let snap = fleet.registry().snapshot();
    assert_eq!(snap.count("migrate.aborted"), 1);
    assert_eq!(snap.level("migrate.inflight.bytes"), 0, "partial parks must be evicted");
    let (out, _) = read_state(&fleet, "t", 320 << 10);
    assert_eq!(out, datas);
    fleet.shutdown();
}

// -------------------------------------------------------------- chaos sweep

/// Eight-seed chaos sweep: `cluster.link.drop` and `cluster.migrate.stall`
/// armed probabilistically, migrations attempted under fire. Every failure
/// is typed, every abort rolls back completely (home, capacity, in-flight
/// store, rank state), accounting always balances, and once the plane is
/// disarmed the migration completes with state bit-identical to a fleet
/// that never saw a fault.
#[test]
fn eight_seed_chaos_sweep_aborts_always_roll_back() {
    let seeds =
        [0xC4A0_0001u64, 0xC4A0_0002, 0xC4A0_0003, 0xC4A0_0004, 0xC4A0_0005, 0xC4A0_0006,
         0xC4A0_0007, 0xC4A0_0008];
    for seed in seeds {
        let vcfg = VpimConfig::builder()
            .batching(false)
            .prefetch(false)
            .inject_seed(seed)
            .inject_fault(FaultSite::LinkDrop, FaultPlan::Probability { permille: 400 })
            .inject_fault(FaultSite::MigrateStall, FaultPlan::Probability { permille: 400 })
            .build();
        let fleet =
            Fleet::start(FleetSpec::new(2).config(vcfg).policy(PlacementPolicy::FirstFit));
        let baseline = Fleet::start(
            FleetSpec::new(2).config(lean_vcfg(false)).policy(PlacementPolicy::FirstFit),
        );
        for f in [&fleet, &baseline] {
            f.launch(TenantSpec::new("t")).unwrap();
            write_state(f, "t", 4096, seed);
        }

        let mut migrated = false;
        for _attempt in 0..6 {
            match fleet.migrate("t", 1, MigrateOpts::default()) {
                Ok(report) => {
                    assert_eq!(report.to, 1, "seed={seed:#x}");
                    migrated = true;
                    break;
                }
                Err(e) => {
                    assert_eq!(e.kind(), ErrorKind::Injected, "seed={seed:#x}: {e}");
                    // Full rollback after every abort.
                    assert_eq!(fleet.host_of("t"), Some(0), "seed={seed:#x}");
                    assert_eq!(fleet.live_ranks(1), 0, "seed={seed:#x}");
                    let snap = fleet.registry().snapshot();
                    assert_eq!(snap.level("migrate.inflight.bytes"), 0, "seed={seed:#x}");
                }
            }
        }
        if !migrated {
            // Persistent bad luck: disarm and prove the plane was the only
            // obstacle.
            fleet.fault_plane().unwrap().disarm(FaultSite::LinkDrop.name());
            let report = fleet.migrate("t", 1, MigrateOpts::default()).unwrap();
            assert_eq!(report.to, 1, "seed={seed:#x}");
        }
        assert_eq!(fleet.host_of("t"), Some(1), "seed={seed:#x}");

        // Accounting always balances, faulted or not.
        let snap = fleet.registry().snapshot();
        assert_eq!(
            snap.count("migrate.attempts"),
            snap.count("migrate.completed") + snap.count("migrate.aborted"),
            "seed={seed:#x}"
        );
        assert_eq!(snap.count("migrate.completed"), 1, "seed={seed:#x}");
        assert_eq!(snap.level("migrate.inflight.bytes"), 0, "seed={seed:#x}");

        // The surviving state matches a fleet that never saw a fault.
        baseline.migrate("t", 1, MigrateOpts::default()).unwrap();
        let (chaos_out, chaos_cost) = read_state(&fleet, "t", 4096);
        let (base_out, base_cost) = read_state(&baseline, "t", 4096);
        assert_eq!(chaos_out, base_out, "seed={seed:#x}: chaos left torn state");
        assert_eq!(chaos_cost, base_cost, "seed={seed:#x}");
        fleet.shutdown();
        baseline.shutdown();
    }
}

// --------------------------------------------------------------- placement

proptest! {
    /// Any sequence of launch/release/migrate keeps the placement
    /// invariants: a tenant is homed on at most one host, committed ranks
    /// never exceed capacity, and the fleet's accounting exactly matches
    /// an independent model (so migration conserves live ranks).
    ///
    /// Each generated op is `(kind, tenant, host)`: kind 0 launches
    /// `t<tenant>`, kind 1 releases it, kind 2 migrates it to `host`.
    #[test]
    fn placement_invariants_hold_under_churn(
        ops in proptest::collection::vec((0u8..3, 0u8..4, 0u8..3), 1..8),
    ) {
        let fleet = Fleet::start(FleetSpec::new(3).config(lean_vcfg(false)));
        // tenant -> (home, committed ranks) — the oracle.
        let mut model: HashMap<String, (usize, usize)> = HashMap::new();
        for (kind, t, h) in ops {
            let tag = format!("t{t}");
            match kind {
                0 => match fleet.launch(TenantSpec::new(&tag)) {
                    Ok(h) => {
                        prop_assert!(!model.contains_key(&tag));
                        model.insert(tag, (h, 1));
                    }
                    Err(VpimError::BadRequest(_)) => {
                        prop_assert!(model.contains_key(&tag));
                    }
                    Err(VpimError::NoRankAvailable) => {
                        // Refused only when genuinely full everywhere.
                        for h in 0..3 {
                            prop_assert!(fleet.live_ranks(h) + 1 > fleet.capacity(h));
                        }
                    }
                    Err(e) => prop_assert!(false, "unexpected launch error: {e}"),
                },
                1 => match fleet.release(&tag) {
                    Ok(()) => {
                        prop_assert!(model.remove(&tag).is_some());
                    }
                    Err(VpimError::BadRequest(_)) => {
                        prop_assert!(!model.contains_key(&tag));
                    }
                    Err(e) => prop_assert!(false, "unexpected release error: {e}"),
                },
                _ => {
                    let to = usize::from(h);
                    match fleet.migrate(&tag, to, MigrateOpts::default()) {
                        Ok(report) => {
                            let entry = model.get_mut(&tag);
                            prop_assert!(entry.is_some());
                            let entry = entry.unwrap();
                            prop_assert_eq!(report.from, entry.0);
                            entry.0 = to;
                        }
                        Err(VpimError::BadRequest(_)) => {
                            // Unknown tenant or self-migration.
                            let home = model.get(&tag).map(|&(h, _)| h);
                            prop_assert!(home.is_none() || home == Some(to));
                        }
                        Err(VpimError::NoRankAvailable) => {
                            let (_, need) = model[&tag];
                            prop_assert!(fleet.live_ranks(to) + need > fleet.capacity(to));
                        }
                        Err(e) => prop_assert!(false, "unexpected migrate error: {e}"),
                    }
                }
            }

            // Invariants after every step.
            let placements = fleet.placements();
            let mut seen = HashMap::new();
            for (tenant, host) in &placements {
                prop_assert!(
                    seen.insert(tenant.clone(), *host).is_none(),
                    "tenant {tenant} homed twice"
                );
            }
            let mut model_homes: Vec<(String, usize)> =
                model.iter().map(|(t, &(h, _))| (t.clone(), h)).collect();
            model_homes.sort();
            prop_assert_eq!(placements, model_homes);
            let mut total = 0usize;
            for h in 0..3 {
                let live = fleet.live_ranks(h);
                prop_assert!(live <= fleet.capacity(h), "host {h} overcommitted");
                total += live;
            }
            let model_total: usize = model.values().map(|&(_, n)| n).sum();
            prop_assert_eq!(total, model_total);
        }
        fleet.shutdown();
    }
}
