//! Oversubscription end-to-end: more tenant VMs than physical ranks,
//! time-shared by the `vpim::sched` scheduler through checkpoint/restore
//! preemption.
//!
//! The load-bearing assertion is *bit-identity*: every tenant's final
//! MRAM contents after an oversubscribed run (8 VMs on 4 ranks, constant
//! preemption churn) must equal the same tenant's contents after a
//! dedicated run (8 VMs on 8 ranks, scheduler in pass-through mode), in
//! both Sequential and Parallel dispatch.

use std::sync::Arc;
use std::time::Duration;

use simkit::{CostModel, FaultPlan};
use upmem_driver::UpmemDriver;
use upmem_sim::{PimConfig, PimMachine};
use vpim::manager::ManagerConfig;
use vpim::{FaultSite, StartOpts, TenantSpec, VpimConfig, VpimSystem};

const ROUNDS: usize = 4;
const DPUS: [u32; 2] = [0, 3];
const CHUNK: u64 = 2048;

fn host(ranks: usize) -> Arc<UpmemDriver> {
    let machine = PimMachine::new(PimConfig {
        ranks,
        functional_dpus: vec![8; ranks],
        mram_size: 1 << 20,
        ..PimConfig::small()
    });
    Arc::new(UpmemDriver::new(machine))
}

/// Snappy manager tuning: exhaustion probes fail in ~5 ms instead of the
/// production 5 × 200 ms, so the admission loop reaches its preemption
/// path quickly.
fn snappy() -> ManagerConfig {
    ManagerConfig {
        retry_timeout: Duration::from_millis(5),
        max_attempts: 1,
        ..ManagerConfig::default()
    }
}

/// The bytes tenant `vm` writes for `dpu` in `round` — unique per
/// (tenant, dpu, round) so any cross-tenant leak or torn restore shows.
fn pattern(vm: usize, dpu: u32, round: usize) -> Vec<u8> {
    let seed = (vm * 97 + dpu as usize * 13 + round * 5) as u32;
    (0..CHUNK as usize)
        .map(|i| (seed.wrapping_mul(2654435761).wrapping_add(i as u32) >> 8) as u8)
        .collect()
}

/// Runs `vms` single-device tenants over `ranks` ranks: each round every
/// tenant appends a fresh chunk per DPU and re-reads *all* chunks it has
/// written so far (so restored checkpoints are verified every round, not
/// just at the end). Returns each tenant's final full read-back.
fn run_tenants(vcfg: VpimConfig, ranks: usize, vms: usize) -> Vec<Vec<Vec<u8>>> {
    let sys = VpimSystem::start(host(ranks), vcfg, StartOpts::new().cost_model(CostModel::default()).manager(snappy()));
    let tenants: Vec<_> = (0..vms)
        .map(|v| sys.launch(TenantSpec::new(format!("vm-{v}"))).unwrap())
        .collect();
    // Interleave rounds across tenants: with vms > ranks every operation
    // of an unlinked tenant preempts someone else's rank.
    for round in 0..ROUNDS {
        for (v, vm) in tenants.iter().enumerate() {
            let fe = vm.frontend(0);
            let datas: Vec<Vec<u8>> = DPUS.iter().map(|&d| pattern(v, d, round)).collect();
            let writes: Vec<(u32, u64, &[u8])> = DPUS
                .iter()
                .zip(&datas)
                .map(|(&d, data)| (d, round as u64 * CHUNK, data.as_slice()))
                .collect();
            fe.write_rank(&writes).unwrap();
            // Everything this tenant ever wrote must still be there,
            // even though its rank was likely lent out in between.
            let reads: Vec<(u32, u64, u64)> = DPUS
                .iter()
                .flat_map(|&d| (0..=round).map(move |r| (d, r as u64 * CHUNK, CHUNK)))
                .collect();
            let (outs, _) = fe.read_rank(&reads).unwrap();
            for (k, &d) in DPUS.iter().enumerate() {
                for r in 0..=round {
                    assert_eq!(
                        outs[k * (round + 1) + r],
                        pattern(v, d, r),
                        "vm-{v} dpu {d}: round-{r} chunk corrupted during round {round}"
                    );
                }
            }
        }
    }
    let finals = tenants
        .iter()
        .enumerate()
        .map(|(_v, vm)| {
            let fe = vm.frontend(0);
            let reads: Vec<(u32, u64, u64)> =
                DPUS.iter().map(|&d| (d, 0, ROUNDS as u64 * CHUNK)).collect();
            let (outs, _) = fe.read_rank(&reads).unwrap();
            outs
        })
        .collect();
    let stats = sys.scheduler().stats();
    if vms > ranks {
        assert!(
            stats.preemptions > 0,
            "oversubscribed run must have preempted: {stats:?}"
        );
        assert!(
            stats.restores > 0,
            "preempted tenants must have been restored: {stats:?}"
        );
    } else {
        assert_eq!(stats.preemptions, 0, "dedicated run must not preempt: {stats:?}");
    }
    assert_eq!(sys.scheduler().queue_depth(), 0, "no tenant left queued");
    drop(tenants);
    sys.shutdown();
    finals
}

fn oversub_matches_dedicated(parallel: bool) {
    let base = VpimConfig::builder().batching(false).prefetch(false).parallel(parallel);
    let dedicated = run_tenants(base.clone().build(), 8, 8);
    let oversub = run_tenants(
        base.oversubscription(true).sched_quantum_ms(0).build(),
        4,
        8,
    );
    assert_eq!(
        dedicated, oversub,
        "per-tenant payloads must be bit-identical with and without rank time-sharing"
    );
}

#[test]
fn eight_vms_on_four_ranks_sequential_dispatch() {
    oversub_matches_dedicated(false);
}

#[test]
fn eight_vms_on_four_ranks_parallel_dispatch() {
    oversub_matches_dedicated(true);
}

#[test]
fn weighted_fair_oversubscription_completes() {
    let vcfg = VpimConfig::builder()
        .batching(false)
        .prefetch(false)
        .oversubscription(true)
        .sched_policy(vpim::SchedPolicy::WeightedFair)
        .sched_quantum_ms(0)
        .build();
    let finals = run_tenants(vcfg, 2, 4);
    for (v, outs) in finals.iter().enumerate() {
        for (k, &d) in DPUS.iter().enumerate() {
            for r in 0..ROUNDS {
                let lo = r * CHUNK as usize;
                assert_eq!(
                    &outs[k][lo..lo + CHUNK as usize],
                    pattern(v, d, r).as_slice(),
                    "vm-{v} dpu {d} round {r}"
                );
            }
        }
    }
}

#[test]
fn scheduler_telemetry_is_published() {
    let vcfg = VpimConfig::builder()
        .batching(false)
        .prefetch(false)
        .oversubscription(true)
        .sched_quantum_ms(0)
        .build();
    let sys = VpimSystem::start(host(1), vcfg, StartOpts::new().cost_model(CostModel::default()).manager(snappy()));
    let a = sys.launch(TenantSpec::new("vm-a")).unwrap();
    let b = sys.launch(TenantSpec::new("vm-b")).unwrap();
    // Bounce the rank between the tenants a few times.
    for round in 0..3u8 {
        a.frontend(0).write_rank(&[(0, 0, &[round; 64])]).unwrap();
        b.frontend(0).write_rank(&[(0, 0, &[round ^ 0xFF; 64])]).unwrap();
    }
    let snap = sys.registry().snapshot();
    assert!(snap.count("sched.grants") >= 2, "{snap:?}");
    assert!(snap.count("sched.preemptions") >= 1, "{snap:?}");
    assert!(snap.count("sched.restores") >= 1, "{snap:?}");
    assert_eq!(snap.level("sched.queue.depth"), 0, "{snap:?}");
    // Per-tenant wait-latency histograms exist and saw every grant.
    let waits: u64 = ["vm-a/vupmem0", "vm-b/vupmem0"]
        .iter()
        .map(|t| match snap.get(&format!("sched.wait.{t}")) {
            Some(simkit::MetricValue::Histogram { count, total, .. }) => {
                assert!(*total > simkit::VirtualNanos::ZERO);
                *count
            }
            other => panic!("missing wait histogram for {t}: {other:?}"),
        })
        .sum();
    assert_eq!(waits, snap.count("sched.grants"), "every grant records a wait sample");
    drop((a, b));
    sys.shutdown();
}

/// A wall-clock stall injected at the checkpoint safe point must change
/// *nothing* observable: tenants park and restore bit-identically, the
/// preemption schedule is unchanged, and the exact `sched.preemptions` /
/// `sched.restores` totals match the un-stalled run (virtual time never
/// sees the stall).
#[test]
fn checkpoint_stall_injection_preserves_bit_identical_time_sharing() {
    let run = |stall: bool| {
        let mut builder = VpimConfig::builder()
            .batching(false)
            .prefetch(false)
            .oversubscription(true)
            .sched_quantum_ms(0)
            .inject_seed(0x5CED);
        if stall {
            builder = builder.inject_fault(FaultSite::CkptStall, FaultPlan::EveryK(1));
        }
        let sys = VpimSystem::start(host(1), builder.build(), StartOpts::new().cost_model(CostModel::default()).manager(snappy()));
        let a = sys.launch(TenantSpec::new("vm-a")).unwrap();
        let b = sys.launch(TenantSpec::new("vm-b")).unwrap();
        for round in 0..3usize {
            for (v, vm) in [(0usize, &a), (1usize, &b)] {
                let fe = vm.frontend(0);
                let data = pattern(v, 0, round);
                fe.write_rank(&[(0, round as u64 * CHUNK, &data)]).unwrap();
                // Every chunk written so far survived the park/restore.
                let reads: Vec<(u32, u64, u64)> =
                    (0..=round).map(|r| (0, r as u64 * CHUNK, CHUNK)).collect();
                let (outs, _) = fe.read_rank(&reads).unwrap();
                for r in 0..=round {
                    assert_eq!(outs[r], pattern(v, 0, r), "vm-{v} round {r} (stall={stall})");
                }
            }
        }
        let stats = sys.scheduler().stats();
        let snap = sys.registry().snapshot();
        assert_eq!(snap.count("sched.preemptions"), stats.preemptions, "{snap:?}");
        assert_eq!(snap.count("sched.restores"), stats.restores, "{snap:?}");
        if stall {
            let plane = sys.fault_plane().expect("inject enabled");
            let st = plane.point_stats(vpim::CKPT_STALL_POINT).unwrap();
            assert_eq!(st.hits, stats.preemptions, "one stall probe per checkpoint");
            assert_eq!(st.fired, st.hits, "EveryK(1) stalls every checkpoint");
        }
        let finals: Vec<Vec<u8>> = [&a, &b]
            .iter()
            .map(|vm| {
                let (mut outs, _) = vm.frontend(0).read_rank(&[(0, 0, 3 * CHUNK)]).unwrap();
                outs.remove(0)
            })
            .collect();
        drop((a, b));
        sys.shutdown();
        (finals, stats.preemptions, stats.restores)
    };

    let (clean, p0, r0) = run(false);
    let (stalled, p1, r1) = run(true);
    assert_eq!(clean, stalled, "stalled checkpoints must restore bit-identically");
    assert_eq!((p0, r0), (p1, r1), "stall must not change the preemption schedule");
    assert_eq!((p1, r1), (7, 6), "exact preemption/restore totals");
}

#[test]
fn voluntary_release_evicts_parked_checkpoint_and_unblocks_waiters() {
    let vcfg = VpimConfig::builder()
        .batching(false)
        .prefetch(false)
        .oversubscription(true)
        .sched_quantum_ms(0)
        .build();
    let sys = VpimSystem::start(host(1), vcfg, StartOpts::new().cost_model(CostModel::default()).manager(snappy()));
    let a = sys.launch(TenantSpec::new("vm-a")).unwrap();
    let b = sys.launch(TenantSpec::new("vm-b")).unwrap();
    a.frontend(0).write_rank(&[(0, 0, &[0xAA; 128])]).unwrap();
    // vm-b's write preempts vm-a: vm-a's state is parked.
    b.frontend(0).write_rank(&[(0, 0, &[0xBB; 128])]).unwrap();
    assert!(sys.scheduler().store().contains("vm-a/vupmem0"));
    // vm-a shuts down without ever coming back: its checkpoint is dropped.
    a.release_all().unwrap();
    assert!(
        !sys.scheduler().store().contains("vm-a/vupmem0"),
        "release must evict the parked checkpoint"
    );
    assert_eq!(sys.scheduler().store().used_bytes(), 0);
    // vm-b still works (and still owns the rank or can reacquire it).
    let (outs, _) = b.frontend(0).read_rank(&[(0, 0, 128)]).unwrap();
    assert_eq!(outs[0], vec![0xBB; 128]);
    drop((a, b));
    sys.shutdown();
}
