//! Load-harness integration (ISSUE 6): seed-sweep determinism across
//! phase-A execution modes and host dispatch modes, exact closed-loop
//! totals, a chaos variant (fault plane armed, throughput degrades but
//! the report stays deterministic), and the 1k-session smoke behind
//! `ci/load-gate.sh`.
//!
//! The invariant under test everywhere: **same seed ⇒ bit-identical
//! [`LoadReport`]**, including the serialized `to_json()` form the gate
//! diffs across `RUST_TEST_THREADS` settings.

use std::sync::Arc;

use simkit::FaultPlan;
use upmem_driver::UpmemDriver;
use upmem_sim::PimMachine;
use vpim::load::{
    Arrival, Execution, LoadHarness, LoadReport, LoadSpec, OpOutcome, TenantMix, TenantOp,
    TenantProfile,
};
use vpim::{FaultSite, StartOpts, TenantSpec, VpimConfig, VpimSystem};
use vpim_system::loadmix;

fn host_with_opts(vcfg: VpimConfig, ranks: usize, opts: StartOpts) -> Arc<VpimSystem> {
    let machine = PimMachine::new(loadmix::load_host_config(ranks));
    loadmix::register_workloads(&machine);
    Arc::new(VpimSystem::start(Arc::new(UpmemDriver::new(machine)), vcfg, opts))
}

fn host_with(vcfg: VpimConfig, ranks: usize) -> Arc<VpimSystem> {
    host_with_opts(vcfg, ranks, StartOpts::default())
}

fn host(ranks: usize) -> Arc<VpimSystem> {
    host_with(VpimConfig::full(), ranks)
}

/// `VpimConfig::full()` with parallel operation handling turned off — the
/// "Sequential dispatch" axis of the determinism matrix.
fn sequential_dispatch() -> VpimConfig {
    VpimConfig::builder().parallel(false).build()
}

/// A one-profile mix with a fixed two-op script, for exact-total
/// assertions (every served session contributes exactly two ops).
fn two_op_mix() -> TenantMix {
    TenantMix::new().profile(
        TenantProfile::new("fixed", TenantSpec::new("fixed").mem_mib(16))
            .op(TenantOp::new(
                "write",
                Arc::new(|vm, seed| {
                    let data = vec![(seed & 0xff) as u8; 1024];
                    let r = vm.frontend(0).write_rank(&[(0, 0, &data)])?;
                    Ok(OpOutcome::new(r.duration(), seed))
                }),
            ))
            .op(TenantOp::new(
                "read",
                Arc::new(|vm, seed| {
                    let (data, r) = vm.frontend(0).read_rank(&[(0, 0, 512)])?;
                    let sum = data.iter().flatten().map(|&b| u64::from(b)).sum::<u64>();
                    Ok(OpOutcome::new(r.duration(), sum.wrapping_add(seed)))
                }),
            ))
            .think_mean_ns(800),
    )
}

#[test]
fn seed_sweep_is_bit_identical_across_execution_and_dispatch() {
    for seed in [1u64, 42, 0xF00D] {
        let spec = LoadSpec::new(seed, 10).arrival(Arrival::Poisson { mean_gap_ns: 3_000 });
        let seq =
            LoadHarness::run(&host(2), &spec.execution(Execution::Sequential), &loadmix::smoke_mix(4));
        let pooled =
            LoadHarness::run(&host(2), &spec.execution(Execution::Pooled), &loadmix::smoke_mix(4));
        let seq_dispatch = LoadHarness::run(
            &host_with(sequential_dispatch(), 2),
            &spec.execution(Execution::Pooled),
            &loadmix::smoke_mix(4),
        );
        assert_eq!(seq, pooled, "seed {seed}: phase-A execution mode leaked into the report");
        assert_eq!(seq, seq_dispatch, "seed {seed}: host dispatch mode leaked into the report");
        assert_eq!(seq.to_json(), pooled.to_json());
        assert_eq!(seq.seed, seed);
        assert_eq!(seq.completed, 10);
    }
}

/// PR 7's sharded-control-plane variant: the number of control-plane
/// shards (manager rank-table groups + scheduler tenant/queue shards) is
/// a pure concurrency knob — for any fixed seed the report produced with
/// the default shard count and with `control_shards(1)` (the pre-sharding
/// single-lock serialization) must byte-compare equal, under both host
/// dispatch modes.
#[test]
fn control_plane_sharding_is_invisible_to_the_report() {
    for seed in [7u64, 0xC0DE, 99] {
        let spec = LoadSpec::new(seed, 10).arrival(Arrival::Poisson { mean_gap_ns: 3_000 });
        let mix = loadmix::smoke_mix(4);
        let sharded = LoadHarness::run(&host(2), &spec, &mix);
        let single = LoadHarness::run(
            &host_with_opts(VpimConfig::full(), 2, StartOpts::default().control_shards(1)),
            &spec,
            &mix,
        );
        let single_seq_dispatch = LoadHarness::run(
            &host_with_opts(sequential_dispatch(), 2, StartOpts::default().control_shards(1)),
            &spec,
            &mix,
        );
        assert_eq!(
            sharded, single,
            "seed {seed}: control-plane shard count leaked into the report"
        );
        assert_eq!(
            sharded.to_json(),
            single.to_json(),
            "seed {seed}: serialized reports must be byte-identical"
        );
        assert_eq!(sharded.to_json(), single_seq_dispatch.to_json());
        assert_eq!(sharded.completed, 10);
    }
}

#[test]
fn different_seeds_differ() {
    let mix = loadmix::smoke_mix(4);
    let a = LoadHarness::run(
        &host(2),
        &LoadSpec::new(1, 6).arrival(Arrival::Poisson { mean_gap_ns: 2_000 }),
        &mix,
    );
    let b = LoadHarness::run(
        &host(2),
        &LoadSpec::new(2, 6).arrival(Arrival::Poisson { mean_gap_ns: 2_000 }),
        &mix,
    );
    assert_ne!(a, b, "the report must be seed-sensitive");
}

#[test]
fn closed_loop_totals_are_exact() {
    let sys = host(2);
    let n = 9usize;
    let spec = LoadSpec::new(5, n).arrival(Arrival::Uniform { gap_ns: 1_000 });
    let report = LoadHarness::run(&sys, &spec, &two_op_mix());

    // Every session is served; the single profile scripts exactly 2 ops.
    assert_eq!(report.sessions, n as u64);
    assert_eq!(report.completed, n as u64);
    assert_eq!(report.giveups, 0);
    assert_eq!(report.launch_failures, 0);
    assert_eq!(report.ops_run, 2 * n as u64);
    assert_eq!(report.op_failures, 0);
    assert_eq!(report.per_op.len(), 2);
    let op_count: u64 =
        report.per_op.iter().map(|o| o.latency.count + o.failures).sum();
    assert_eq!(op_count, report.ops_run);
    assert_eq!(report.session_latency.count, n as u64);
    assert!(report.session_latency.p999 >= report.session_latency.p99);
    assert!(report.session_latency.p99 >= report.session_latency.p50);

    // Host-registry mirror agrees with the report.
    let snap = sys.registry().snapshot();
    assert_eq!(snap.count("load.sessions.offered"), n as u64);
    assert_eq!(snap.count("load.sessions.completed"), n as u64);
    assert_eq!(snap.count("load.ops.run"), 2 * n as u64);
    assert_eq!(snap.count("load.ops.failed"), 0);
}

#[test]
fn patience_sheds_load_deterministically() {
    // One server, back-to-back arrivals, tiny patience: the queue must
    // shed — and identically so under both execution modes.
    let spec = LoadSpec::new(3, 8)
        .arrival(Arrival::Uniform { gap_ns: 10 })
        .servers(1)
        .patience(simkit::VirtualNanos::from_nanos(5_000));
    let a = LoadHarness::run(&host(2), &spec.execution(Execution::Sequential), &two_op_mix());
    let b = LoadHarness::run(&host(2), &spec.execution(Execution::Pooled), &two_op_mix());
    assert_eq!(a, b);
    assert!(a.giveups > 0, "patience never triggered: {a:?}");
    assert_eq!(a.completed + a.giveups, 8);
    assert!(a.peak_queue_depth > 0);
}

#[test]
fn chaos_variant_degrades_but_stays_deterministic() {
    // Arm the torn-chunk-write site probabilistically. Its hits are keyed
    // (pure in the request's chunk key, not a serial counter), so the
    // injection decisions — and hence the report — cannot depend on
    // thread interleaving.
    let chaos_host = |parallel: bool| {
        let mut b = VpimConfig::builder().inject_seed(0xBAD_5EED);
        if !parallel {
            b = b.parallel(false);
        }
        let sys = host_with(b.build(), 2);
        sys.fault_plane()
            .expect("inject enabled")
            .arm(FaultSite::ChunkTornWrite.name(), FaultPlan::EveryK(1));
        sys
    };
    let spec = LoadSpec::new(21, 8).arrival(Arrival::OnOff {
        mean_gap_ns: 500,
        burst: 4,
        off_gap_ns: 20_000,
    });
    let a = LoadHarness::run(&chaos_host(true), &spec.execution(Execution::Sequential), &two_op_mix());
    let b = LoadHarness::run(&chaos_host(true), &spec.execution(Execution::Pooled), &two_op_mix());
    let c = LoadHarness::run(&chaos_host(false), &spec.execution(Execution::Pooled), &two_op_mix());
    assert_eq!(a, b, "chaos run depends on phase-A execution mode");
    assert_eq!(a, c, "chaos run depends on host dispatch mode");
    assert_eq!(a.sessions, 8);
    assert!(a.op_failures > 0, "armed fault plane never bit: {a:?}");

    // And throughput degraded relative to a clean host on the same spec.
    let clean = LoadHarness::run(&host(2), &spec.execution(Execution::Pooled), &two_op_mix());
    assert_ne!(a, clean, "armed fault plane left no trace in the report");
    assert_eq!(clean.op_failures, 0);
}

/// The 1k-session smoke behind `ci/load-gate.sh`: ≥ 1000 sessions live
/// concurrently in virtual time, the report is bit-identical across host
/// dispatch modes, and the canonical JSON is written to
/// `$LOAD_REPORT_OUT` so the gate can diff it across
/// `RUST_TEST_THREADS=1` and `=8`.
#[test]
#[ignore = "release-mode smoke; run via ci/load-gate.sh"]
fn thousand_concurrent_sessions_smoke() {
    let spec = LoadSpec::new(0x10AD, 1_000)
        .arrival(Arrival::OnOff { mean_gap_ns: 50, burst: 100, off_gap_ns: 2_000 })
        .servers(32)
        .workers(8);
    let par = LoadHarness::run(
        &host(4),
        &spec.execution(Execution::Pooled),
        &loadmix::smoke_mix(4),
    );
    let seq = LoadHarness::run(
        &host_with(sequential_dispatch(), 4),
        &spec.execution(Execution::Pooled),
        &loadmix::smoke_mix(4),
    );
    assert_eq!(par, seq, "host dispatch mode leaked into the 1k report");
    assert_eq!(par.sessions, 1_000);
    assert_eq!(par.completed + par.giveups + par.launch_failures, 1_000);
    assert!(
        par.peak_concurrent >= 1_000,
        "expected >= 1000 concurrent sessions in virtual time, got {}",
        par.peak_concurrent
    );
    assert!(par.op_failures == 0, "clean run must verify: {par:?}");

    let json = par.to_json();
    assert_eq!(json, seq.to_json());
    if let Ok(path) = std::env::var("LOAD_REPORT_OUT") {
        std::fs::write(&path, &json).expect("write LOAD_REPORT_OUT");
    }
    // Exercise the parse direction the gate relies on: the JSON is stable
    // line-noise-free ASCII.
    assert!(json.starts_with('{') && json.ends_with('}'));
    assert!(json.contains("\"peak_concurrent\""));
    let _: LoadReport = par; // keep the type in the public API
}

#[test]
fn persistent_kv_mix_is_deterministic_with_faults_armed() {
    use vpim::{PheapOptions, PHEAP_WAL_TORN_POINT};

    // One persistent-KV tenant (multi-transaction pheap episodes) next to
    // a plain write tenant. With `pheap.wal.torn` armed `Nth(4)`, every
    // episode's fourth (last non-noop) persist tears (persist faults are
    // keyed purely by transaction sequence, identical in every mode)
    // while the plain tenant sails through — the report must contain both
    // failures and successes, bit-identically across phase-A execution
    // modes and host dispatch modes.
    let plain = || {
        TenantProfile::new("plain", TenantSpec::new("plain").mem_mib(16)).op(TenantOp::new(
            "write",
            Arc::new(|vm, seed| {
                let data = vec![(seed & 0xff) as u8; 2048];
                let r = vm.frontend(0).write_rank(&[(0, 4096, &data)])?;
                Ok(OpOutcome::new(r.duration(), seed.rotate_left(7)))
            }),
        ))
    };
    let spec = LoadSpec::new(33, 10).arrival(Arrival::Poisson { mean_gap_ns: 4_000 });

    let run_armed = |parallel: bool, exec: Execution| {
        let mut b = VpimConfig::builder().inject_seed(0x9EA9_5EED);
        if !parallel {
            b = b.parallel(false);
        }
        let sys = host_with(b.build(), 2);
        sys.fault_plane().expect("inject enabled").arm(PHEAP_WAL_TORN_POINT, FaultPlan::Nth(4));
        let mix = TenantMix::new()
            .profile(loadmix::pheap_kv_profile(PheapOptions::new().attach(&sys)))
            .profile(plain());
        LoadHarness::run(&sys, &spec.execution(exec), &mix)
    };
    let a = run_armed(true, Execution::Sequential);
    let b = run_armed(true, Execution::Pooled);
    let c = run_armed(false, Execution::Pooled);
    assert_eq!(a, b, "armed KV run depends on phase-A execution mode");
    assert_eq!(a, c, "armed KV run depends on host dispatch mode");
    assert_eq!(a.sessions, 10);
    assert!(a.op_failures > 0, "torn persists never surfaced: {a:?}");

    // Clean variant: same mix without the fault plane — every episode
    // recovers and verifies, still bit-identically across modes.
    let run_clean = |parallel: bool, exec: Execution| {
        let sys = host_with(
            if parallel { VpimConfig::full() } else { sequential_dispatch() },
            2,
        );
        let mix = TenantMix::new()
            .profile(loadmix::pheap_kv_profile(PheapOptions::new().attach(&sys)))
            .profile(plain());
        LoadHarness::run(&sys, &spec.execution(exec), &mix)
    };
    let x = run_clean(true, Execution::Pooled);
    let y = run_clean(false, Execution::Sequential);
    assert_eq!(x, y, "clean KV run depends on dispatch/execution mode");
    assert_eq!(x.op_failures, 0, "clean KV episodes must verify: {x:?}");
    assert!(x.checksum != 0);
    assert_ne!(a, x, "armed run left no trace in the report");
}
