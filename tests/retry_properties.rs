//! Property tests for the retry/fault-injection plane (ISSUE 5):
//!
//! * the backoff sequence is monotone non-decreasing, bounded by its cap,
//!   and a pure function of `(policy, seed, n)`;
//! * every fault plan fires exactly the count its closed form predicts,
//!   and `count_fires` is an exact oracle for serial-counter points;
//! * keyed decisions are pure in the key (retrying the same key re-fires);
//! * kick-drop recovery never double-applies a write (the `(head, gen)`
//!   clocks pair each submission with exactly one used-ring drain).

use std::sync::Arc;

use proptest::prelude::*;
use simkit::{FaultPlan, FaultPlane, RetryPolicy, VirtualNanos};
use upmem_driver::UpmemDriver;
use upmem_sim::{PimConfig, PimMachine};
use vpim::{FaultSite, StartOpts, TenantSpec, VpimConfig, VpimSystem};

const POINT: &str = "prop.point";

/// Builds a policy from raw drawn parameters (the vendored proptest shim
/// has no `prop_map`, so construction happens in the test body).
fn mk_policy(attempts: u32, base_ns: u64, mult: u32, jitter: u8, cap_mult: u64) -> RetryPolicy {
    let base = VirtualNanos::from_nanos(base_ns);
    RetryPolicy::new(
        attempts,
        base,
        mult,
        jitter.min(100),
        base.saturating_mul(cap_mult),
        base.saturating_mul(256),
    )
}

/// Decodes one of the four plan shapes from raw drawn parameters.
fn mk_plan(kind: u8, a: u64, b: u64, permille: u16) -> FaultPlan {
    match kind % 4 {
        0 => FaultPlan::Nth(a % 20),
        1 => FaultPlan::EveryK(a % 10),
        2 => FaultPlan::Probability { permille: permille % 1001 },
        _ => FaultPlan::Burst { after: a % 16, count: b % 16 },
    }
}

/// The closed-form firing count of a plan over hits keyed `0..hits`.
/// Probability has no closed form; `None` defers to `count_fires`.
fn closed_form(plan: FaultPlan, hits: u64) -> Option<u64> {
    match plan {
        FaultPlan::Nth(n) => Some(u64::from(n > 0 && hits >= n)),
        FaultPlan::EveryK(k) => Some(if k == 0 { 0 } else { hits / k }),
        FaultPlan::Burst { after, count } => {
            Some(hits.saturating_sub(after).min(count))
        }
        FaultPlan::Probability { .. } => None,
    }
}

proptest! {
    /// backoff(seed, n) ≤ backoff(seed, n+1) ≤ cap, for any policy the
    /// constructor can produce, and the value is deterministic per seed.
    #[test]
    fn backoff_is_monotone_bounded_and_deterministic(
        attempts in 1u32..8,
        base_ns in 1u64..1_000_000,
        mult in 2u32..6,
        jitter in 0u8..101,
        cap_mult in 1u64..64,
        seed in any::<u64>(),
    ) {
        let policy = mk_policy(attempts, base_ns, mult, jitter, cap_mult);
        let mut prev = VirtualNanos::ZERO;
        for n in 0..12u32 {
            let b = policy.backoff(seed, n);
            prop_assert!(b >= prev, "step {n}: {b:?} < {prev:?}");
            prop_assert!(b <= policy.cap, "step {n}: {b:?} exceeds cap {:?}", policy.cap);
            prop_assert_eq!(b, policy.backoff(seed, n));
            prev = b;
        }
    }

    /// Different seeds may jitter differently but never change the bounds
    /// or the monotone shape — the un-jittered floor is shared.
    #[test]
    fn backoff_jitter_never_exceeds_one_step(
        attempts in 1u32..8,
        base_ns in 1u64..1_000_000,
        mult in 2u32..6,
        jitter in 0u8..101,
        cap_mult in 1u64..64,
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let policy = mk_policy(attempts, base_ns, mult, jitter, cap_mult);
        for n in 0..8u32 {
            let a = policy.backoff(seed_a, n);
            let b = policy.backoff(seed_b, n);
            // Jitter is ≤ 100% of the step, so two seeds are within 2× of
            // each other (unless both clamp to the cap).
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(
                hi <= lo.saturating_mul(2) || hi == policy.cap,
                "step {n}: {a:?} vs {b:?} differ by more than jitter allows"
            );
        }
    }

    /// A plan fires exactly its configured count over any number of serial
    /// hits, and `count_fires` agrees with the realized count.
    #[test]
    fn plan_fires_exactly_its_configured_count(
        kind in 0u8..4,
        a in 0u64..64,
        b in 0u64..64,
        permille in 0u16..1001,
        seed in any::<u64>(),
        hits in 0u64..64,
    ) {
        let plan = mk_plan(kind, a, b, permille);
        let plane = FaultPlane::new(seed);
        plane.arm(POINT, plan);
        let realized = (0..hits).filter(|_| plane.hit(POINT)).count() as u64;
        prop_assert_eq!(realized, plan.count_fires(seed, POINT, hits));
        if let Some(expected) = closed_form(plan, hits) {
            prop_assert_eq!(realized, expected);
        }
        let stats = plane.point_stats(POINT).unwrap();
        prop_assert_eq!(stats.hits, hits);
        prop_assert_eq!(stats.fired, realized);
        prop_assert_eq!(stats.suppressed, hits - realized);
    }

    /// Keyed decisions are pure in `(seed, point, key)`: the same key gives
    /// the same answer forever, and re-arming the same plan replays it.
    #[test]
    fn keyed_decisions_are_pure_and_replayable(
        kind in 0u8..4,
        a in 0u64..64,
        b in 0u64..64,
        permille in 0u16..1001,
        seed in any::<u64>(),
        keys in proptest::collection::vec(0u64..64, 0..32),
    ) {
        let plan = mk_plan(kind, a, b, permille);
        let plane = FaultPlane::new(seed);
        plane.arm(POINT, plan);
        let first: Vec<bool> = keys.iter().map(|&k| plane.hit_keyed(POINT, k)).collect();
        let second: Vec<bool> = keys.iter().map(|&k| plane.hit_keyed(POINT, k)).collect();
        prop_assert_eq!(&first, &second);
        plane.arm(POINT, plan); // re-arm resets counters, not decisions
        let replay: Vec<bool> = keys.iter().map(|&k| plane.hit_keyed(POINT, k)).collect();
        prop_assert_eq!(&first, &replay);
        for (i, &k) in keys.iter().enumerate() {
            prop_assert_eq!(first[i], plan.fires(seed, POINT, k));
        }
    }
}

// ------------------------------------------------- end-to-end idempotency

fn host() -> Arc<UpmemDriver> {
    Arc::new(UpmemDriver::new(PimMachine::new(PimConfig::small())))
}

/// Kick-drop recovery re-kicks an *undispatched* chain: the write is
/// applied exactly once. `backend.writes` counts WriteRank requests the
/// device actually processed — if a recovered kick ever re-dispatched an
/// already-processed chain, the counter would exceed the number of
/// requests the guest issued.
#[test]
fn recovered_kick_never_double_applies_a_write() {
    for seed in [1u64, 7, 0xDEAD, 0xC4A0_5EED] {
        for parallel in [false, true] {
            let vcfg = VpimConfig::builder()
                .batching(false)
                .prefetch(false)
                .parallel(parallel)
                .inject_seed(seed)
                .build();
            let sys = VpimSystem::start(host(), vcfg, StartOpts::default());
            let vm = sys.launch(TenantSpec::new("prop")).unwrap();
            let plane = sys.fault_plane().unwrap().clone();
            plane.arm(FaultSite::KickDrop.name(), FaultPlan::Nth(1));
            let fe = vm.frontend(0);

            // Two writes to the same range: the first one's kick is
            // dropped and retried; the second must win.
            let first = vec![0xAAu8; 4096];
            let second = vec![0x55u8; 4096];
            fe.write_rank(&[(0, 0, &first)]).unwrap();
            fe.write_rank(&[(0, 0, &second)]).unwrap();
            let (out, _) = fe.read_rank(&[(0, 0, 4096)]).unwrap();
            assert_eq!(out[0], second, "seed {seed} parallel {parallel}");

            let snap = sys.registry().snapshot();
            assert_eq!(
                snap.count("backend.writes"),
                2,
                "seed {seed} parallel {parallel}: a chain was double-applied"
            );
            assert_eq!(snap.count("retry.attempts"), 1);
            assert_eq!(snap.level("virtio.queue.depth.rank0"), 0);
            drop(vm);
            sys.shutdown();
        }
    }
}
