//! Multi-tenancy integration: isolation (R2), rank lifecycle, coexistence
//! with native applications, and concurrent manager load.

use std::sync::Arc;
use std::time::Duration;

use simkit::CostModel;
use upmem_driver::UpmemDriver;
use upmem_sdk::DpuSet;
use upmem_sim::{PimConfig, PimMachine};
use vpim::manager::RankState;
use vpim::{StartOpts, TenantSpec, VpimConfig, VpimError, VpimSystem};

fn host(ranks: usize) -> Arc<UpmemDriver> {
    let machine = PimMachine::new(PimConfig {
        ranks,
        functional_dpus: vec![8; ranks],
        mram_size: 1 << 20,
        ..PimConfig::small()
    });
    Arc::new(UpmemDriver::new(machine))
}

fn wait_for_naav(sys: &VpimSystem, rank: usize) {
    // Condvar-backed: wakes on the manager's state transition instead of
    // sleep-polling the table.
    assert!(
        sys.manager().wait_for_state(rank, RankState::Naav, Duration::from_secs(10)),
        "rank {rank} never recycled"
    );
}

#[test]
fn vms_never_share_a_rank_and_writes_stay_private() {
    let driver = host(2);
    let sys = VpimSystem::start(driver.clone(), VpimConfig::full(), StartOpts::default());
    let vm_a = sys.launch(TenantSpec::new("a")).unwrap();
    let vm_b = sys.launch(TenantSpec::new("b")).unwrap();
    let rank_a = vm_a.devices()[0].backend().linked_rank().unwrap();
    let rank_b = vm_b.devices()[0].backend().linked_rank().unwrap();
    assert_ne!(rank_a, rank_b);

    let mut set_a = DpuSet::alloc_vm(vm_a.frontends(), 4, CostModel::default()).unwrap();
    let mut set_b = DpuSet::alloc_vm(vm_b.frontends(), 4, CostModel::default()).unwrap();
    set_a.copy_to_heap(0, 0, b"tenant-a").unwrap();
    set_b.copy_to_heap(0, 0, b"tenant-b").unwrap();
    assert_eq!(set_a.copy_from_heap(0, 0, 8).unwrap(), b"tenant-a");
    assert_eq!(set_b.copy_from_heap(0, 0, 8).unwrap(), b"tenant-b");
    drop((set_a, set_b, vm_a, vm_b));
    sys.shutdown();
}

#[test]
fn released_rank_is_erased_before_reuse_by_other_tenant() {
    let driver = host(1);
    let sys = VpimSystem::start(driver.clone(), VpimConfig::full(), StartOpts::default());
    let rank = {
        let vm = sys.launch(TenantSpec::new("first")).unwrap();
        let mut set = DpuSet::alloc_vm(vm.frontends(), 4, CostModel::default()).unwrap();
        set.copy_to_heap(0, 0, b"residual secret").unwrap();
        let rank = vm.devices()[0].backend().linked_rank().unwrap();
        vm.release_all().unwrap();
        rank
    };
    wait_for_naav(&sys, rank);
    assert!(sys.manager().stats().resets >= 1);

    let vm = sys.launch(TenantSpec::new("second")).unwrap();
    let mut set = DpuSet::alloc_vm(vm.frontends(), 4, CostModel::default()).unwrap();
    assert_eq!(set.copy_from_heap(0, 0, 15).unwrap(), vec![0u8; 15]);
    drop(set);
    drop(vm);
    sys.shutdown();
}

#[test]
fn rank_exhaustion_is_reported_then_recovers() {
    let driver = host(1);
    let sys = VpimSystem::start(driver, VpimConfig::full(), StartOpts::new().cost_model(CostModel::default()).manager(vpim::manager::ManagerConfig {
            retry_timeout: Duration::from_millis(10),
            max_attempts: 2,
            ..Default::default()
        }));
    let vm = sys.launch(TenantSpec::new("holder")).unwrap();
    match sys.launch(TenantSpec::new("hopeful")) {
        Err(VpimError::NotLinked | VpimError::NoRankAvailable) => {}
        other => panic!("expected exhaustion, got {other:?}"),
    }
    let rank = vm.devices()[0].backend().linked_rank().unwrap();
    vm.release_all().unwrap();
    drop(vm);
    wait_for_naav(&sys, rank);
    assert!(sys.launch(TenantSpec::new("hopeful-2")).is_ok());
    sys.shutdown();
}

#[test]
fn native_applications_coexist_with_vms() {
    let driver = host(3);
    // Native app takes a rank before the manager even starts.
    let native = driver.open_perf(1, "native:ml-training").unwrap();
    native.write_dpu(0, 0, &[42; 16]).unwrap();

    let sys = VpimSystem::start(driver.clone(), VpimConfig::full(), StartOpts::default());
    sys.manager().sync_now();
    let vm_a = sys.launch(TenantSpec::new("a")).unwrap();
    let vm_b = sys.launch(TenantSpec::new("b")).unwrap();
    for vm in [&vm_a, &vm_b] {
        assert_ne!(vm.devices()[0].backend().linked_rank(), Some(1));
    }
    // The native app's data is untouched throughout.
    let mut buf = [0u8; 16];
    native.read_dpu(0, 0, &mut buf).unwrap();
    assert_eq!(buf, [42; 16]);
    drop((vm_a, vm_b, native));
    sys.shutdown();
}

#[test]
fn concurrent_allocation_requests_get_distinct_ranks() {
    // Hammer the manager's 8-thread pool from 6 threads at once.
    let driver = host(6);
    let sys = VpimSystem::start(driver, VpimConfig::full(), StartOpts::default());
    let client = sys.manager().client();
    let handles: Vec<_> = (0..6)
        .map(|i| {
            let c = client.clone();
            std::thread::spawn(move || c.alloc(&format!("vm-{i}")).map(|o| o.rank))
        })
        .collect();
    let mut ranks: Vec<usize> = handles
        .into_iter()
        .map(|h| h.join().unwrap().expect("allocation"))
        .collect();
    ranks.sort_unstable();
    ranks.dedup();
    assert_eq!(ranks.len(), 6, "duplicate rank handed out");
    sys.shutdown();
}

#[test]
fn nana_reuse_keeps_content_for_the_same_tenant() {
    // §3.5's optimization: the previous owner can get its dirty rank back
    // without a reset. Exercise through the public API; both outcomes
    // (reuse won the race, or the reset worker did) are valid — but if the
    // manager claims reuse, the content must still be there.
    let driver = host(1);
    let sys = VpimSystem::start(driver.clone(), VpimConfig::full(), StartOpts::default());
    {
        let vm = sys.launch(TenantSpec::new("tenant")).unwrap();
        let mut set = DpuSet::alloc_vm(vm.frontends(), 2, CostModel::default()).unwrap();
        set.copy_to_heap(0, 0, b"mine").unwrap();
        vm.release_all().unwrap();
    }
    // Same tenant tag re-books immediately.
    let client = sys.manager().client();
    let outcome = match client.alloc("tenant/vupmem0") {
        Ok(o) => o,
        Err(_) => {
            sys.shutdown();
            return; // exhausted mid-reset; nothing to assert
        }
    };
    if outcome.reused {
        let rank = driver.machine().rank(outcome.rank).unwrap();
        let mut buf = [0u8; 4];
        rank.read_dpu(0, 0, &mut buf).unwrap();
        assert_eq!(&buf, b"mine", "reuse must skip the reset");
    }
    sys.shutdown();
}
