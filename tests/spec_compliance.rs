//! Conformance to the virtio-PIM specification (Appendix A.1) and the
//! paper's stated invariants.

use std::sync::Arc;

use simkit::CostModel;
use upmem_driver::UpmemDriver;
use upmem_sdk::DpuSet;
use upmem_sim::{PimConfig, PimMachine};
use vpim::{spec, StartOpts, TenantSpec, VpimConfig, VpimSystem};

fn host() -> Arc<UpmemDriver> {
    let machine = PimMachine::new(PimConfig::small());
    microbench::Checksum::register(&machine);
    Arc::new(UpmemDriver::new(machine))
}

#[test]
fn device_id_is_42_with_two_queues() {
    // Appendix A.1: "the virtio device ID 42", queues transferq + controlq.
    assert_eq!(spec::DEVICE_ID, 42);
    assert_eq!(spec::TRANSFERQ_SIZE, 512);
    let driver = host();
    let sys = VpimSystem::start(driver, VpimConfig::full(), StartOpts::default());
    let vm = sys.launch(TenantSpec::new("spec")).unwrap();
    let dev = &vm.devices()[0];
    use pim_vmm::VirtioDevice;
    assert_eq!(dev.device_id(), 42);
    let mmio = dev.mmio();
    assert_eq!(mmio.read(pim_virtio::mmio::reg::DEVICE_ID).unwrap(), 42);
    // No feature bits (Appendix A.1).
    assert_eq!(mmio.read(pim_virtio::mmio::reg::DEVICE_FEATURES).unwrap(), 0);
    // Both queues configured and ready after boot.
    for q in [spec::TRANSFERQ as usize, spec::CONTROLQ as usize] {
        assert!(mmio.queue(q).unwrap().ready, "queue {q} not ready");
    }
    drop(vm);
    sys.shutdown();
}

#[test]
fn boot_cmdline_advertises_each_vupmem_device() {
    // §3.2: Firecracker passes the MMIO region and IRQ per device on the
    // kernel command line; each device adds ≤2 ms of boot time.
    let driver = host();
    let sys = VpimSystem::start(driver, VpimConfig::full(), StartOpts::default());
    let vm = sys.launch(TenantSpec::new("boot").devices(2)).unwrap();
    let report = vm.boot_report();
    let clauses = report
        .cmdline
        .matches("virtio_mmio.device=")
        .count();
    assert_eq!(clauses, 2);
    assert!(report.vupmem_boot_time.as_millis() <= 2 * 2);
    assert!(report.vupmem_boot_time.as_millis() >= 2);
    drop(vm);
    sys.shutdown();
}

#[test]
fn serialized_matrix_respects_the_130_buffer_budget() {
    // Fig. 7: at most 130 buffers regardless of data size, fitting the
    // 512-slot transferq.
    assert!(vpim::matrix::MAX_BUFFERS <= usize::from(spec::TRANSFERQ_SIZE));
    assert_eq!(vpim::matrix::MAX_BUFFERS, 130);
    assert_eq!(vpim::matrix::MAX_DPUS, 64);
    assert_eq!(vpim::matrix::MAX_PAGES_PER_DPU, 16_384);
}

#[test]
fn frontend_memory_overhead_is_bounded_by_paper_figure() {
    // §4.1: ≤1.37 MB of frontend memory per DPU.
    let bytes = VpimConfig::full().frontend_memory_overhead_per_dpu();
    assert!(bytes <= 1_380_000, "frontend overhead {bytes} B exceeds 1.37 MB");
}

#[test]
fn config_space_carries_the_hardware_description() {
    // Appendix A.1 "Device configuration layout": frequency, memory region
    // size, number of CIs — re-exposed identically to guest userspace.
    let driver = host();
    let sys = VpimSystem::start(driver.clone(), VpimConfig::full(), StartOpts::default());
    let vm = sys.launch(TenantSpec::new("cfg")).unwrap();
    let fe = vm.frontend(0);
    assert_eq!(fe.nr_dpus() as usize, driver.machine().config().dpus_in_rank(0));
    assert_eq!(fe.mram_size(), driver.machine().config().mram_size);
    drop(vm);
    sys.shutdown();
}

#[test]
fn requests_to_an_unlinked_device_relink_or_fail_typed() {
    // Appendix A.1 "Device operations": the device must ensure it is
    // linked; after an explicit release, the next request re-links
    // (dynamic rank allocation, §3.3).
    let driver = host();
    let sys = VpimSystem::start(driver, VpimConfig::full(), StartOpts::default());
    let vm = sys.launch(TenantSpec::new("relink")).unwrap();
    let mut set = DpuSet::alloc_vm(vm.frontends(), 4, CostModel::default()).unwrap();
    set.copy_to_heap(0, 0, b"before").unwrap();
    let first = vm.devices()[0].backend().linked_rank().unwrap();
    vm.frontend(0).release_rank().unwrap();
    assert!(vm.devices()[0].backend().linked_rank().is_none());
    // The next backend-reaching operation re-links through the manager
    // (possibly reusing the same NANA rank, per §3.5). The small write is
    // batched; the read flushes it and forces the relink.
    set.copy_to_heap(0, 0, b"after!").unwrap();
    assert_eq!(set.copy_from_heap(0, 0, 6).unwrap(), b"after!");
    let second = vm.devices()[0].backend().linked_rank().unwrap();
    let _ = first == second; // either outcome is legal
    drop(set);
    drop(vm);
    sys.shutdown();
}

#[test]
fn transfer_cap_is_4gb_per_rank_operation() {
    // §3.1: rank operations have a 4 GB maximum transfer capacity.
    assert_eq!(upmem_sim::geometry::MAX_RANK_XFER, 4 << 30);
}
