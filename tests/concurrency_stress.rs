//! Concurrency stress: several VMs spanning several ranks, hammered with
//! write/launch/read traffic from many client threads at once. Locks down
//! the tentpole guarantees of the real-parallelism work:
//!
//! * per-DPU data integrity — no cross-thread corruption anywhere in the
//!   frontend → virtqueue → backend → simulated-MRAM path;
//! * exact registry accounting — `backend.writes`/`backend.reads` and
//!   `vmm.vmexits` match the client-side request count to the unit, and
//!   every `virtio.queue.depth.rank{i}` gauge returns to zero.

use std::sync::Arc;
use std::thread;

use microbench::checksum::{self, Checksum};
use upmem_driver::UpmemDriver;
use upmem_sim::{PimConfig, PimMachine};
use vpim::{StartOpts, TenantSpec, VpimConfig, VpimSystem};

const ROUNDS: usize = 6;
const THREADS_PER_DEVICE: usize = 2;
const DPUS_PER_THREAD: usize = 4;
const BYTES_PER_DPU: usize = 8192;

fn host(ranks: usize) -> Arc<UpmemDriver> {
    let machine = PimMachine::new(PimConfig {
        ranks,
        functional_dpus: vec![8; ranks],
        mram_size: 1 << 20,
        ..PimConfig::small()
    });
    Checksum::register(&machine);
    Arc::new(UpmemDriver::new(machine))
}

/// The pattern thread `(vm, dev, thread)` writes to `dpu` in `round` —
/// unique per writer and round so any cross-thread mixup is visible.
fn pattern(vm: usize, dev: usize, t: usize, dpu: u32, round: usize) -> Vec<u8> {
    let seed = (vm * 131 + dev * 37 + t * 17 + dpu as usize * 7 + round * 3) as u32;
    (0..BYTES_PER_DPU)
        .map(|i| (seed.wrapping_mul(2654435761).wrapping_add(i as u32) >> 8) as u8)
        .collect()
}

fn cpu_checksum(data: &[u8]) -> u32 {
    data.iter().fold(0u32, |a, &b| a.wrapping_add(u32::from(b)))
}

#[test]
fn stress_many_vms_many_ranks_many_client_threads() {
    const VMS: usize = 2;
    const DEVICES_PER_VM: usize = 2;
    let driver = host(VMS * DEVICES_PER_VM);
    // Direct requests only (no batching/prefetch absorption) so every
    // client call maps to exactly one virtqueue request.
    let vcfg = VpimConfig::builder().batching(false).prefetch(false).parallel(true).build();
    let sys = VpimSystem::start(driver, vcfg, StartOpts::default());

    let mut vms = Vec::new();
    for v in 0..VMS {
        vms.push(sys.launch(TenantSpec::new(format!("stress-{v}")).devices(DEVICES_PER_VM)).unwrap());
    }
    // Load the checksum kernel once per device (1 request each).
    for vm in &vms {
        for fe in vm.frontends() {
            fe.load_program(checksum::Checksum::KERNEL, &[]).unwrap();
        }
    }
    let base = sys.registry().snapshot();
    let base_vmexits = base.count("vmm.vmexits");
    let base_zero_copy = base.count("datapath.bytes.zero_copy");

    thread::scope(|s| {
        for (v, vm) in vms.iter().enumerate() {
            for (d, fe) in vm.frontends().iter().enumerate() {
                for t in 0..THREADS_PER_DEVICE {
                    let fe = fe.clone();
                    s.spawn(move || {
                        let dpus: Vec<u32> = (0..DPUS_PER_THREAD)
                            .map(|k| (t * DPUS_PER_THREAD + k) as u32)
                            .collect();
                        for round in 0..ROUNDS {
                            let datas: Vec<Vec<u8>> =
                                dpus.iter().map(|&dpu| pattern(v, d, t, dpu, round)).collect();
                            // 1 request: write this thread's DPUs in one matrix.
                            let entries: Vec<(u32, u64, &[u8])> = dpus
                                .iter()
                                .zip(&datas)
                                .map(|(&dpu, data)| {
                                    (dpu, checksum::DATA_OFFSET, data.as_slice())
                                })
                                .collect();
                            fe.write_rank(&entries).unwrap();
                            // 1 request: scatter the kernel argument.
                            let args: Vec<(u32, u32)> = dpus
                                .iter()
                                .map(|&dpu| (dpu, BYTES_PER_DPU as u32))
                                .collect();
                            fe.scatter_symbol("nbytes", &args).unwrap();
                            // 1 request: boot this thread's DPUs.
                            fe.launch(&dpus, 8).unwrap();
                            // 1 request: read result word and data back.
                            let mut reqs: Vec<(u32, u64, u64)> = Vec::new();
                            for &dpu in &dpus {
                                reqs.push((dpu, checksum::RESULT_OFFSET, 4));
                                reqs.push((dpu, checksum::DATA_OFFSET, BYTES_PER_DPU as u64));
                            }
                            let (outs, _) = fe.read_rank(&reqs).unwrap();
                            for (k, data) in datas.iter().enumerate() {
                                let got =
                                    u32::from_le_bytes(outs[2 * k][..4].try_into().unwrap());
                                assert_eq!(
                                    got,
                                    cpu_checksum(data),
                                    "vm {v} dev {d} thread {t} dpu {} round {round}: \
                                     kernel saw corrupted data",
                                    dpus[k]
                                );
                                assert_eq!(
                                    &outs[2 * k + 1],
                                    data,
                                    "vm {v} dev {d} thread {t} dpu {} round {round}: \
                                     read-back mismatch",
                                    dpus[k]
                                );
                            }
                        }
                    });
                }
            }
        }
    });

    let snap = sys.registry().snapshot();
    let n_threads = VMS * DEVICES_PER_VM * THREADS_PER_DEVICE;
    // Exact totals: every client call above is exactly one request.
    assert_eq!(
        snap.count("backend.writes"),
        (n_threads * ROUNDS) as u64,
        "one WriteRank request per thread-round: {snap:?}"
    );
    assert_eq!(
        snap.count("backend.reads"),
        (n_threads * ROUNDS) as u64,
        "one ReadRank request per thread-round: {snap:?}"
    );
    // 4 requests per thread-round (write, scatter, launch, read).
    assert_eq!(
        snap.count("vmm.vmexits") - base_vmexits,
        (n_threads * ROUNDS * 4) as u64,
        "every request is exactly one kick"
    );
    // All in-flight accounting drained.
    for i in 0..DEVICES_PER_VM {
        assert_eq!(
            snap.level(&format!("virtio.queue.depth.rank{i}")),
            0,
            "queue depth gauge must return to zero: {snap:?}"
        );
    }
    // Zero-copy data path, to the byte: each thread-round moves
    // DPUS_PER_THREAD payloads on the write and, on the read, one 4-byte
    // result word plus the full payload per DPU. (The hit/miss split is
    // shard-dependent under parallel dispatch, but the moved-bytes total
    // and the guard drop balance are deterministic.)
    let per_round =
        DPUS_PER_THREAD * BYTES_PER_DPU + DPUS_PER_THREAD * (4 + BYTES_PER_DPU);
    assert_eq!(
        snap.count("datapath.bytes.zero_copy") - base_zero_copy,
        (n_threads * ROUNDS * per_round) as u64,
        "zero-copy byte accounting: {snap:?}"
    );
    assert_eq!(
        snap.level("datapath.pool.outstanding"),
        0,
        "every PoolGuard must return its buffer: {snap:?}"
    );
    assert!(
        snap.count("datapath.pool.hits") > snap.count("datapath.pool.misses"),
        "pool must recycle under steady traffic: {snap:?}"
    );
    drop(vms);
    sys.shutdown();
}

#[test]
fn concurrent_threads_share_one_frontend_without_losing_completions() {
    // Tight loop on a single device: many threads, small distinct regions,
    // maximal contention on the shared completions map and used ring.
    let driver = host(1);
    let vcfg = VpimConfig::builder().batching(false).prefetch(false).parallel(true).build();
    let sys = VpimSystem::start(driver, vcfg, StartOpts::default());
    let vm = sys.launch(TenantSpec::new("contend")).unwrap();
    let fe = vm.frontend(0);

    thread::scope(|s| {
        for t in 0..8u32 {
            let fe = fe.clone();
            s.spawn(move || {
                let dpu = t; // one DPU per thread
                for round in 0..24u64 {
                    let data = vec![(t as u8).wrapping_add(round as u8); 512];
                    fe.write_rank(&[(dpu, 0, &data)]).unwrap();
                    let (outs, _) = fe.read_rank(&[(dpu, 0, 512)]).unwrap();
                    assert_eq!(outs[0], data, "thread {t} round {round}");
                }
            });
        }
    });

    let snap = sys.registry().snapshot();
    assert_eq!(snap.level("virtio.queue.depth.rank0"), 0, "{snap:?}");
    drop(vm);
    sys.shutdown();
}
