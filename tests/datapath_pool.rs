//! Zero-copy data-path invariants at the system level:
//!
//! * the pooled path is **bit-identical** across dispatch modes — payloads,
//!   virtual-time reports, and the deterministic pool totals
//!   (`hits + misses`, `datapath.bytes.zero_copy`) all agree between
//!   `Sequential` and `Parallel`, even though the hit/miss *split* may
//!   differ per worker shard;
//! * every `PoolGuard` returns its buffer (`datapath.pool.outstanding`
//!   drains to zero);
//! * the steady state is allocation-free: after warmup the pool serves
//!   ≥ 99% of takes from recycled buffers.

use std::sync::Arc;

use upmem_driver::UpmemDriver;
use upmem_sim::{PimConfig, PimMachine};
use vpim::{OpReport, StartOpts, TenantSpec, VpimConfig, VpimSystem};

const RANKS: usize = 2;
const DPUS_PER_RANK: usize = 8;
const BYTES_PER_DPU: usize = 8192;

fn host() -> Arc<UpmemDriver> {
    let machine = PimMachine::new(PimConfig {
        ranks: RANKS,
        functional_dpus: vec![DPUS_PER_RANK; RANKS],
        mram_size: 1 << 20,
        ..PimConfig::small()
    });
    Arc::new(UpmemDriver::new(machine))
}

fn config(parallel: bool) -> VpimConfig {
    VpimConfig::builder().batching(false).prefetch(false).parallel(parallel).build()
}

fn payload(rank: usize, dpu: u32, round: usize) -> Vec<u8> {
    let seed = (rank * 89 + dpu as usize * 31 + round * 7 + 3) as u32;
    (0..BYTES_PER_DPU)
        .map(|i| (seed.wrapping_mul(48271).wrapping_add(i as u32) >> 5) as u8)
        .collect()
}

/// Pool counters after a run: `(hits, misses, zero_copy_bytes, outstanding)`.
type PoolTotals = (u64, u64, u64, i64);

/// Runs `rounds` of full-rank write+read on every rank and returns the
/// reports, the read-back payloads, and the pool counters.
fn run(parallel: bool, rounds: usize) -> (Vec<OpReport>, Vec<Vec<u8>>, PoolTotals) {
    let sys = VpimSystem::start(host(), config(parallel), StartOpts::default());
    let vm = sys.launch(TenantSpec::new("pool").devices(RANKS)).unwrap();
    let mut reports = Vec::new();
    let mut outputs = Vec::new();
    for round in 0..rounds {
        for (r, fe) in vm.frontends().iter().enumerate() {
            let datas: Vec<Vec<u8>> =
                (0..DPUS_PER_RANK as u32).map(|d| payload(r, d, round)).collect();
            let entries: Vec<(u32, u64, &[u8])> = datas
                .iter()
                .enumerate()
                .map(|(d, data)| (d as u32, 0, data.as_slice()))
                .collect();
            reports.push(fe.write_rank(&entries).unwrap());
            let reqs: Vec<(u32, u64, u64)> = (0..DPUS_PER_RANK as u32)
                .map(|d| (d, 0, BYTES_PER_DPU as u64))
                .collect();
            let (outs, rep) = fe.read_rank(&reqs).unwrap();
            reports.push(rep);
            outputs.extend(outs);
        }
    }
    let snap = sys.registry().snapshot();
    let hits = snap.count("datapath.pool.hits");
    let misses = snap.count("datapath.pool.misses");
    let zero_copy = snap.count("datapath.bytes.zero_copy");
    let outstanding = snap.level("datapath.pool.outstanding");
    drop(vm);
    sys.shutdown();
    (reports, outputs, (hits, misses, zero_copy, outstanding))
}

#[test]
fn pooled_path_is_bit_identical_across_dispatch_modes() {
    let (seq_reports, seq_out, (seq_hits, seq_misses, seq_zero_copy, seq_outstanding)) =
        run(false, 2);
    let (par_reports, par_out, (par_hits, par_misses, par_zero_copy, par_outstanding)) =
        run(true, 2);

    // Payloads and virtual-time reports: bit-identical.
    assert_eq!(seq_out, par_out);
    assert_eq!(seq_reports.len(), par_reports.len());
    for (i, (s, p)) in seq_reports.iter().zip(&par_reports).enumerate() {
        assert_eq!(s, p, "request {i}: pooled path leaked into virtual time");
    }
    // What was read back is what was written (last round wins per DPU).
    let per_round = RANKS * DPUS_PER_RANK;
    for (i, out) in seq_out.iter().enumerate() {
        let round = i / per_round;
        let r = (i % per_round) / DPUS_PER_RANK;
        let d = (i % DPUS_PER_RANK) as u32;
        assert_eq!(out, &payload(r, d, round), "round {round} rank {r} dpu {d}");
    }
    // The hit/miss split is shard-dependent, but the totals are part of the
    // determinism contract: same takes, same zero-copy byte count, and no
    // guard leaked in either mode.
    assert_eq!(
        seq_hits + seq_misses,
        par_hits + par_misses,
        "pool take count depends on dispatch mode"
    );
    assert_eq!(seq_zero_copy, par_zero_copy, "zero-copy bytes depend on dispatch mode");
    assert_eq!(seq_outstanding, 0, "sequential run leaked pool guards");
    assert_eq!(par_outstanding, 0, "parallel run leaked pool guards");
    // Exact byte accounting: every write and every read of every round
    // moves DPUS_PER_RANK * BYTES_PER_DPU bytes through run_entries.
    let expected = (2 * 2 * RANKS * DPUS_PER_RANK * BYTES_PER_DPU) as u64;
    assert_eq!(seq_zero_copy, expected);
}

#[test]
fn steady_state_is_allocation_free() {
    const ROUNDS: usize = 150;
    let (_, outputs, (hits, misses, zero_copy, outstanding)) = run(false, ROUNDS);
    assert_eq!(outputs.len(), ROUNDS * RANKS * DPUS_PER_RANK);
    assert_eq!(outstanding, 0, "leaked pool guards");
    let expected = (2 * ROUNDS * RANKS * DPUS_PER_RANK * BYTES_PER_DPU) as u64;
    assert_eq!(zero_copy, expected);
    // Same-size traffic repeated: after the first rounds warm the size
    // classes, every take is served from recycled buffers. ≥ 99% hit rate
    // leaves room only for the cold-start misses.
    let takes = hits + misses;
    assert!(
        hits * 100 >= takes * 99,
        "steady state allocates: {hits} hits / {misses} misses"
    );
}
