//! Property tests for the rank scheduler: no double-grant under churn,
//! bit-identical checkpoint/restore round trips, and FIFO admission order
//! regardless of queue churn.

use std::collections::HashMap;
use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use simkit::{CostModel, MetricsRegistry};
use upmem_driver::UpmemDriver;
use upmem_sim::{PimConfig, PimMachine, Rank};
use vpim::manager::{Manager, ManagerConfig};
use vpim::sched::{empty_slot, AdmissionQueue, RankSlot, SchedPolicy, Scheduler};
use vpim::SchedSection;

fn snappy() -> ManagerConfig {
    ManagerConfig {
        retry_timeout: Duration::from_millis(2),
        max_attempts: 1,
        ..ManagerConfig::default()
    }
}

fn host(ranks: usize) -> (Arc<UpmemDriver>, Manager) {
    let cfg = PimConfig {
        ranks,
        functional_dpus: vec![4; ranks],
        mram_size: 1 << 16,
        ..PimConfig::small()
    };
    let driver = Arc::new(UpmemDriver::new(PimMachine::new(cfg)));
    let mgr = Manager::start(driver.clone(), CostModel::default(), snappy());
    (driver, mgr)
}

proptest! {
    /// Any sequence of tenant touches on an oversubscribed host keeps two
    /// invariants: (a) no two live mappings ever point at the same rank
    /// (no double-grant), and (b) every re-granted tenant reads back
    /// exactly the bytes it wrote before it was preempted (checkpoint /
    /// restore identity).
    #[test]
    fn no_double_grant_and_restores_are_bit_identical(
        touches in proptest::collection::vec(0usize..4, 1..28),
    ) {
        let (driver, mgr) = host(2);
        let sched = Scheduler::new(
            driver.clone(),
            mgr.client(),
            SchedSection { oversubscription: true, quantum_ms: 0, ..SchedSection::default() },
            CostModel::default(),
            &MetricsRegistry::new(),
        );
        let tenants = ["t0", "t1", "t2", "t3"];
        let slots: Vec<RankSlot> = (0..4).map(|_| empty_slot()).collect();
        let mut expected: HashMap<usize, Vec<u8>> = HashMap::new();
        for (step, &t) in touches.iter().enumerate() {
            let mut guard = slots[t].lock();
            if guard.is_none() {
                // (Re)acquire; a returning tenant must be restored.
                let grant = match sched.acquire(tenants[t], &slots[t]) {
                    Ok(g) => g,
                    Err(e) => return Err(TestCaseError::fail(format!("acquire: {e}"))),
                };
                // Restored exactly when the tenant was preempted with state.
                prop_assert_eq!(grant.restored, expected.contains_key(&t));
                if let Some(want) = expected.get(&t) {
                    let mut buf = vec![0u8; want.len()];
                    grant.mapping.rank().read_dpu(0, 0, &mut buf).unwrap();
                    prop_assert!(&buf == want, "tenant {}'s bytes torn by restore", t);
                }
                *guard = Some(grant.mapping);
            }
            // Touch: overwrite this tenant's pattern through its mapping.
            let data = vec![(t as u8) ^ (step as u8).wrapping_mul(31); 64];
            guard.as_ref().unwrap().rank().write_dpu(0, 0, &data).unwrap();
            expected.insert(t, data);
            drop(guard);
            // Invariant: live mappings occupy pairwise-distinct ranks.
            let live: Vec<usize> = slots
                .iter()
                .filter_map(|s| s.lock().as_ref().map(|m| m.rank_id()))
                .collect();
            let mut dedup = live.clone();
            dedup.sort_unstable();
            dedup.dedup();
            prop_assert!(dedup.len() == live.len(), "double-granted rank: {:?}", live);
        }
        for s in &slots {
            s.lock().take();
        }
        mgr.shutdown();
    }

    /// snapshot → scribble → reset → restore reproduces the captured rank
    /// bit-for-bit, for arbitrary resident data.
    #[test]
    fn rank_snapshot_reset_restore_roundtrip(
        writes in proptest::collection::vec(
            (0usize..4, 0u64..1024, proptest::collection::vec(any::<u8>(), 1..128)),
            1..12,
        ),
    ) {
        let cfg = PimConfig {
            ranks: 1,
            functional_dpus: vec![4],
            mram_size: 1 << 16,
            ..PimConfig::small()
        };
        let rank = Rank::new(0, &cfg);
        for (dpu, off, data) in &writes {
            rank.write_dpu(*dpu, *off, data).unwrap();
        }
        let snap = rank.snapshot_quiescent().unwrap();
        let mut originals = Vec::new();
        for dpu in 0..4 {
            let mut buf = vec![0u8; 2048];
            rank.read_dpu(dpu, 0, &mut buf).unwrap();
            originals.push(buf);
        }
        // Scribble, then wipe.
        rank.write_dpu(0, 0, &[0xEE; 512]).unwrap();
        rank.reset_content();
        rank.restore(&snap).unwrap();
        for (dpu, want) in originals.iter().enumerate() {
            let mut buf = vec![0u8; 2048];
            rank.read_dpu(dpu, 0, &mut buf).unwrap();
            prop_assert!(&buf == want, "dpu {} differs after restore", dpu);
        }
    }

    /// Under arbitrary push/remove churn, a FIFO queue always serves the
    /// oldest surviving ticket.
    #[test]
    fn fifo_head_is_always_oldest_surviving_ticket(
        ops in proptest::collection::vec((any::<bool>(), 0u64..24), 1..48),
    ) {
        let mut q = AdmissionQueue::new(SchedPolicy::Fifo);
        let mut alive: Vec<u64> = Vec::new();
        let mut next = 0u64;
        for (push, pick) in ops {
            if push || alive.is_empty() {
                q.push(&format!("tenant-{next}"), next, pick);
                alive.push(next);
                next += 1;
            } else {
                let victim = alive[(pick as usize) % alive.len()];
                prop_assert!(q.remove(victim));
                alive.retain(|&x| x != victim);
            }
            prop_assert_eq!(q.len(), alive.len());
            match q.head() {
                Some(w) => prop_assert_eq!(Some(w.ticket), alive.iter().copied().min()),
                None => prop_assert!(alive.is_empty()),
            }
        }
    }
}
