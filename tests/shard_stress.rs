//! Multi-threaded churn over the sharded control plane with *exact*
//! end-state accounting.
//!
//! Unlike the differential suite (`control_plane_equivalence.rs`), which
//! proves the sharded implementations equal their single-lock oracles
//! sequentially, this suite hammers them from 8–64 real threads and then
//! checks closed-form invariants that sharding must not break:
//!
//! * no rank is lost or double-granted across any interleaving,
//! * `sched.queue.depth` folds back to exactly 0,
//! * transition/grant counters match arithmetic over the per-thread tallies,
//! * striped metric cells fold to exact totals.
//!
//! `SHARD_SEED` (env) varies the per-thread operation mix; `ci/shard-gate.sh`
//! sweeps it together with `RUST_TEST_THREADS` the way the chaos gate does.

use std::collections::HashSet;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use simkit::{CostModel, MetricsRegistry, MetricValue, VirtualNanos};
use upmem_driver::UpmemDriver;
use upmem_sim::{PimConfig, PimMachine};
use vpim::manager::table::TableState;
use vpim::manager::{Manager, ManagerConfig, RankState};
use vpim::sched::{empty_slot, SchedPolicy, Scheduler, ShardedAdmissionQueue};
use vpim::SchedSection;

/// The interleaving seed: swept by `ci/shard-gate.sh`, defaulting to a
/// fixed value so a bare `cargo test` stays reproducible.
fn shard_seed() -> u64 {
    std::env::var("SHARD_SEED").ok().and_then(|s| s.parse().ok()).unwrap_or(0x5eed)
}

/// xorshift64* — cheap deterministic per-thread op mixing.
fn next_rand(state: &mut u64) -> u64 {
    let mut x = *state | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    *state = x;
    x.wrapping_mul(0x2545_f491_4f6c_dd1d)
}

fn driver(ranks: usize) -> Arc<UpmemDriver> {
    let cfg = PimConfig {
        ranks,
        functional_dpus: vec![2; ranks],
        mram_size: 1 << 14,
        ..PimConfig::small()
    };
    Arc::new(UpmemDriver::new(PimMachine::new(cfg)))
}

/// `threads` workers churn alloc → (maybe ckpt) → recycle on one sharded
/// table. End state: every rank NAAV, nothing lost, nothing double-granted,
/// and the transition counter equals its closed form
/// `2·allocs + ckpts` (each alloc is one edge, each recycle one, each
/// checkpoint one).
fn table_churn(threads: usize, rounds: usize) {
    let table = Arc::new(TableState::new(driver(8), CostModel::default()));
    // Double-grant detector: a rank may be inside at most one holder.
    let held: Arc<Mutex<HashSet<usize>>> = Arc::new(Mutex::new(HashSet::new()));
    let allocs = Arc::new(AtomicU64::new(0));
    let fails = Arc::new(AtomicU64::new(0));
    let ckpts = Arc::new(AtomicU64::new(0));
    let seed = shard_seed();
    let workers: Vec<_> = (0..threads)
        .map(|t| {
            let (table, held) = (table.clone(), held.clone());
            let (allocs, fails, ckpts) = (allocs.clone(), fails.clone(), ckpts.clone());
            std::thread::spawn(move || {
                let mut rng = seed ^ (t as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15);
                let owner = format!("vm-{t}");
                for _ in 0..rounds {
                    match table.alloc(&owner, Duration::from_millis(1), 1) {
                        Ok(outcome) => {
                            assert!(
                                held.lock().unwrap().insert(outcome.rank),
                                "rank {} double-granted",
                                outcome.rank
                            );
                            assert!(!outcome.reused, "no NANA ranks exist in this churn");
                            allocs.fetch_add(1, Ordering::Relaxed);
                            if next_rand(&mut rng) & 1 == 1 {
                                assert!(table.mark_ckpt(outcome.rank));
                                ckpts.fetch_add(1, Ordering::Relaxed);
                            }
                            assert!(held.lock().unwrap().remove(&outcome.rank));
                            assert!(table.recycle(outcome.rank), "held rank must recycle");
                        }
                        Err(_) => {
                            fails.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    // No rank lost: all 8 come back NAAV and the lock-free view agrees.
    let states = table.states();
    assert_eq!(states.len(), 8);
    for (r, s) in states.iter().enumerate() {
        assert_eq!(*s, RankState::Naav, "rank {r} lost to state {s:?}");
        assert_eq!(table.state_of(r), Some(*s));
    }
    assert!(held.lock().unwrap().is_empty());
    let (a, f, c) =
        (allocs.load(Ordering::Relaxed), fails.load(Ordering::Relaxed), ckpts.load(Ordering::Relaxed));
    assert_eq!(a + f, (threads * rounds) as u64);
    let stats = table.stats();
    assert_eq!(stats.allocations, a);
    assert_eq!(stats.reuses, 0);
    assert_eq!(stats.resets, 0);
    assert_eq!(stats.abandoned, f);
    // Closed form: alloc (NAAV→ALLO) + optional ckpt (ALLO→CKPT) +
    // recycle (ALLO/CKPT→NAAV) per successful round.
    assert_eq!(table.transitions(), 2 * a + c);
}

#[test]
fn table_churn_8_threads_loses_no_ranks() {
    table_churn(8, 60);
}

#[test]
fn table_churn_64_threads_loses_no_ranks() {
    table_churn(64, 12);
}

/// 8 pushers and 4 poppers race on one sharded queue; every pushed ticket
/// is popped exactly once and every depth counter folds back to zero.
#[test]
fn queue_concurrent_push_pop_exact_accounting() {
    const PUSHERS: usize = 8;
    const PER_PUSHER: usize = 200;
    const TOTAL: usize = PUSHERS * PER_PUSHER;
    let q = Arc::new(ShardedAdmissionQueue::new(SchedPolicy::Fifo));
    let popped = Arc::new(Mutex::new(Vec::<u64>::new()));
    let taken = Arc::new(AtomicUsize::new(0));
    let seed = shard_seed();
    let mut workers = Vec::new();
    for t in 0..PUSHERS {
        let q = q.clone();
        workers.push(std::thread::spawn(move || {
            let mut rng = seed ^ (t as u64).wrapping_mul(0xa076_1d64_78bd_642f);
            for _ in 0..PER_PUSHER {
                let tenant = format!("vm-{}", next_rand(&mut rng) % 23);
                q.push(&tenant, next_rand(&mut rng) % 1_000);
            }
        }));
    }
    for _ in 0..4 {
        let (q, popped, taken) = (q.clone(), popped.clone(), taken.clone());
        workers.push(std::thread::spawn(move || loop {
            if let Some(w) = q.pop_head() {
                popped.lock().unwrap().push(w.ticket);
                taken.fetch_add(1, Ordering::Relaxed);
            } else if taken.load(Ordering::Relaxed) >= TOTAL {
                return;
            } else {
                std::thread::yield_now();
            }
        }));
    }
    for w in workers {
        w.join().unwrap();
    }
    let tickets = popped.lock().unwrap();
    assert_eq!(tickets.len(), TOTAL, "every push popped exactly once");
    assert_eq!(tickets.iter().collect::<HashSet<_>>().len(), TOTAL, "no ticket served twice");
    assert_eq!(q.len(), 0, "per-shard depth counters must fold to zero");
    assert!(q.is_empty());
    assert!(q.head().is_none());
}

/// 8 tenant threads time-share 2 ranks through the oversubscribed
/// scheduler (grants, preemptions, checkpoint park/restore, voluntary
/// releases racing). Afterwards the accounting must be *exact*: the
/// `sched.grants` counter equals the threads' own success tally, the
/// queue-depth gauge folds to 0, and no lease or parked state survives.
#[test]
fn oversubscribed_churn_settles_queue_depth_and_grants() {
    const TENANTS: usize = 8;
    const ROUNDS: usize = 5;
    let driver = driver(2);
    let mcfg = ManagerConfig {
        retry_timeout: Duration::from_millis(2),
        max_attempts: 1,
        ..ManagerConfig::default()
    };
    let registry = MetricsRegistry::new();
    let mgr = Manager::start(driver.clone(), CostModel::default(), mcfg);
    let cfg = SchedSection {
        oversubscription: true,
        quantum_ms: 1,
        admission_timeout_ms: 30_000,
        ..SchedSection::default()
    };
    let sched =
        Scheduler::new(driver.clone(), mgr.client(), cfg, CostModel::default(), &registry);
    let successes = Arc::new(AtomicU64::new(0));
    let timeouts = Arc::new(AtomicU64::new(0));
    let seed = shard_seed();
    let workers: Vec<_> = (0..TENANTS)
        .map(|t| {
            let sched = sched.clone();
            let (successes, timeouts) = (successes.clone(), timeouts.clone());
            std::thread::spawn(move || {
                let mut rng = seed ^ (t as u64).wrapping_mul(0x8cb9_2ba7_2f3d_8dd7);
                let tenant = format!("vm-{t}");
                let slot = empty_slot();
                for _ in 0..ROUNDS {
                    {
                        let mut guard = slot.lock();
                        match sched.acquire(&tenant, &slot) {
                            Ok(grant) => {
                                *guard = Some(grant.mapping);
                                successes.fetch_add(1, Ordering::Relaxed);
                            }
                            Err(_) => {
                                timeouts.fetch_add(1, Ordering::Relaxed);
                                continue;
                            }
                        }
                    }
                    // Do a little accountable work, sometimes enough to
                    // burn the quantum and become the preferred victim.
                    sched.charge(&tenant, VirtualNanos::from_nanos(next_rand(&mut rng) % 3_000_000));
                    std::thread::yield_now();
                    // Voluntary release — unless a preempter already took
                    // the mapping out of the slot (then the lease is gone
                    // and our state is parked; the next acquire restores it).
                    let took = slot.lock().take();
                    if let Some(mapping) = took {
                        drop(mapping);
                        sched.notify_release(&tenant);
                    }
                }
                // Leave nothing behind: evict any still-parked checkpoint
                // and any lease from a final preempted-but-never-reacquired
                // round.
                if let Some(mapping) = slot.lock().take() {
                    drop(mapping);
                }
                sched.notify_release(&tenant);
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let (ok, bad) = (successes.load(Ordering::Relaxed), timeouts.load(Ordering::Relaxed));
    assert_eq!(ok + bad, (TENANTS * ROUNDS) as u64);
    assert!(ok > 0, "churn must make progress");
    // Exact end-state accounting.
    assert_eq!(sched.queue_depth(), 0, "admission queue must drain");
    let stats = sched.stats();
    assert_eq!(stats.grants, ok, "sched.grants must equal the threads' tally");
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.running, 0, "all leases released");
    assert_eq!(stats.parked_bytes, 0, "no checkpoint left parked");
    assert!(stats.restores <= stats.preemptions, "every restore had a preemption");
    let snap = registry.snapshot();
    assert_eq!(snap.get("sched.queue.depth"), Some(&MetricValue::Level(0)));
    assert_eq!(snap.count("sched.grants"), ok);
    mgr.shutdown();
}

/// Striped metric cells fold to exact closed-form totals no matter which
/// threads performed the updates (the tentpole's telemetry leg).
#[test]
fn striped_metrics_fold_to_closed_forms() {
    const THREADS: usize = 16;
    const PER_THREAD: u64 = 10_000;
    let registry = MetricsRegistry::new();
    let counter = registry.counter("stress.count");
    let gauge = registry.gauge("stress.level");
    let time = registry.time("stress.time");
    let hist = registry.histogram("stress.hist");
    let workers: Vec<_> = (0..THREADS)
        .map(|_| {
            let (c, g, t, h) = (counter.clone(), gauge.clone(), time.clone(), hist.clone());
            std::thread::spawn(move || {
                for _ in 0..PER_THREAD {
                    c.inc();
                    g.add(3);
                    g.sub(3);
                    t.add(VirtualNanos::from_nanos(2));
                    h.record(VirtualNanos::from_nanos(1));
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let n = THREADS as u64 * PER_THREAD;
    assert_eq!(counter.get(), n);
    assert_eq!(gauge.get(), 0, "balanced add/sub must fold to zero across threads");
    assert_eq!(time.get(), VirtualNanos::from_nanos(2 * n));
    assert_eq!(hist.count(), n);
    let snap = registry.snapshot();
    assert_eq!(snap.count("stress.count"), n);
    assert_eq!(snap.get("stress.level"), Some(&MetricValue::Level(0)));
    assert_eq!(
        snap.get("stress.time"),
        Some(&MetricValue::Time(VirtualNanos::from_nanos(2 * n)))
    );
}
