//! Two-clock determinism: real OS-thread parallelism must never leak into
//! virtual time. The same multi-rank workload run under
//! `DispatchMode::Sequential` and `DispatchMode::Parallel` produces
//! bit-identical payloads and per-request virtual-time reports, and a
//! parallel run repeated is bit-identical to itself (no wall-clock
//! interleaving feeds back into the figures).

use std::sync::Arc;

use microbench::checksum::{self, Checksum};
use simkit::CostModel;
use upmem_driver::UpmemDriver;
use upmem_sdk::DpuSet;
use upmem_sim::{PimConfig, PimMachine};
use vpim::{OpReport, StartOpts, TenantSpec, VpimConfig, VpimSystem};

const RANKS: usize = 4;
const DPUS_PER_RANK: usize = 8;
const BYTES_PER_DPU: usize = 12_000;

fn host() -> Arc<UpmemDriver> {
    let machine = PimMachine::new(PimConfig {
        ranks: RANKS,
        functional_dpus: vec![DPUS_PER_RANK; RANKS],
        mram_size: 1 << 20,
        ..PimConfig::small()
    });
    Checksum::register(&machine);
    Arc::new(UpmemDriver::new(machine))
}

fn config(parallel: bool) -> VpimConfig {
    VpimConfig::builder().batching(false).prefetch(false).parallel(parallel).build()
}

/// Per-DPU payload: deterministic, unique per (rank, dpu).
fn payload(rank: usize, dpu: u32) -> Vec<u8> {
    let seed = (rank * 97 + dpu as usize * 13 + 5) as u32;
    (0..BYTES_PER_DPU)
        .map(|i| (seed.wrapping_mul(48271).wrapping_add(i as u32) >> 7) as u8)
        .collect()
}

/// One multi-rank workload directly against the frontends: write a matrix
/// to every rank, read it back. Returns every per-request report and every
/// payload read back.
fn run_rank_ops(parallel: bool) -> (Vec<OpReport>, Vec<Vec<Vec<u8>>>) {
    let sys = VpimSystem::start(host(), config(parallel), StartOpts::default());
    let vm = sys.launch(TenantSpec::new("det").devices(RANKS)).unwrap();
    let mut reports = Vec::new();
    let mut outputs = Vec::new();
    for (r, fe) in vm.frontends().iter().enumerate() {
        let datas: Vec<Vec<u8>> =
            (0..DPUS_PER_RANK as u32).map(|d| payload(r, d)).collect();
        let entries: Vec<(u32, u64, &[u8])> = datas
            .iter()
            .enumerate()
            .map(|(d, data)| (d as u32, 4096, data.as_slice()))
            .collect();
        reports.push(fe.write_rank(&entries).unwrap());
        let reqs: Vec<(u32, u64, u64)> = (0..DPUS_PER_RANK as u32)
            .map(|d| (d, 4096, BYTES_PER_DPU as u64))
            .collect();
        let (outs, r) = fe.read_rank(&reqs).unwrap();
        reports.push(r);
        outputs.push(outs);
    }
    drop(vm);
    sys.shutdown();
    (reports, outputs)
}

#[test]
fn per_request_reports_and_payloads_identical_across_dispatch_modes() {
    let (seq_reports, seq_out) = run_rank_ops(false);
    let (par_reports, par_out) = run_rank_ops(true);
    // Payloads bit-identical.
    assert_eq!(seq_out, par_out);
    // Every virtual-time field of every request: duration, DDR share,
    // message count, rank ops, and the full Fig. 13 step breakdown.
    assert_eq!(seq_reports.len(), par_reports.len());
    for (i, (s, p)) in seq_reports.iter().zip(&par_reports).enumerate() {
        assert_eq!(s, p, "request {i}: dispatch mode leaked into virtual time");
    }
    // And the data read back is what was written.
    for (r, outs) in seq_out.iter().enumerate() {
        for (d, out) in outs.iter().enumerate() {
            assert_eq!(out, &payload(r, d as u32), "rank {r} dpu {d}");
        }
    }
}

/// The full checksum application over every rank through the SDK; returns
/// figure-relevant numbers: verification result, checksum value, app/driver
/// timeline, and the Fig. 16 per-rank completion offsets.
fn run_checksum(parallel: bool) -> (bool, u32, simkit::Timeline, Vec<(usize, u64)>) {
    let sys = VpimSystem::start(host(), config(parallel), StartOpts::default());
    let vm = sys.launch(TenantSpec::new("det").devices(RANKS)).unwrap();
    let mut set =
        DpuSet::alloc_vm(vm.frontends(), RANKS * DPUS_PER_RANK, CostModel::default())
            .unwrap();
    let run = Checksum::run(&mut set, 16_384, 7).unwrap();
    let per_rank: Vec<(usize, u64)> =
        set.last_per_rank().iter().map(|(i, d)| (*i, d.as_nanos())).collect();
    let timeline = set.take_timeline();
    drop(set);
    drop(vm);
    sys.shutdown();
    (run.verified, run.value, timeline, per_rank)
}

#[test]
fn parallel_runs_are_bit_identical_across_repeats() {
    let a = run_checksum(true);
    let b = run_checksum(true);
    assert!(a.0, "checksum must verify");
    assert_eq!(a.1, b.1, "checksum value");
    assert_eq!(a.2, b.2, "timeline must not depend on thread interleaving");
    assert_eq!(a.3, b.3, "per-rank completion offsets (Fig. 16)");
}

#[test]
fn sequential_runs_are_bit_identical_across_repeats() {
    let a = run_checksum(false);
    let b = run_checksum(false);
    assert!(a.0, "checksum must verify");
    assert_eq!(a.1, b.1);
    assert_eq!(a.2, b.2);
    assert_eq!(a.3, b.3);
}

#[test]
fn modes_agree_on_everything_but_the_overlap_model() {
    // Results and counters match across modes; only the composed duration
    // model differs (sequential back-to-back vs parallel max/DDR-bound —
    // Fig. 15/16), and it differs deterministically.
    let seq = run_checksum(false);
    let par = run_checksum(true);
    assert_eq!(seq.1, par.1, "checksum value is mode-independent");
    assert_eq!(
        seq.2.messages(),
        par.2.messages(),
        "guest<->VMM message count is mode-independent"
    );
    assert_eq!(seq.2.rank_ops(), par.2.rank_ops());
    assert_eq!(seq.3.len(), par.3.len(), "same number of per-rank series");
    // Sequential completion offsets accumulate, so the last rank finishes
    // no earlier than under the overlapped parallel model.
    let last_seq = seq.3.last().unwrap().1;
    let last_par = par.3.last().unwrap().1;
    assert!(last_seq >= last_par, "seq {last_seq} vs par {last_par}");
}

#[test]
fn data_offset_matches_checksum_kernel_layout() {
    // Guard the constant used above: the kernel reads from DATA_OFFSET.
    assert_eq!(checksum::DATA_OFFSET, 4096);
}
