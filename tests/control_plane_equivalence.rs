//! Differential (oracle-backed) suite for the sharded control plane.
//!
//! PR 7 sharded the manager's rank table, the scheduler's admission
//! queue, and the scheduler's tenant state. The pre-sharding single-lock
//! implementations were retained verbatim —
//! [`vpim::manager::reference::ReferenceTable`] and
//! [`vpim::sched::AdmissionQueue`] — and this suite replays generated op
//! sequences against both implementations, asserting identical grant
//! orders, rank states, head orders, statistics and `sched.*` registry
//! totals. Any semantic drift introduced by sharding fails here first.

use std::sync::Arc;
use std::time::Duration;

use proptest::prelude::*;
use simkit::{CostModel, MetricsRegistry};
use upmem_driver::{RankStatus, UpmemDriver};
use upmem_sim::{PimConfig, PimMachine};
use vpim::manager::reference::ReferenceTable;
use vpim::manager::table::TableState;
use vpim::manager::{Manager, ManagerConfig, RankState};
use vpim::sched::{AdmissionQueue, RankSlot, SchedPolicy, Scheduler, ShardedAdmissionQueue};
use vpim::SchedSection;

const RANKS: usize = 5;

fn driver() -> Arc<UpmemDriver> {
    let cfg = PimConfig {
        ranks: RANKS,
        functional_dpus: vec![2; RANKS],
        mram_size: 1 << 14,
        ..PimConfig::small()
    };
    Arc::new(UpmemDriver::new(PimMachine::new(cfg)))
}

fn quick() -> Duration {
    Duration::from_millis(2)
}

/// One synthetic sysfs sweep: the test owns the status/claims vectors and
/// feeds the *same* snapshot to both tables, so reconciliation decisions
/// depend only on table state — which must match.
#[derive(Clone)]
struct FakeBoard {
    status: Vec<RankStatus>,
    claims: Vec<u64>,
}

impl FakeBoard {
    fn new() -> Self {
        FakeBoard { status: vec![RankStatus::Free; RANKS], claims: vec![0; RANKS] }
    }

    fn snapshot(&self) -> Vec<(RankStatus, u64)> {
        self.status.iter().cloned().zip(self.claims.iter().copied()).collect()
    }
}

proptest! {
    /// The sharded rank table and the single-lock oracle walk identical
    /// state machines for any op sequence: same alloc outcomes (rank and
    /// reuse flag), same reconciliation decisions, same per-rank states,
    /// same statistics and transition counts.
    #[test]
    fn sharded_table_matches_single_lock_oracle(
        ops in proptest::collection::vec((0u8..6, 0u8..32), 1..40),
    ) {
        let sharded = TableState::new(driver(), CostModel::default());
        let oracle = ReferenceTable::new(driver(), CostModel::default());
        let owners = ["vm-a", "vm-b", "vm-c", "vm-d"];
        let mut board = FakeBoard::new();
        for (op, arg) in ops {
            let rank = arg as usize % RANKS;
            match op {
                0 => {
                    // Alloc: identical outcome or identical error.
                    let owner = owners[arg as usize % owners.len()];
                    let a = sharded.alloc(owner, quick(), 1);
                    let b = oracle.alloc(owner, quick(), 1);
                    match (a, b) {
                        (Ok(x), Ok(y)) => {
                            prop_assert_eq!(x.rank, y.rank);
                            prop_assert_eq!(x.reused, y.reused);
                        }
                        (Err(_), Err(_)) => {}
                        (x, y) => {
                            return Err(TestCaseError::fail(format!(
                                "alloc diverged: sharded={x:?} oracle={y:?}"
                            )));
                        }
                    }
                }
                1 => {
                    prop_assert_eq!(sharded.recycle(rank), oracle.recycle(rank));
                }
                2 => {
                    prop_assert_eq!(sharded.mark_ckpt(rank), oracle.mark_ckpt(rank));
                }
                3 => {
                    // Release observed by the (synthetic) sysfs sweep.
                    board.claims[rank] += 1;
                    board.status[rank] = RankStatus::Free;
                    let snap = board.snapshot();
                    prop_assert_eq!(
                        sharded.sync_with_sysfs(&snap),
                        oracle.sync_with_sysfs(&snap)
                    );
                }
                4 => {
                    // External (native app) claim observed by the sweep.
                    board.claims[rank] += 1;
                    board.status[rank] = RankStatus::InUse { owner: "native:app".into() };
                    let snap = board.snapshot();
                    prop_assert_eq!(
                        sharded.sync_with_sysfs(&snap),
                        oracle.sync_with_sysfs(&snap)
                    );
                }
                _ => {
                    // Reset worker runs (both sides claim/erase through
                    // their own identically-configured driver).
                    sharded.reset_rank(rank);
                    oracle.reset_rank(rank);
                }
            }
            // After every op: identical per-rank states via both the
            // locked oracle read and the sharded table's lock-free path.
            let want = oracle.states();
            prop_assert_eq!(sharded.states(), want.clone());
            for (r, w) in want.iter().enumerate() {
                prop_assert_eq!(sharded.state_of(r), Some(*w));
            }
        }
        prop_assert_eq!(sharded.stats(), oracle.stats());
        prop_assert_eq!(sharded.transitions(), oracle.transitions());
    }
}

fn run_queue_pair(policy: SchedPolicy, ops: &[(u8, u8)]) -> Result<(), TestCaseError> {
    let sharded = ShardedAdmissionQueue::new(policy);
    let mut oracle = AdmissionQueue::new(policy);
    let mut live: Vec<(String, u64)> = Vec::new();
    for &(op, arg) in ops {
        match op {
            0 | 1 => {
                // Push: the sharded queue assigns the ticket (drawn inside
                // the owning shard's lock); the oracle is fed the same one.
                let tenant = format!("vm-{}", arg % 6);
                let vruntime = u64::from(arg) * 17;
                let ticket = sharded.push(&tenant, vruntime);
                oracle.push(&tenant, ticket, vruntime);
                live.push((tenant, ticket));
            }
            2 => {
                if live.is_empty() {
                    continue;
                }
                let (tenant, ticket) = live.swap_remove(arg as usize % live.len());
                prop_assert!(sharded.remove_of(&tenant, ticket));
                prop_assert!(oracle.remove(ticket));
            }
            _ => {
                // Pop the merged head; the oracle must agree on who it was.
                let popped = sharded.pop_head();
                let want = oracle.head().cloned();
                match (&popped, &want) {
                    (Some(p), Some(w)) => {
                        prop_assert_eq!(p.ticket, w.ticket);
                        prop_assert_eq!(&p.tenant, &w.tenant);
                        prop_assert!(oracle.remove(w.ticket));
                        live.retain(|(_, t)| *t != p.ticket);
                    }
                    (None, None) => {}
                    _ => {
                        return Err(TestCaseError::fail(format!(
                            "pop diverged: sharded={popped:?} oracle={want:?}"
                        )));
                    }
                }
            }
        }
        // Invariants after every op: same head, same depth, same tickets.
        let want = oracle.head().cloned();
        let got = sharded.head();
        prop_assert_eq!(
            got.as_ref().map(|w| (w.tenant.clone(), w.ticket)),
            want.map(|w| (w.tenant.clone(), w.ticket))
        );
        prop_assert_eq!(sharded.len(), oracle.len());
        for (_, ticket) in &live {
            prop_assert!(sharded.contains(*ticket));
            prop_assert!(oracle.contains(*ticket));
        }
    }
    Ok(())
}

proptest! {
    /// The sharded admission queue serves exactly the oracle's head — for
    /// both policies — under any push/remove/pop interleaving.
    #[test]
    fn sharded_queue_matches_oracle_under_both_policies(
        ops in proptest::collection::vec((0u8..4, 0u8..64), 1..60),
    ) {
        run_queue_pair(SchedPolicy::Fifo, &ops)?;
        run_queue_pair(SchedPolicy::WeightedFair, &ops)?;
    }
}

struct SchedHost {
    _driver: Arc<UpmemDriver>,
    mgr: Manager,
    sched: Scheduler,
    registry: MetricsRegistry,
    slots: Vec<RankSlot>,
}

fn sched_host(ranks: usize, shards: usize, tenants: usize) -> SchedHost {
    let cfg = PimConfig {
        ranks,
        functional_dpus: vec![2; ranks],
        mram_size: 1 << 14,
        ..PimConfig::small()
    };
    let driver = Arc::new(UpmemDriver::new(PimMachine::new(cfg)));
    let mcfg = ManagerConfig {
        retry_timeout: Duration::from_millis(2),
        max_attempts: 1,
        ..ManagerConfig::default()
    };
    let registry = MetricsRegistry::new();
    let mgr = Manager::start(driver.clone(), CostModel::default(), mcfg);
    let sched = Scheduler::new_with_shards(
        driver.clone(),
        mgr.client(),
        SchedSection::default(),
        CostModel::default(),
        &registry,
        shards,
    );
    let slots = (0..tenants).map(|_| vpim::sched::empty_slot()).collect();
    SchedHost { _driver: driver, mgr, sched, registry, slots }
}

impl SchedHost {
    /// Applies one acquire-or-release touch; returns the grant's rank (or
    /// None on error/release) so grant orders can be compared.
    fn touch(&self, t: usize) -> Option<usize> {
        let tenant = format!("vm-{t}");
        let mut guard = self.slots[t].lock();
        if guard.is_none() {
            match self.sched.acquire(&tenant, &self.slots[t]) {
                Ok(grant) => {
                    let rank = grant.rank;
                    *guard = Some(grant.mapping);
                    Some(rank)
                }
                Err(_) => None,
            }
        } else {
            let mapping = guard.take().expect("linked");
            let rank = mapping.rank_id();
            drop(mapping);
            drop(guard);
            self.sched.notify_release(&tenant);
            // Expedite observe → reset → NAAV so the next touch sees a
            // deterministic table regardless of observer timing.
            self.mgr.sync_now();
            assert!(
                self.mgr.wait_for_state(rank, RankState::Naav, Duration::from_secs(5)),
                "released rank must recycle"
            );
            None
        }
    }
}

proptest! {
    /// A scheduler with 8 control shards and one with a single shard
    /// (the pre-sharding degenerate) hand out identical grant sequences
    /// and end with identical `sched.*` registry totals for any sequence
    /// of dedicated-mode touches.
    #[test]
    fn sharded_scheduler_matches_single_shard_grants_and_totals(
        touches in proptest::collection::vec(0usize..4, 1..24),
    ) {
        let many = sched_host(2, 8, 4);
        let one = sched_host(2, 1, 4);
        for &t in &touches {
            let a = many.touch(t);
            let b = one.touch(t);
            prop_assert_eq!(a, b);
        }
        let (snap_many, snap_one) = (many.registry.snapshot(), one.registry.snapshot());
        for name in ["sched.grants", "sched.preemptions", "sched.restores"] {
            prop_assert_eq!(snap_many.count(name), snap_one.count(name));
        }
        for t in 0..4 {
            let wait = format!("sched.wait.vm-{t}");
            prop_assert_eq!(snap_many.get(&wait).cloned(), snap_one.get(&wait).cloned());
        }
        prop_assert_eq!(many.sched.queue_depth(), 0);
        prop_assert_eq!(one.sched.queue_depth(), 0);
        many.mgr.shutdown();
        one.mgr.shutdown();
    }
}
