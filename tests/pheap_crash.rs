//! The tentpole crash-consistency proof for `vpim::pheap`.
//!
//! Arbitrary op streams run against a heap whose persist path is armed
//! with keyed fault sites (`pheap.wal.torn` / `pheap.persist.drop`).
//! When a fault fires, the run "crashes": the rank is snapshotted at
//! that instant, the VM is torn down, a fresh VM is launched, the
//! snapshot is restored into its rank, and `Pheap::recover` rebuilds
//! the heap. The recovered image must equal **exactly the committed
//! prefix** of the stream — bit-for-bit equal to a pure in-memory
//! oracle that applies only committed operations, with zero leakage of
//! uncommitted data — and the whole scenario must be bit-identical
//! under Sequential and Parallel dispatch.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use simkit::{ErrorKind, FaultPlan, FaultPlane, HasErrorKind};
use upmem_driver::UpmemDriver;
use upmem_sim::{PimConfig, PimMachine};
use vpim::prelude::*;
use vpim::{PHEAP_PERSIST_DROP_POINT, PHEAP_WAL_TORN_POINT};

fn host() -> Arc<UpmemDriver> {
    Arc::new(UpmemDriver::new(PimMachine::new(PimConfig::small())))
}

/// Injection-enabled system (seeded, nothing armed yet) with one VM.
fn crash_system(parallel: bool, seed: u64) -> (VpimSystem, VpimVm, Arc<FaultPlane>) {
    let vcfg = VpimConfig::builder()
        .batching(false)
        .prefetch(false)
        .parallel(parallel)
        .inject_seed(seed)
        .build();
    let sys = VpimSystem::start(host(), vcfg, StartOpts::default());
    let vm = sys.launch(TenantSpec::new("pheap-crash")).unwrap();
    let plane = sys.fault_plane().expect("inject enabled").clone();
    (sys, vm, plane)
}

fn opts(sys: &VpimSystem) -> PheapOptions {
    PheapOptions::new()
        .base(64 << 10)
        .wal_size(16 << 10)
        .root_size(8 << 10)
        .data_size(64 << 10)
        .resident_budget(4 << 10)
        .attach(sys)
}

fn pattern(id: u64, off: u64, salt: u64, len: usize) -> Vec<u8> {
    (0..len as u64)
        .map(|i| {
            let x = (id << 40) ^ ((off + i) << 8) ^ salt.wrapping_mul(0x9e37_79b9);
            (x.wrapping_mul(2_654_435_761) >> 13) as u8
        })
        .collect()
}

#[derive(Debug, Clone, Copy)]
enum Op {
    Alloc { len: u64 },
    Write { sel: u64, off: u64, len: u64 },
    Free { sel: u64 },
    Persist,
}

fn decode(kind: u8, sel: u64, off: u64, len: u64) -> Op {
    match kind {
        0 | 1 => Op::Alloc { len: 1 + len * 13 % 1200 },
        2 | 3 | 4 | 5 => Op::Write { sel, off, len },
        6 => Op::Free { sel },
        _ => Op::Persist,
    }
}

/// The committed-prefix oracle. `working` mirrors every successful op;
/// `committed` is the frozen copy of `working` from the instant of the
/// last durable commit, detected observationally via `applied_seq` (an
/// automatic persist inside `alloc`/`write` commits the *pre-op* state,
/// which is exactly the clone taken before the op ran).
struct Oracle {
    committed: BTreeMap<u64, Vec<u8>>,
    working: BTreeMap<u64, Vec<u8>>,
    last_seq: u64,
}

impl Oracle {
    fn new(seq: u64) -> Self {
        Oracle { committed: BTreeMap::new(), working: BTreeMap::new(), last_seq: seq }
    }

    /// Applies one op to heap + oracle. `Ok(false)` = op done (possibly
    /// skipped as a legal no-op), `Ok(true)` = an injected fault fired:
    /// the stream crashes here.
    fn step(&mut self, heap: &mut Pheap, op: Op, salt: u64) -> Result<bool, String> {
        let pre = self.working.clone();
        let outcome: Result<(), VpimError> = match op {
            Op::Alloc { len } => match heap.alloc(len) {
                Ok(id) => {
                    self.working.insert(id, vec![0; len as usize]);
                    Ok(())
                }
                Err(VpimError::BadRequest(_)) => Ok(()), // heap full: skip
                Err(e) => Err(e),
            },
            Op::Write { sel, off, len } => {
                match pick(&self.working, sel) {
                    None => Ok(()),
                    Some(id) => {
                        let obj_len = self.working[&id].len() as u64;
                        let off = off % obj_len;
                        let len = (len % (obj_len - off)).max(1);
                        let data = pattern(id, off, salt, len as usize);
                        match heap.write(id, off, &data) {
                            Ok(()) => {
                                self.working.get_mut(&id).unwrap()
                                    [off as usize..(off + len) as usize]
                                    .copy_from_slice(&data);
                                Ok(())
                            }
                            Err(e) => Err(e),
                        }
                    }
                }
            }
            Op::Free { sel } => match pick(&self.working, sel) {
                None => Ok(()),
                Some(id) => match heap.free(id) {
                    Ok(()) => {
                        self.working.remove(&id);
                        Ok(())
                    }
                    Err(e) => Err(e),
                },
            },
            Op::Persist => heap.persist().map(|_| ()),
        };
        // A durable commit happened during this op (explicit persist, or
        // an auto-persist that ran *before* the op's own mutation).
        if heap.applied_seq() > self.last_seq {
            self.last_seq = heap.applied_seq();
            self.committed = pre;
        }
        match outcome {
            Ok(()) => {
                heap.check_invariants()?;
                Ok(false)
            }
            Err(e) if e.kind() == ErrorKind::Injected => Ok(true),
            Err(e) => Err(format!("op {op:?} failed untyped: {e}")),
        }
    }
}

fn pick(map: &BTreeMap<u64, Vec<u8>>, sel: u64) -> Option<u64> {
    if map.is_empty() {
        return None;
    }
    map.keys().nth(sel as usize % map.len()).copied()
}

fn dump(heap: &mut Pheap) -> BTreeMap<u64, Vec<u8>> {
    heap.ids()
        .into_iter()
        .map(|id| {
            let len = heap.len_of(id).unwrap();
            (id, heap.read(id, 0, len).unwrap())
        })
        .collect()
}

/// Everything one mode's scenario produced, for cross-mode comparison.
#[derive(Debug, PartialEq, Eq)]
struct Outcome {
    crashed_at: Option<usize>,
    fired: u64,
    expected_seq: u64,
    report: RecoverReport,
    recovered: BTreeMap<u64, Vec<u8>>,
    committed: BTreeMap<u64, Vec<u8>>,
}

/// Runs the stream until a fault fires (or it ends), kills the VM at
/// that exact instant via rank snapshot, restores into a fresh VM, and
/// recovers. Returns the full observable outcome.
fn run_scenario(
    parallel: bool,
    seed: u64,
    ops: &[(u8, u64, u64, u64)],
    site: &'static str,
    nth: u64,
    salt: u64,
) -> Result<Outcome, String> {
    let (sys, vm, plane) = crash_system(parallel, seed);
    let mut heap = Pheap::format(vm.frontend(0).clone(), opts(&sys)).unwrap();
    plane.arm(site, FaultPlan::Nth(nth));

    let mut oracle = Oracle::new(heap.applied_seq());
    let mut crashed_at = None;
    for (i, &(kind, sel, off, len)) in ops.iter().enumerate() {
        if oracle.step(&mut heap, decode(kind, sel, off, len), salt)? {
            crashed_at = Some(i);
            break;
        }
    }
    let fired = plane.point_stats(site).map_or(0, |s| s.fired);
    let expected_seq = heap.applied_seq();

    // Kill: snapshot the rank at this instant, before the manager's
    // release-time reset can wipe it.
    let rid = vm.devices()[0].backend().linked_rank().expect("vm linked");
    let snap = sys.driver().machine().rank(rid).unwrap().snapshot();
    drop(heap);
    drop(vm);
    plane.disarm_all();

    // Rebirth: fresh VM, restored MRAM image, recovery.
    let vm2 = sys.launch(TenantSpec::new("pheap-crash")).unwrap();
    let rid2 = vm2.devices()[0].backend().linked_rank().expect("vm2 linked");
    sys.driver().machine().rank(rid2).unwrap().restore(&snap).unwrap();
    let (mut rec, report) = Pheap::recover(vm2.frontend(0).clone(), opts(&sys))
        .map_err(|e| format!("recover failed: {e}"))?;
    rec.check_invariants()?;
    let recovered = dump(&mut rec);
    drop(rec);
    drop(vm2);
    sys.shutdown();

    Ok(Outcome {
        crashed_at,
        fired,
        expected_seq,
        report,
        recovered,
        committed: oracle.committed,
    })
}

fn check_outcome(o: &Outcome, site: &str) -> Result<(), String> {
    if o.report.applied_seq != o.expected_seq {
        return Err(format!(
            "recovered applied_seq {} != last committed {} ({site})",
            o.report.applied_seq, o.expected_seq
        ));
    }
    // Zero uncommitted leakage, bit-exact committed prefix.
    if o.recovered != o.committed {
        return Err(format!(
            "recovered image diverged from committed prefix: {} vs {} objects ({site})",
            o.recovered.len(),
            o.committed.len()
        ));
    }
    // Our two sites abort *before* the commit record exists, so a crash
    // always leaves an uncommitted WAL tail for recovery to discard,
    // and never a committed-unapplied transaction to replay.
    if o.crashed_at.is_some() {
        if o.fired == 0 {
            return Err("crashed without a fired fault".into());
        }
        if !o.report.discarded_tail {
            return Err(format!("crash at {site} left no discarded tail: {:?}", o.report));
        }
        if o.report.replayed {
            return Err(format!("unexpected replay after {site}: {:?}", o.report));
        }
    }
    Ok(())
}

proptest! {
    /// Crash → restore → recover == exactly the committed prefix, for
    /// arbitrary op streams × fault schedules × both dispatch modes —
    /// and the two modes agree bit-for-bit on every observable.
    #[test]
    fn crash_recovery_yields_committed_prefix_in_both_modes(
        ops in proptest::collection::vec((0u8..8, any::<u64>(), 0u64..2048, 1u64..256), 4..32),
        torn in any::<bool>(),
        nth in 1u64..4,
        seed in 0u64..1024,
        salt in any::<u64>(),
    ) {
        let site = if torn { PHEAP_WAL_TORN_POINT } else { PHEAP_PERSIST_DROP_POINT };
        let seq = run_scenario(false, seed, &ops, site, nth, salt);
        prop_assert!(seq.is_ok(), "{:?}", seq.err());
        let seq = seq.unwrap();
        let checked = check_outcome(&seq, site);
        prop_assert!(checked.is_ok(), "{:?}", checked.err());

        let par = run_scenario(true, seed, &ops, site, nth, salt);
        prop_assert!(par.is_ok(), "{:?}", par.err());
        prop_assert_eq!(&seq, &par.unwrap());
    }
}

/// Clean kill: no fault ever fires; the snapshot is taken after a final
/// explicit persist, and recovery reproduces the full heap bit-exactly.
#[test]
fn clean_kill_recovers_everything_committed() {
    for parallel in [false, true] {
        let (sys, vm, plane) = crash_system(parallel, 7);
        let mut heap = Pheap::format(vm.frontend(0).clone(), opts(&sys)).unwrap();
        let mut oracle = Oracle::new(heap.applied_seq());
        for i in 0..40u64 {
            let crashed = oracle
                .step(&mut heap, decode((i % 8) as u8, i * 3, i * 61, 1 + i * 29 % 300), 0xF0)
                .unwrap();
            assert!(!crashed, "nothing is armed");
        }
        heap.persist().unwrap();
        assert_eq!(heap.dirty_bytes(), 0);
        let expected = oracle.working.clone();
        let expected_seq = heap.applied_seq();

        let rid = vm.devices()[0].backend().linked_rank().unwrap();
        let snap = sys.driver().machine().rank(rid).unwrap().snapshot();
        drop(heap);
        drop(vm);
        plane.disarm_all();

        let vm2 = sys.launch(TenantSpec::new("pheap-crash")).unwrap();
        let rid2 = vm2.devices()[0].backend().linked_rank().unwrap();
        sys.driver().machine().rank(rid2).unwrap().restore(&snap).unwrap();
        let (mut rec, report) = Pheap::recover(vm2.frontend(0).clone(), opts(&sys)).unwrap();
        assert_eq!(report.applied_seq, expected_seq);
        assert!(!report.replayed);
        assert!(!report.discarded_tail);
        assert_eq!(dump(&mut rec), expected);
        drop(rec);
        drop(vm2);
        sys.shutdown();
    }
}

/// The heap is pay-for-what-you-use: a system that never constructs a
/// `Pheap` registers no `pheap.*` metric and produces byte-identical
/// workload results whether or not the injection plane (which hosts the
/// pheap fault sites) is even enabled.
#[test]
fn unused_heap_leaves_no_trace() {
    let mut results = Vec::new();
    for inject in [false, true] {
        let vcfg = if inject {
            VpimConfig::builder().inject_seed(99).build()
        } else {
            VpimConfig::builder().build()
        };
        let sys = VpimSystem::start(host(), vcfg, StartOpts::default());
        let vm = sys.launch(TenantSpec::new("plain")).unwrap();
        let front = vm.frontend(0);
        let data = pattern(3, 0, 0xBEEF, 4096);
        front.write_rank(&[(3, 8192, data.as_slice())]).unwrap();
        let (bufs, _) = front.read_rank(&[(3, 8192, 4096)]).unwrap();
        results.push(bufs);

        let names = sys.registry().names();
        assert!(
            !names.iter().any(|n| n.starts_with("pheap.")),
            "pheap metrics registered without a Pheap: {names:?}"
        );

        // Constructing a heap is what turns the subsystem on.
        let heap = Pheap::format(vm.frontend(0).clone(), opts(&sys)).unwrap();
        assert!(sys.registry().names().iter().any(|n| n.starts_with("pheap.")));
        drop(heap);
        drop(vm);
        sys.shutdown();
    }
    assert_eq!(results[0], results[1], "fault-site plumbing must not perturb clean runs");
}
