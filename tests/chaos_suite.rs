//! Cross-layer chaos suite: seeded fault sweeps over every fault point in
//! the stack, in both dispatch modes.
//!
//! For every fault point the suite proves the ISSUE-5 contract:
//! (a) an induced fault either surfaces as a typed `ErrorKind` or is
//!     recovered transparently — never a panic, hang, or corrupted state;
//! (b) the system stays usable afterwards, and a follow-up clean run
//!     produces bit-identical payloads;
//! (c) `inject.*` / `retry.*` telemetry totals are exact and identical in
//!     Sequential and Parallel dispatch (injection decisions are derived
//!     from seeded hashes and virtual time, never wall clock).
//!
//! The sweep seed comes from `CHAOS_SEED` (see `ci/chaos-gate.sh`'s
//! fixed-seed matrix), so a failing seed reproduces with
//! `CHAOS_SEED=<n> cargo test --test chaos_suite`.

use std::sync::Arc;

use simkit::{ErrorKind, FaultPlan, FaultPlane, HasErrorKind};
use upmem_driver::UpmemDriver;
use upmem_sim::error::DpuFault;
use upmem_sim::kernel::{DpuKernel, KernelImage};
use upmem_sim::{DpuContext, PimConfig, PimMachine};
use vpim::{
    FaultSite, Pheap, PheapOptions, StartOpts, TenantSpec, VpimConfig, VpimSystem, VpimVm,
    PHEAP_PERSIST_DROP_POINT, PHEAP_WAL_TORN_POINT,
};

/// A kernel that always succeeds — DPU faults in this suite come from the
/// fault plane, not from kernel logic.
struct OkKernel;

impl DpuKernel for OkKernel {
    fn image(&self) -> KernelImage {
        KernelImage::new("chaos_ok", 1 << 10)
    }
    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
        ctx.parallel(|t| {
            t.charge(10);
            Ok(())
        })
    }
}

fn host() -> Arc<UpmemDriver> {
    let machine = PimMachine::new(PimConfig::small());
    machine.register_kernel(Arc::new(OkKernel));
    Arc::new(UpmemDriver::new(machine))
}

/// The sweep seed: `CHAOS_SEED` when the gate's matrix sets it, a fixed
/// default otherwise. Everything downstream (probability plans, retry
/// jitter) is a pure function of this value.
fn sweep_seed() -> u64 {
    std::env::var("CHAOS_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xC4A0_5EED)
}

/// A system with injection enabled (seeded, nothing armed yet) and one VM
/// booted. Scenarios arm their point *after* launch so boot-time traffic
/// (Configure round trip) does not consume hits.
fn chaos_system(parallel: bool, seed: u64) -> (VpimSystem, VpimVm, Arc<FaultPlane>) {
    let vcfg = VpimConfig::builder()
        .batching(false)
        .prefetch(false)
        .parallel(parallel)
        .inject_seed(seed)
        .build();
    let sys = VpimSystem::start(host(), vcfg, StartOpts::default());
    let vm = sys.launch(TenantSpec::new("chaos")).unwrap();
    let plane = sys.fault_plane().expect("inject enabled").clone();
    (sys, vm, plane)
}

fn payload(dpu: u32, len: usize, salt: u64) -> Vec<u8> {
    (0..len)
        .map(|i| {
            let x = (u64::from(dpu) << 32) ^ (i as u64) ^ salt.wrapping_mul(0x9e37_79b9);
            (x.wrapping_mul(2_654_435_761) >> 16) as u8
        })
        .collect()
}

// ---------------------------------------------------------------- vmm layer

/// A dropped guest kick is retried by the frontend's `RetryPolicy`
/// (re-notify + re-kick) and recovers transparently with exact telemetry.
#[test]
fn dropped_kick_is_retried_transparently() {
    let seed = sweep_seed();
    let mut per_mode = Vec::new();
    for parallel in [false, true] {
        let (sys, vm, plane) = chaos_system(parallel, seed);
        plane.arm(FaultSite::KickDrop.name(), FaultPlan::Nth(1));
        let fe = vm.frontend(0);
        let data = payload(0, 8192, seed);
        // The very next kick is dropped; the write must still land.
        fe.write_rank(&[(0, 0, &data)]).unwrap();
        let (out, _) = fe.read_rank(&[(0, 0, data.len() as u64)]).unwrap();
        assert_eq!(out[0], data, "parallel={parallel}");

        let stats = plane.point_stats(FaultSite::KickDrop.name()).unwrap();
        assert_eq!(stats.fired, 1, "parallel={parallel}: {stats:?}");
        let snap = sys.registry().snapshot();
        assert_eq!(snap.count("inject.fired"), 1);
        assert_eq!(snap.count("retry.attempts"), 1, "one re-kick");
        assert_eq!(snap.count("retry.giveups"), 0);
        assert_eq!(snap.level("virtio.queue.depth.rank0"), 0);
        per_mode.push((out, stats.fired, snap.count("retry.attempts")));
        drop(vm);
        sys.shutdown();
    }
    assert_eq!(per_mode[0], per_mode[1], "dispatch modes must agree bit-for-bit");
}

/// A delayed completion IRQ (asserted without a wakeup) is recovered by
/// the frontend's bounded wait slice — no retry, no error.
#[test]
fn delayed_irq_is_recovered_by_the_wait_slice() {
    let seed = sweep_seed();
    let mut per_mode = Vec::new();
    for parallel in [false, true] {
        let (sys, vm, plane) = chaos_system(parallel, seed);
        plane.arm(FaultSite::IrqDelay.name(), FaultPlan::Nth(1));
        let fe = vm.frontend(0);
        let data = payload(1, 4096, seed);
        fe.write_rank(&[(1, 64, &data)]).unwrap();
        let (out, _) = fe.read_rank(&[(1, 64, data.len() as u64)]).unwrap();
        assert_eq!(out[0], data, "parallel={parallel}");

        let stats = plane.point_stats(FaultSite::IrqDelay.name()).unwrap();
        assert_eq!(stats.fired, 1, "parallel={parallel}: {stats:?}");
        let snap = sys.registry().snapshot();
        // Recovery is the waiter's own timeout slice: not a retry.
        assert_eq!(snap.count("retry.attempts"), 0);
        assert_eq!(snap.count("inject.fired"), 1);
        per_mode.push((out, stats.fired));
        drop(vm);
        sys.shutdown();
    }
    assert_eq!(per_mode[0], per_mode[1]);
}

// --------------------------------------------------------- virtio memory

/// Injected guest-memory EIO either surfaces typed (`ErrorKind::Injected`)
/// or is absorbed by the status-page retry; firing totals match the plan
/// oracle exactly, and a post-disarm run is bit-identical to a clean one.
#[test]
fn transient_mem_eio_is_typed_and_the_system_stays_usable() {
    let seed = sweep_seed();
    let plan = FaultPlan::EveryK(7);
    let mut per_mode = Vec::new();
    for parallel in [false, true] {
        let (sys, vm, plane) = chaos_system(parallel, seed);
        plane.arm(FaultSite::MemEio.name(), plan);
        let fe = vm.frontend(0);
        let mut typed_errors = 0u64;
        // Single-DPU ops only: their data path is identical in both
        // dispatch modes, so the access (= hit) sequence is too.
        for i in 0..6u64 {
            let data = payload(0, 2048, seed ^ i);
            match fe.write_rank(&[(0, i * 4096, &data)]) {
                Ok(_) => {}
                Err(e) => {
                    assert_eq!(e.kind(), ErrorKind::Injected, "untyped error: {e}");
                    typed_errors += 1;
                }
            }
            match fe.read_rank(&[(0, i * 4096, 2048)]) {
                Ok(_) => {}
                Err(e) => {
                    assert_eq!(e.kind(), ErrorKind::Injected, "untyped error: {e}");
                    typed_errors += 1;
                }
            }
        }
        let stats = plane.point_stats(FaultSite::MemEio.name()).unwrap();
        // Serial-counter point: the plan oracle predicts fired from hits.
        assert_eq!(
            stats.fired,
            plan.count_fires(seed, FaultSite::MemEio.name(), stats.hits),
            "parallel={parallel}: {stats:?}"
        );
        assert!(stats.fired > 0, "EveryK(7) over {} hits must fire", stats.hits);

        // (b) usable afterwards, bit-identical clean run.
        plane.disarm(FaultSite::MemEio.name());
        let data = payload(0, 4096, !seed);
        fe.write_rank(&[(0, 0, &data)]).unwrap();
        let (out, _) = fe.read_rank(&[(0, 0, data.len() as u64)]).unwrap();
        assert_eq!(out[0], data);
        let snap = sys.registry().snapshot();
        assert_eq!(snap.level("virtio.queue.depth.rank0"), 0);
        assert_eq!(snap.level("datapath.pool.outstanding"), 0);
        per_mode.push((out, stats.hits, stats.fired, typed_errors));
        drop(vm);
        sys.shutdown();
    }
    assert_eq!(per_mode[0], per_mode[1], "dispatch modes must agree");
}

// --------------------------------------------------------- backend chunks

/// A torn per-DPU chunk write surfaces typed, never corrupts neighbouring
/// entries, balances the scratch pool, and a clean rewrite fully heals the
/// torn range.
#[test]
fn torn_chunk_write_is_typed_and_heals_on_rewrite() {
    let seed = sweep_seed();
    let plan = FaultPlan::Nth(2); // fires for entry key 1 of each request
    let mut per_mode = Vec::new();
    for parallel in [false, true] {
        let (sys, vm, plane) = chaos_system(parallel, seed);
        plane.arm(FaultSite::ChunkTornWrite.name(), plan);
        let fe = vm.frontend(0);
        let datas: Vec<Vec<u8>> = (0..4).map(|d| payload(d, 8192, seed)).collect();
        let writes: Vec<(u32, u64, &[u8])> =
            datas.iter().enumerate().map(|(d, v)| (d as u32, 0, v.as_slice())).collect();
        let err = fe.write_rank(&writes).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Injected, "{err}");

        let stats = plane.point_stats(FaultSite::ChunkTornWrite.name()).unwrap();
        // Keyed point: each of the 4 entries was consulted with its own
        // index; exactly the plan's key (1) fires.
        assert_eq!(stats.hits, 4, "parallel={parallel}: {stats:?}");
        assert_eq!(stats.fired, 1, "parallel={parallel}: {stats:?}");

        // Same keys re-fire on retry by design: recovery is disarm (or a
        // plan that expires), then rewrite.
        plane.disarm(FaultSite::ChunkTornWrite.name());
        fe.write_rank(&writes).unwrap();
        let reads: Vec<(u32, u64, u64)> = (0..4).map(|d| (d, 0, 8192)).collect();
        let (outs, _) = fe.read_rank(&reads).unwrap();
        for (d, out) in outs.iter().enumerate() {
            assert_eq!(out, &datas[d], "dpu {d}: torn range must be healed");
        }
        let snap = sys.registry().snapshot();
        assert_eq!(snap.level("datapath.pool.outstanding"), 0, "pool drop-balance");
        assert_eq!(snap.level("virtio.queue.depth.rank0"), 0);
        per_mode.push((outs, stats.hits, stats.fired));
        drop(vm);
        sys.shutdown();
    }
    assert_eq!(per_mode[0], per_mode[1]);
}

/// A stalled chunk worker is invisible in virtual time: payloads *and*
/// the op's virtual-time report are bit-identical to an unstalled run.
#[test]
fn stalled_chunk_worker_does_not_perturb_virtual_time() {
    let seed = sweep_seed();
    for parallel in [false, true] {
        // Reference: no faults armed.
        let (ref_sys, ref_vm, _plane) = chaos_system(parallel, seed);
        let fe = ref_vm.frontend(0);
        let datas: Vec<Vec<u8>> = (0..4).map(|d| payload(d, 8192, seed)).collect();
        let writes: Vec<(u32, u64, &[u8])> =
            datas.iter().enumerate().map(|(d, v)| (d as u32, 0, v.as_slice())).collect();
        let ref_report = fe.write_rank(&writes).unwrap();
        let reads: Vec<(u32, u64, u64)> = (0..4).map(|d| (d, 0, 8192)).collect();
        let (ref_outs, _) = fe.read_rank(&reads).unwrap();
        drop(ref_vm);
        ref_sys.shutdown();

        // Stalled: every chunk worker sleeps ~2 ms of wall time.
        let (sys, vm, plane) = chaos_system(parallel, seed);
        plane.arm(FaultSite::ChunkStall.name(), FaultPlan::EveryK(1));
        let fe = vm.frontend(0);
        let report = fe.write_rank(&writes).unwrap();
        let (outs, _) = fe.read_rank(&reads).unwrap();
        assert_eq!(outs, ref_outs, "parallel={parallel}: payloads diverged");
        assert_eq!(
            report.duration(),
            ref_report.duration(),
            "parallel={parallel}: wall stalls must not leak into virtual time"
        );
        let stats = plane.point_stats(FaultSite::ChunkStall.name()).unwrap();
        assert_eq!(stats.fired, stats.hits, "EveryK(1) fires on every hit");
        assert_eq!(stats.hits, 8, "4 write entries + 4 read entries");
        drop(vm);
        sys.shutdown();
    }
}

// ------------------------------------------------------------- sim layer

/// Injected CI-word failures surface typed through the whole transport and
/// pass once the plan expires.
#[test]
fn injected_ci_op_fault_is_typed_and_passes_after_the_plan() {
    let seed = sweep_seed();
    for parallel in [false, true] {
        let (sys, vm, plane) = chaos_system(parallel, seed);
        plane.arm(FaultSite::CiOp.name(), FaultPlan::Nth(1));
        let fe = vm.frontend(0);
        let err = fe.poll_status(0).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Injected, "parallel={parallel}: {err}");
        // Nth(1) has fired; the very next CI op is clean.
        let (_status, _) = fe.poll_status(0).unwrap();
        let stats = plane.point_stats(FaultSite::CiOp.name()).unwrap();
        assert_eq!((stats.hits, stats.fired), (2, 1));
        drop(vm);
        sys.shutdown();
    }
}

/// Injected MRAM DMA failures are keyed by DPU: the plan's DPU fails
/// deterministically (retries with the same key re-fire), other DPUs are
/// untouched, and disarming fully restores the failed DPU.
#[test]
fn injected_mram_dma_fault_is_per_dpu_deterministic() {
    let seed = sweep_seed();
    for parallel in [false, true] {
        let (sys, vm, plane) = chaos_system(parallel, seed);
        plane.arm(FaultSite::MramDma.name(), FaultPlan::Nth(1)); // key 0 = dpu 0
        let fe = vm.frontend(0);
        let data = payload(0, 4096, seed);
        // DPU 0 fails, typed…
        let err = fe.write_rank(&[(0, 0, &data)]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Injected, "{err}");
        // …and fails again on retry: keyed decisions are pure in the key.
        let err = fe.write_rank(&[(0, 0, &data)]).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Injected, "{err}");
        // Other DPUs are untouched.
        let other = payload(2, 4096, seed);
        fe.write_rank(&[(2, 0, &other)]).unwrap();
        let (out, _) = fe.read_rank(&[(2, 0, other.len() as u64)]).unwrap();
        assert_eq!(out[0], other);
        // Disarm: DPU 0 heals completely.
        plane.disarm(FaultSite::MramDma.name());
        fe.write_rank(&[(0, 0, &data)]).unwrap();
        let (out, _) = fe.read_rank(&[(0, 0, data.len() as u64)]).unwrap();
        assert_eq!(out[0], data, "parallel={parallel}");
        drop(vm);
        sys.shutdown();
    }
}

/// An injected launch fault surfaces as a DPU fault (the paper's §3.4
/// fault path), names its fault point, and the next launch succeeds.
#[test]
fn injected_launch_fault_surfaces_as_a_dpu_fault() {
    let seed = sweep_seed();
    for parallel in [false, true] {
        let (sys, vm, plane) = chaos_system(parallel, seed);
        let fe = vm.frontend(0);
        let dpus: Vec<u32> = (0..4).collect();
        fe.load_program("chaos_ok", &dpus).unwrap();
        plane.arm(FaultSite::LaunchFault.name(), FaultPlan::Nth(1));
        let err = fe.launch(&dpus, 4).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::Fault, "parallel={parallel}: {err}");
        assert!(err.to_string().contains("sim.launch.fault"), "{err}");
        // Nth(1) expired: the relaunch is clean.
        fe.launch(&dpus, 4).unwrap();
        let stats = plane.point_stats(FaultSite::LaunchFault.name()).unwrap();
        assert_eq!((stats.hits, stats.fired), (2, 1));
        drop(vm);
        sys.shutdown();
    }
}

// ----------------------------------------------------------- manager layer

/// A transient manager RPC failure during rank allocation is absorbed by
/// the scheduler's retry policy: the VM still links, with exact `retry.*`
/// accounting and the backoff charged to virtual wait time.
#[test]
fn transient_manager_rpc_is_retried_during_linking() {
    let seed = sweep_seed();
    let mut per_mode = Vec::new();
    for parallel in [false, true] {
        let vcfg = VpimConfig::builder()
            .batching(false)
            .prefetch(false)
            .parallel(parallel)
            .inject_seed(seed)
            .inject_fault(FaultSite::ManagerRpc, FaultPlan::Nth(1))
            .build();
        let sys = VpimSystem::start(host(), vcfg, StartOpts::default());
        // The very first alloc RPC fails injected; the retry links anyway.
        let vm = sys.launch(TenantSpec::new("chaos")).unwrap();
        let fe = vm.frontend(0);
        let data = payload(0, 4096, seed);
        fe.write_rank(&[(0, 0, &data)]).unwrap();
        let (out, _) = fe.read_rank(&[(0, 0, data.len() as u64)]).unwrap();
        assert_eq!(out[0], data);

        let plane = sys.fault_plane().unwrap();
        let stats = plane.point_stats(FaultSite::ManagerRpc.name()).unwrap();
        assert_eq!(stats.fired, 1, "parallel={parallel}: {stats:?}");
        let snap = sys.registry().snapshot();
        assert_eq!(snap.count("retry.attempts"), 1);
        assert_eq!(snap.count("retry.giveups"), 0);
        assert!(
            snap.count("retry.backoff_vt") > 0 || snap.get("retry.backoff_vt").is_some(),
            "backoff was charged: {snap:?}"
        );
        per_mode.push((out, stats.fired, snap.count("retry.attempts")));
        drop(vm);
        sys.shutdown();
    }
    assert_eq!(per_mode[0], per_mode[1]);
}

/// Exhausting the retry budget on a persistent manager fault gives up with
/// a typed error and exact giveup accounting — graceful degradation, not a
/// hang.
#[test]
fn persistent_manager_fault_gives_up_typed() {
    let seed = sweep_seed();
    let vcfg = VpimConfig::builder()
        .batching(false)
        .prefetch(false)
        .inject_seed(seed)
        .inject_fault(FaultSite::ManagerRpc, FaultPlan::EveryK(1))
        .build();
    let sys = VpimSystem::start(host(), vcfg, StartOpts::default());
    let err = sys.launch(TenantSpec::new("chaos")).unwrap_err();
    // The injected kind survives the virtio crossing (Remote) or surfaces
    // directly, depending on where linking failed.
    assert_eq!(err.kind(), ErrorKind::Injected, "{err}");
    let snap = sys.registry().snapshot();
    assert_eq!(snap.count("retry.giveups"), 1, "{snap:?}");
    assert_eq!(snap.count("retry.attempts"), 3, "4 attempts = 3 retries");
    sys.shutdown();
}

// ------------------------------------------------------------ storm sweep

/// Probability storm: every storm-safe fault point armed at once with a
/// seeded per-mille plan. Every failure must be typed; firing totals must
/// match the seeded oracle exactly; and after `disarm_all` the system runs
/// clean with bit-identical payloads.
#[test]
fn seeded_probability_storm_only_ever_fails_typed() {
    let seed = sweep_seed();
    let plan = FaultPlan::Probability { permille: 20 };
    // Serial-counter points, whose firing totals the oracle predicts from
    // the hit count alone (keyed points repeat caller keys across requests
    // and are covered by their dedicated scenarios above).
    let points = [
        FaultSite::KickDrop,
        FaultSite::IrqDelay,
        FaultSite::MemEio,
        FaultSite::CiOp,
        FaultSite::ManagerRpc,
    ];
    for parallel in [false, true] {
        let (sys, vm, plane) = chaos_system(parallel, seed);
        for p in points {
            plane.arm(p.name(), plan);
        }
        let fe = vm.frontend(0);
        let mut failures = 0u64;
        for i in 0..12u64 {
            let data = payload(0, 2048, seed ^ i);
            match fe.write_rank(&[(0, (i % 4) * 4096, &data)]) {
                Ok(_) => {}
                Err(e) => {
                    assert_eq!(e.kind(), ErrorKind::Injected, "untyped storm error: {e}");
                    failures += 1;
                }
            }
            match fe.read_rank(&[(0, (i % 4) * 4096, 2048)]) {
                Ok(_) => {}
                Err(e) => {
                    assert_eq!(e.kind(), ErrorKind::Injected, "untyped storm error: {e}");
                    failures += 1;
                }
            }
        }
        for p in points {
            let stats = plane.point_stats(p.name()).unwrap();
            assert_eq!(
                stats.fired,
                plan.count_fires(seed, p.name(), stats.hits),
                "parallel={parallel} point {}: {stats:?}",
                p.name()
            );
            assert_eq!(stats.hits, stats.fired + stats.suppressed, "{stats:?}");
        }
        // (b) after the storm: disarm everything, clean bit-identical run.
        plane.disarm_all();
        let data = payload(0, 8192, !seed);
        fe.write_rank(&[(0, 0, &data)]).unwrap();
        let (out, _) = fe.read_rank(&[(0, 0, data.len() as u64)]).unwrap();
        assert_eq!(out[0], data, "parallel={parallel} after {failures} storm failures");
        let snap = sys.registry().snapshot();
        assert_eq!(snap.level("virtio.queue.depth.rank0"), 0);
        assert_eq!(snap.level("datapath.pool.outstanding"), 0);
        drop(vm);
        sys.shutdown();
    }
}

/// Injection disabled (the default) is a zero-overhead passthrough: no
/// plane exists, no `inject.*` metrics appear, and behavior is identical
/// to a plain run.
#[test]
fn disabled_injection_is_pure_passthrough() {
    let sys = VpimSystem::start(host(), VpimConfig::full(), StartOpts::default());
    assert!(sys.fault_plane().is_none());
    let vm = sys.launch(TenantSpec::new("plain")).unwrap();
    let fe = vm.frontend(0);
    let data = payload(0, 4096, 7);
    fe.write_rank(&[(0, 0, &data)]).unwrap();
    let (out, _) = fe.read_rank(&[(0, 0, data.len() as u64)]).unwrap();
    assert_eq!(out[0], data);
    let snap = sys.registry().snapshot();
    assert_eq!(snap.count("inject.fired"), 0);
    assert_eq!(snap.count("retry.attempts"), 0);
    drop(vm);
    sys.shutdown();
}

// ------------------------------------------------------- persistent heap

/// Pheap geometry that fits `PimConfig::small()`'s 1 MiB banks.
fn pheap_opts(sys: &VpimSystem) -> PheapOptions {
    PheapOptions::new()
        .base(64 << 10)
        .wal_size(16 << 10)
        .root_size(8 << 10)
        .data_size(64 << 10)
        .resident_budget(8 << 10)
        .attach(sys)
}

/// A torn WAL append surfaces typed, the `inject.*` totals are exact
/// (persist attempts are keyed by sequence number, so `Nth(2)` spares
/// the first persist and tears the second), and recovery discards the
/// torn tail — the committed payload survives bit-identically in both
/// dispatch modes.
#[test]
fn torn_pheap_wal_append_is_typed_and_recovery_discards_the_tail() {
    let seed = sweep_seed();
    let plan = FaultPlan::Nth(2);
    let mut per_mode = Vec::new();
    for parallel in [false, true] {
        let (sys, vm, plane) = chaos_system(parallel, seed);
        let mut heap = Pheap::format(vm.frontend(0).clone(), pheap_opts(&sys)).unwrap();
        plane.arm(PHEAP_WAL_TORN_POINT, plan);

        let a = heap.alloc(512).unwrap();
        heap.write(a, 0, &payload(0, 512, seed)).unwrap();
        heap.persist().unwrap(); // seq 1 → key 0: spared by Nth(2)
        heap.write(a, 0, &payload(0, 512, !seed)).unwrap();
        let err = heap.persist().unwrap_err(); // seq 2 → key 1: torn
        assert_eq!(err.kind(), ErrorKind::Injected, "untyped error: {err}");

        let stats = plane.point_stats(PHEAP_WAL_TORN_POINT).unwrap();
        assert_eq!((stats.hits, stats.fired), (2, 1), "parallel={parallel}");
        assert_eq!(stats.fired, plan.count_fires(seed, PHEAP_WAL_TORN_POINT, stats.hits));
        let snap = sys.registry().snapshot();
        assert_eq!(snap.count("inject.fired"), 1);
        assert_eq!(snap.count("pheap.persist.failures"), 1);

        // Crash here: recovery must discard the torn tail and come back
        // at the first persist, with zero leakage of the second write.
        plane.disarm_all();
        drop(heap);
        let (mut rec, report) =
            Pheap::recover(vm.frontend(0).clone(), pheap_opts(&sys)).unwrap();
        assert!(report.discarded_tail, "{report:?}");
        assert!(!report.replayed, "{report:?}");
        assert_eq!(report.applied_seq, 1);
        let got = rec.read(a, 0, 512).unwrap();
        assert_eq!(got, payload(0, 512, seed), "uncommitted write leaked");
        per_mode.push((got, stats.hits, stats.fired));
        drop(rec);
        drop(vm);
        sys.shutdown();
    }
    assert_eq!(per_mode[0], per_mode[1], "dispatch modes must agree bit-for-bit");
}

/// A dropped commit record leaves a *fully written* transaction body that
/// recovery must still discard: durability begins at the commit record,
/// not at the append.
#[test]
fn dropped_pheap_commit_discards_a_fully_written_body() {
    let seed = sweep_seed();
    let plan = FaultPlan::Nth(2);
    let mut per_mode = Vec::new();
    for parallel in [false, true] {
        let (sys, vm, plane) = chaos_system(parallel, seed);
        let mut heap = Pheap::format(vm.frontend(0).clone(), pheap_opts(&sys)).unwrap();
        plane.arm(PHEAP_PERSIST_DROP_POINT, plan);

        let a = heap.alloc(768).unwrap();
        heap.write(a, 0, &payload(1, 768, seed)).unwrap();
        heap.persist().unwrap(); // seq 1 → key 0: spared
        let b = heap.alloc(64).unwrap(); // born after the commit point
        heap.write(a, 256, &payload(2, 256, seed)).unwrap();
        heap.write(b, 0, &payload(3, 64, seed)).unwrap();
        let err = heap.persist().unwrap_err(); // seq 2 → key 1: commit dropped
        assert_eq!(err.kind(), ErrorKind::Injected, "untyped error: {err}");

        let stats = plane.point_stats(PHEAP_PERSIST_DROP_POINT).unwrap();
        assert_eq!((stats.hits, stats.fired), (2, 1), "parallel={parallel}");
        assert_eq!(
            stats.fired,
            plan.count_fires(seed, PHEAP_PERSIST_DROP_POINT, stats.hits)
        );
        assert_eq!(sys.registry().snapshot().count("inject.fired"), 1);

        plane.disarm_all();
        drop(heap);
        let (mut rec, report) =
            Pheap::recover(vm.frontend(0).clone(), pheap_opts(&sys)).unwrap();
        assert!(report.discarded_tail && !report.replayed, "{report:?}");
        assert_eq!(report.applied_seq, 1);
        // Object `a` is exactly at persist #1; `b` was allocated after
        // that commit point, so recovery must not know it at all.
        assert_eq!(rec.read(a, 0, 768).unwrap(), payload(1, 768, seed));
        assert!(rec.read(b, 0, 64).is_err(), "uncommitted alloc leaked");
        per_mode.push((rec.ids(), stats.hits, stats.fired));
        drop(rec);
        drop(vm);
        sys.shutdown();
    }
    assert_eq!(per_mode[0], per_mode[1], "dispatch modes must agree bit-for-bit");
}

/// The 8-seed crash matrix (derived from `CHAOS_SEED` like the gate's
/// fixed-seed sweep): each seed picks a fault site and schedule, runs a
/// deterministic write/persist stream until the injected crash, kills
/// the VM via rank snapshot, restores into a fresh VM, and recovers.
/// The recovered heap must equal the committed prefix bit-for-bit, with
/// exact injection totals, identically in both dispatch modes.
#[test]
fn pheap_crash_matrix_recovers_committed_state_across_seeds() {
    let base = sweep_seed();
    for k in 0..8u64 {
        let seed = base ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let site = if seed & 1 == 0 { PHEAP_WAL_TORN_POINT } else { PHEAP_PERSIST_DROP_POINT };
        let plan = FaultPlan::Nth(1 + seed % 4);
        let mut per_mode = Vec::new();
        for parallel in [false, true] {
            let (sys, vm, plane) = chaos_system(parallel, seed);
            let mut heap = Pheap::format(vm.frontend(0).clone(), pheap_opts(&sys)).unwrap();
            let a = heap.alloc(512).unwrap();
            let b = heap.alloc(512).unwrap();
            plane.arm(site, plan);

            // Committed-prefix oracle: updated only when persist returns Ok.
            let mut committed: Option<u64> = None; // last committed round
            let mut crashed_at = None;
            let mut persists = 0u64;
            for round in 0..6u64 {
                heap.write(a, 0, &payload(0, 512, seed ^ round)).unwrap();
                heap.write(b, 0, &payload(1, 512, !seed ^ round)).unwrap();
                match heap.persist() {
                    Ok(_) => {
                        committed = Some(round);
                        persists += 1;
                    }
                    Err(e) => {
                        assert_eq!(e.kind(), ErrorKind::Injected, "untyped error: {e}");
                        crashed_at = Some(round);
                        break;
                    }
                }
            }
            let crashed_at = crashed_at.expect("Nth(1..=4) fires within 6 persists");
            let stats = plane.point_stats(site).unwrap();
            assert_eq!((stats.hits, stats.fired), (persists + 1, 1), "seed {seed:#x}");
            assert_eq!(stats.fired, plan.count_fires(seed, site, stats.hits));

            // Kill-at-site: snapshot before the manager can reset the rank.
            let expected_seq = heap.applied_seq();
            let rid = vm.devices()[0].backend().linked_rank().unwrap();
            let snap = sys.driver().machine().rank(rid).unwrap().snapshot();
            drop(heap);
            drop(vm);
            plane.disarm_all();

            let vm2 = sys.launch(TenantSpec::new("chaos")).unwrap();
            let rid2 = vm2.devices()[0].backend().linked_rank().unwrap();
            sys.driver().machine().rank(rid2).unwrap().restore(&snap).unwrap();
            let (mut rec, report) =
                Pheap::recover(vm2.frontend(0).clone(), pheap_opts(&sys)).unwrap();
            assert_eq!(report.applied_seq, expected_seq, "seed {seed:#x}");
            assert!(report.discarded_tail, "seed {seed:#x}: {report:?}");
            rec.check_invariants().unwrap();
            let got = match committed {
                Some(r) => {
                    let ga = rec.read(a, 0, 512).unwrap();
                    let gb = rec.read(b, 0, 512).unwrap();
                    assert_eq!(ga, payload(0, 512, seed ^ r), "seed {seed:#x}");
                    assert_eq!(gb, payload(1, 512, !seed ^ r), "seed {seed:#x}");
                    Some((ga, gb))
                }
                // Crash on the very first persist: the allocs were never
                // committed, so recovery must not know the objects at all.
                None => {
                    assert_eq!(rec.object_count(), 0, "seed {seed:#x}: allocs leaked");
                    None
                }
            };
            per_mode.push((got, crashed_at, stats.hits, stats.fired, report));
            drop(rec);
            drop(vm2);
            sys.shutdown();
        }
        assert_eq!(per_mode[0], per_mode[1], "seed {seed:#x}: modes diverged");
    }
}
