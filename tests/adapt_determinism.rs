//! Adaptive-controller determinism (DESIGN.md §16): the controller is a
//! pure function of virtual-time observations, so with `adapt` enabled the
//! same workload must produce bit-identical payloads, per-request reports,
//! and `frontend.adapt.*` telemetry under `DispatchMode::Sequential` and
//! `DispatchMode::Parallel`, and under any test-harness thread count (the
//! gate runs `canonical_adapt_report` under `RUST_TEST_THREADS=1` and `=8`
//! and byte-compares the JSON). Property tests pin the policy machines:
//! the window never leaves its bounds and converges on steady traces
//! instead of oscillating.

use std::sync::Arc;

use microbench::Checksum;
use proptest::prelude::*;
use upmem_driver::UpmemDriver;
use upmem_sim::{PimConfig, PimMachine};
use vpim::frontend::policy::{BatchPolicy, WindowPolicy, PAGE};
use vpim::{AdaptSection, OpReport, StartOpts, TenantSpec, VpimConfig, VpimSystem};

const RANKS: usize = 2;
const DPUS: u32 = 8;

fn host() -> Arc<UpmemDriver> {
    let machine = PimMachine::new(PimConfig {
        ranks: RANKS,
        functional_dpus: vec![DPUS as usize; RANKS],
        mram_size: 1 << 20,
        ..PimConfig::small()
    });
    Checksum::register(&machine);
    Arc::new(UpmemDriver::new(machine))
}

/// Deterministic per-(rank, dpu, byte) payload.
fn payload(rank: usize, dpu: u32, len: usize) -> Vec<u8> {
    let seed = (rank * 131 + dpu as usize * 17 + 7) as u32;
    (0..len)
        .map(|i| (seed.wrapping_mul(48271).wrapping_add(i as u32) >> 5) as u8)
        .collect()
}

/// Everything a run produces that must be bit-identical across modes.
#[derive(Debug, PartialEq)]
struct MixResult {
    reports: Vec<OpReport>,
    outputs: Vec<Vec<u8>>,
    adapt: Vec<(String, i64)>,
}

/// A workload hitting every controller path: direct writes, a kernel
/// launch barrier, the RED-shaped one-small-read-per-DPU scatter, a
/// streaming walk, the write-then-read-back pattern, and a batched
/// small-write burst.
fn run_adaptive_mix(parallel: bool) -> MixResult {
    let cfg = VpimConfig::builder().adaptive(true).parallel(parallel).build();
    let sys = VpimSystem::start(host(), cfg, StartOpts::default());
    let vm = sys.launch(TenantSpec::new("adapt-det").devices(RANKS)).unwrap();
    let mut reports = Vec::new();
    let mut outputs = Vec::new();
    let all: Vec<u32> = (0..DPUS).collect();

    for (r, fe) in vm.frontends().iter().enumerate() {
        assert_eq!(fe.adapt_window_pages(), Some(16), "controller must start static");

        // Direct writes seed every DPU's MRAM.
        let datas: Vec<Vec<u8>> = (0..DPUS).map(|d| payload(r, d, 16 << 10)).collect();
        let entries: Vec<(u32, u64, &[u8])> =
            datas.iter().enumerate().map(|(d, p)| (d as u32, 0, p.as_slice())).collect();
        reports.push(fe.write_rank(&entries).unwrap());

        // A real launch: flushes, invalidates, and hits the controller's
        // barrier path.
        reports.push(fe.load_program(Checksum::KERNEL, &all).unwrap());
        let nbytes: Vec<(u32, u32)> = all.iter().map(|d| (*d, 4096)).collect();
        reports.push(fe.scatter_symbol("nbytes", &nbytes).unwrap());
        reports.push(fe.launch(&all, 16).unwrap());
        let (_, poll) = fe.poll_status(0).unwrap();
        reports.push(poll);

        // RED shape: one 256 B read per DPU — the static over-fetch
        // pathology the controller learns across DPUs.
        for d in 0..DPUS {
            let (outs, rep) = fe.read_rank(&[(d, 8192, 256)]).unwrap();
            outputs.extend(outs);
            reports.push(rep);
        }

        // Streaming walk on DPU 0: hit runs and overrun misses.
        for i in 0..64u64 {
            let (outs, rep) = fe.read_rank(&[(0, i * 256, 256)]).unwrap();
            outputs.extend(outs);
            reports.push(rep);
        }

        // Write-then-read-back: a batched small write immediately read
        // back — the dirty-region miss that flips prefetch off per-DPU.
        reports.push(fe.write_rank(&[(1, 8192, &[0xAA; 128])]).unwrap());
        for _ in 0..2 {
            let (outs, rep) = fe.read_rank(&[(1, 8192, 128)]).unwrap();
            assert_eq!(outs[0], vec![0xAA; 128], "read-back must stay coherent");
            outputs.extend(outs);
            reports.push(rep);
        }
        reports.push(fe.launch(&all, 16).unwrap()); // barrier clears the flip

        // Batched small-write burst, flushed by a read.
        for i in 0..32u64 {
            reports
                .push(fe.write_rank(&[((i % 4) as u32, 32768 + (i / 4) * 256, &[9u8; 256])]).unwrap());
        }
        let (outs, rep) = fe.read_rank(&[(0, 32768, 256)]).unwrap();
        outputs.extend(outs);
        reports.push(rep);
    }

    let snap = sys.registry().snapshot();
    let mut adapt = Vec::new();
    for name in [
        "frontend.adapt.window.grows",
        "frontend.adapt.window.shrinks",
        "frontend.adapt.prefetch.flips",
        "frontend.adapt.batch.early_flushes",
        "frontend.adapt.bytes.saved",
        "frontend.adapt.bytes.extra",
        "frontend.prefetch.invalidations.scoped",
        "frontend.prefetch.invalidations.global",
    ] {
        adapt.push((name.to_string(), snap.count(name) as i64));
    }
    for device in 0..RANKS {
        for kind in ["window", "batch"] {
            let name = format!("frontend.adapt.{kind}.pages.rank{device}");
            adapt.push((name.clone(), snap.level(&name)));
        }
    }
    drop(vm);
    sys.shutdown();
    MixResult { reports, outputs, adapt }
}

#[test]
fn adaptive_runs_identical_across_dispatch_modes() {
    let seq = run_adaptive_mix(false);
    let par = run_adaptive_mix(true);
    assert_eq!(seq.outputs, par.outputs, "payloads diverged");
    assert_eq!(seq.reports.len(), par.reports.len());
    for (i, (s, p)) in seq.reports.iter().zip(&par.reports).enumerate() {
        assert_eq!(s, p, "request {i}: dispatch mode leaked into the controller");
    }
    assert_eq!(seq.adapt, par.adapt, "frontend.adapt.* telemetry diverged");
    // The mix actually exercised the controller.
    let count = |name: &str| {
        seq.adapt.iter().find(|(n, _)| n == name).map(|(_, v)| *v).unwrap()
    };
    assert!(count("frontend.adapt.window.shrinks") > 0, "RED shape never shrank");
    assert!(count("frontend.adapt.window.grows") > 0, "streaming never grew");
    assert!(count("frontend.adapt.prefetch.flips") > 0, "WRB never flipped");
    assert!(count("frontend.prefetch.invalidations.scoped") > 0);
    assert!(count("frontend.prefetch.invalidations.global") > 0);
}

#[test]
fn adaptive_parallel_run_is_self_identical() {
    assert_eq!(run_adaptive_mix(true), run_adaptive_mix(true));
}

/// The default (static) configuration must not register any
/// `frontend.adapt.*` metric: the registry dump of a pre-existing
/// deployment is part of the compatibility surface, and a zeroed gauge
/// would advertise a controller that is not running.
#[test]
fn static_config_registers_no_adapt_metrics() {
    let sys = VpimSystem::start(host(), VpimConfig::full(), StartOpts::default());
    let vm = sys.launch(TenantSpec::new("static-reg").devices(RANKS)).unwrap();
    let fe = &vm.frontends()[0];
    fe.write_rank(&[(0, 4096, payload(0, 0, 256).as_slice())]).unwrap();
    assert_eq!(fe.adapt_window_pages(), None);
    let snap = sys.registry().snapshot();
    assert_eq!(
        snap.with_prefix("frontend.adapt.").count(),
        0,
        "static config leaked adapt metrics into the registry"
    );
    drop(vm);
    sys.shutdown();
}

/// FNV-1a over a byte stream — a stable fingerprint for the JSON report.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// The gate's artifact: one canonical parallel run serialized to JSON.
/// `ci/adaptive-gate.sh` runs this under `RUST_TEST_THREADS=1` and `=8`
/// and byte-compares the two files — harness scheduling must not reach
/// virtual time or the controller.
#[test]
fn canonical_adapt_report() {
    let mix = run_adaptive_mix(true);
    let reports_hash = fnv1a(format!("{:?}", mix.reports).as_bytes());
    let outputs_hash = fnv1a(format!("{:?}", mix.outputs).as_bytes());
    let cells: Vec<String> =
        mix.adapt.iter().map(|(n, v)| format!("\"{n}\":{v}")).collect();
    let json = format!(
        "{{\"suite\":\"adapt_determinism\",\"reports_fnv\":{reports_hash},\"outputs_fnv\":{outputs_hash},\"telemetry\":{{{}}}}}",
        cells.join(",")
    );
    if let Ok(path) = std::env::var("ADAPT_REPORT_OUT") {
        std::fs::write(&path, &json).expect("write ADAPT_REPORT_OUT");
    }
}

fn section() -> AdaptSection {
    AdaptSection { enabled: true, ..AdaptSection::default() }
}

proptest! {
    /// The window never leaves `[min, max]` under any event sequence.
    #[test]
    fn window_policy_stays_in_bounds(
        initial in 1u32..65,
        events in proptest::collection::vec((0u8..4, 0u32..8, 0u64..(128 * 4096)), 0..256),
    ) {
        let mut w = WindowPolicy::new(initial, &section());
        for (kind, dpu, served) in events {
            match kind {
                0 => w.on_hit(dpu),
                1 => { w.on_overrun_miss(dpu); }
                2 => w.on_plain_miss(),
                _ => { w.on_fetch_retired(w.window_bytes(), served); }
            }
            prop_assert!((1..=64).contains(&w.window_pages()),
                "window escaped bounds: {}", w.window_pages());
        }
    }

    /// On a steady trace (every fetch serves the same byte count) the
    /// window converges: it jumps to the observed need once and never
    /// moves again — no oscillation.
    #[test]
    fn window_policy_converges_on_steady_traces(
        initial in 1u32..65,
        served in 1u64..(64 * 4096 + 1),
    ) {
        let mut w = WindowPolicy::new(initial, &section());
        let mut moves = 0;
        for _ in 0..100 {
            let before = w.window_pages();
            w.on_fetch_retired(w.window_bytes(), served.min(w.window_bytes()));
            if w.window_pages() != before {
                moves += 1;
            }
        }
        prop_assert!(moves <= 1, "window moved {moves} times on a steady trace");
        // And the settled window actually covers the need when it shrank.
        let settled = w.window_pages();
        w.on_fetch_retired(w.window_bytes(), served.min(w.window_bytes()));
        prop_assert_eq!(w.window_pages(), settled);
    }

    /// Streaming growth is monotone up to the cap and stays there.
    #[test]
    fn window_policy_growth_is_monotone(rounds in 1usize..12) {
        let mut w = WindowPolicy::new(16, &section());
        let mut prev = w.window_pages();
        for _ in 0..rounds {
            for _ in 0..8 {
                w.on_hit(0);
            }
            w.on_overrun_miss(0);
            prop_assert!(w.window_pages() >= prev);
            prop_assert!(w.window_pages() <= 64);
            prev = w.window_pages();
        }
    }

    /// The batch threshold never leaves `[min, max]` pages.
    #[test]
    fn batch_policy_stays_in_bounds(
        gaps in proptest::collection::vec((0u64..1_000_000, any::<bool>()), 0..256),
    ) {
        let mut b = BatchPolicy::new(64, &section());
        let s = section();
        for (gap, pending) in gaps {
            b.on_append_gap(gap, pending);
            let pages = (b.threshold_bytes() / PAGE) as u32;
            prop_assert!(pages >= s.min_batch_pages && pages <= s.max_batch_pages,
                "threshold escaped bounds: {pages} pages");
        }
    }
}
