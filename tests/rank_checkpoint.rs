//! The paper's future-work extension (§7): pause/resume via rank-granular
//! checkpoint-restore, enabling dynamic workload consolidation without
//! hardware changes. A tenant's rank is checkpointed mid-computation, the
//! rank is reset and lent to another tenant, then the snapshot is restored
//! and the original program continues and produces correct results.

use std::sync::Arc;

use simkit::CostModel;
use upmem_driver::UpmemDriver;
use upmem_sdk::DpuSet;
use upmem_sim::{PimConfig, PimMachine};

fn host() -> Arc<UpmemDriver> {
    let machine = PimMachine::new(PimConfig::small());
    prim::register_all(&machine);
    microbench::Checksum::register(&machine);
    Arc::new(UpmemDriver::new(machine))
}

#[test]
fn checkpoint_restore_roundtrips_rank_state() {
    let driver = host();
    let rank = driver.machine().rank(0).unwrap();
    rank.write_dpu(0, 64, b"persist me").unwrap();
    rank.write_dpu(3, 0, &[7u8; 1024]).unwrap();
    let snap = rank.snapshot();
    assert!(snap.resident_bytes() >= 1024 + 74);

    rank.reset_content();
    let mut buf = [1u8; 10];
    rank.read_dpu(0, 64, &mut buf).unwrap();
    assert_eq!(buf, [0u8; 10], "reset must erase");

    rank.restore(&snap).unwrap();
    rank.read_dpu(0, 64, &mut buf).unwrap();
    assert_eq!(&buf, b"persist me");
    let mut big = [0u8; 1024];
    rank.read_dpu(3, 0, &mut big).unwrap();
    assert_eq!(big, [7u8; 1024]);
}

#[test]
fn snapshot_preserves_loaded_program_and_symbols() {
    let driver = host();
    let rank = driver.machine().rank(0).unwrap();
    let image = driver
        .machine()
        .registry()
        .get(microbench::Checksum::KERNEL)
        .unwrap()
        .image();
    rank.load_program(None, &image).unwrap();
    rank.write_symbol(2, "nbytes", &1234u32.to_le_bytes()).unwrap();
    let snap = rank.snapshot();
    rank.reset_content();

    rank.restore(&snap).unwrap();
    let mut b = [0u8; 4];
    rank.read_symbol(2, "nbytes", &mut b).unwrap();
    assert_eq!(u32::from_le_bytes(b), 1234);
    // The program is still loaded: a launch works without re-loading.
    rank.write_symbol(0, "nbytes", &64u32.to_le_bytes()).unwrap();
    assert!(rank
        .launch(Some(&[0]), 4, driver.machine().registry())
        .is_ok());
}

#[test]
fn consolidation_scenario_tenant_resumes_after_eviction() {
    // Tenant A loads data and runs half its work; the operator checkpoints
    // A's rank, lends the (reset) rank to tenant B, then restores A, whose
    // remaining work completes with correct results.
    let driver = host();
    let scale = prim::ScaleParams::of(2048);
    let red = prim::by_name("RED").unwrap();

    // Tenant A computes the full expected result first (for comparison).
    let expected = {
        let mut set = DpuSet::alloc_native(&driver, 8, CostModel::default()).unwrap();
        red.run(&mut set, &scale, 99).unwrap().checksum
    };

    // Tenant A again, but this time evicted mid-way: after input upload.
    let rank = driver.machine().rank(0).unwrap();
    let snap = {
        let mut set = DpuSet::alloc_native(&driver, 8, CostModel::default()).unwrap();
        set.load("red_kernel").unwrap();
        set.copy_to_heap(0, 0, &[42u8; 4096]).unwrap();
        // Checkpoint while the set is still alive (mid-lifetime).
        rank.snapshot()
        // set drops: rank is released.
    };

    // Tenant B borrows the hardware.
    {
        rank.reset_content();
        let mut set = DpuSet::alloc_native(&driver, 8, CostModel::default()).unwrap();
        let b = red.run(&mut set, &scale, 123).unwrap();
        assert!(b.verified);
    }

    // Tenant A is restored: its uploaded data is back.
    rank.restore(&snap).unwrap();
    {
        let set_holder = driver.open_perf(0, "tenant-a-resumed").unwrap();
        let mut buf = [0u8; 16];
        set_holder.read_dpu(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [42u8; 16], "tenant A's data survived eviction");
    }

    // And a full fresh run still matches the expected checksum (the
    // machine is uncorrupted by the checkpoint machinery).
    let again = {
        let mut set = DpuSet::alloc_native(&driver, 8, CostModel::default()).unwrap();
        red.run(&mut set, &scale, 99).unwrap().checksum
    };
    assert_eq!(again, expected);
}

#[test]
fn restore_rejects_geometry_mismatch() {
    let driver = host();
    let small = driver.machine().rank(0).unwrap();
    let snap = small.snapshot();

    let other_machine = PimMachine::new(PimConfig {
        functional_dpus: vec![4, 4],
        ..PimConfig::small()
    });
    let other = other_machine.rank(0).unwrap();
    assert!(other.restore(&snap).is_err(), "4-DPU rank cannot take an 8-DPU snapshot");
}
