//! The paper's future-work extension (§7): pause/resume via rank-granular
//! checkpoint-restore, enabling dynamic workload consolidation without
//! hardware changes. A tenant's rank is checkpointed mid-computation, the
//! rank is reset and lent to another tenant, then the snapshot is restored
//! and the original program continues and produces correct results.

use std::sync::Arc;

use simkit::CostModel;
use upmem_driver::UpmemDriver;
use upmem_sdk::DpuSet;
use upmem_sim::{PimConfig, PimMachine};

fn host() -> Arc<UpmemDriver> {
    let machine = PimMachine::new(PimConfig::small());
    prim::register_all(&machine);
    microbench::Checksum::register(&machine);
    Arc::new(UpmemDriver::new(machine))
}

#[test]
fn checkpoint_restore_roundtrips_rank_state() {
    let driver = host();
    let rank = driver.machine().rank(0).unwrap();
    rank.write_dpu(0, 64, b"persist me").unwrap();
    rank.write_dpu(3, 0, &[7u8; 1024]).unwrap();
    let snap = rank.snapshot();
    assert!(snap.resident_bytes() >= 1024 + 74);

    rank.reset_content();
    let mut buf = [1u8; 10];
    rank.read_dpu(0, 64, &mut buf).unwrap();
    assert_eq!(buf, [0u8; 10], "reset must erase");

    rank.restore(&snap).unwrap();
    rank.read_dpu(0, 64, &mut buf).unwrap();
    assert_eq!(&buf, b"persist me");
    let mut big = [0u8; 1024];
    rank.read_dpu(3, 0, &mut big).unwrap();
    assert_eq!(big, [7u8; 1024]);
}

#[test]
fn snapshot_preserves_loaded_program_and_symbols() {
    let driver = host();
    let rank = driver.machine().rank(0).unwrap();
    let image = driver
        .machine()
        .registry()
        .get(microbench::Checksum::KERNEL)
        .unwrap()
        .image();
    rank.load_program(None, &image).unwrap();
    rank.write_symbol(2, "nbytes", &1234u32.to_le_bytes()).unwrap();
    let snap = rank.snapshot();
    rank.reset_content();

    rank.restore(&snap).unwrap();
    let mut b = [0u8; 4];
    rank.read_symbol(2, "nbytes", &mut b).unwrap();
    assert_eq!(u32::from_le_bytes(b), 1234);
    // The program is still loaded: a launch works without re-loading.
    rank.write_symbol(0, "nbytes", &64u32.to_le_bytes()).unwrap();
    assert!(rank
        .launch(Some(&[0]), 4, driver.machine().registry())
        .is_ok());
}

#[test]
fn consolidation_scenario_tenant_resumes_after_eviction() {
    // Tenant A loads data and runs half its work; the operator checkpoints
    // A's rank, lends the (reset) rank to tenant B, then restores A, whose
    // remaining work completes with correct results.
    let driver = host();
    let scale = prim::ScaleParams::of(2048);
    let red = prim::by_name("RED").unwrap();

    // Tenant A computes the full expected result first (for comparison).
    let expected = {
        let mut set = DpuSet::alloc_native(&driver, 8, CostModel::default()).unwrap();
        red.run(&mut set, &scale, 99).unwrap().checksum
    };

    // Tenant A again, but this time evicted mid-way: after input upload.
    let rank = driver.machine().rank(0).unwrap();
    let snap = {
        let mut set = DpuSet::alloc_native(&driver, 8, CostModel::default()).unwrap();
        set.load("red_kernel").unwrap();
        set.copy_to_heap(0, 0, &[42u8; 4096]).unwrap();
        // Checkpoint while the set is still alive (mid-lifetime).
        rank.snapshot()
        // set drops: rank is released.
    };

    // Tenant B borrows the hardware.
    {
        rank.reset_content();
        let mut set = DpuSet::alloc_native(&driver, 8, CostModel::default()).unwrap();
        let b = red.run(&mut set, &scale, 123).unwrap();
        assert!(b.verified);
    }

    // Tenant A is restored: its uploaded data is back.
    rank.restore(&snap).unwrap();
    {
        let set_holder = driver.open_perf(0, "tenant-a-resumed").unwrap();
        let mut buf = [0u8; 16];
        set_holder.read_dpu(0, 0, &mut buf).unwrap();
        assert_eq!(buf, [42u8; 16], "tenant A's data survived eviction");
    }

    // And a full fresh run still matches the expected checksum (the
    // machine is uncorrupted by the checkpoint machinery).
    let again = {
        let mut set = DpuSet::alloc_native(&driver, 8, CostModel::default()).unwrap();
        red.run(&mut set, &scale, 99).unwrap().checksum
    };
    assert_eq!(again, expected);
}

#[test]
fn restore_rejects_geometry_mismatch() {
    let driver = host();
    let small = driver.machine().rank(0).unwrap();
    let snap = small.snapshot();

    let other_machine = PimMachine::new(PimConfig {
        functional_dpus: vec![4, 4],
        ..PimConfig::small()
    });
    let other = other_machine.rank(0).unwrap();
    assert!(other.restore(&snap).is_err(), "4-DPU rank cannot take an 8-DPU snapshot");
}

// -------------------------------------------------- persistent-heap WAL

/// Regression for `vpim::pheap` over checkpoint/restore: a rank holding a
/// *mid-WAL uncommitted tail* (a persist torn by `pheap.wal.torn`) must
/// round-trip through snapshot→restore bit-exactly, and recovery must
/// truncate that tail identically whether it runs before or after the
/// restore. The discard path is read-only, so the post-recovery MRAM
/// image is also bit-identical to the crashed one.
#[test]
fn pheap_uncommitted_wal_tail_roundtrips_and_truncates_identically() {
    use simkit::{ErrorKind, FaultPlan, HasErrorKind};
    use vpim::{
        Pheap, PheapOptions, StartOpts, TenantSpec, VpimConfig, VpimSystem,
        PHEAP_WAL_TORN_POINT,
    };

    let vcfg = VpimConfig::builder()
        .batching(false)
        .prefetch(false)
        .inject_seed(11)
        .build();
    let sys = VpimSystem::start(host(), vcfg, StartOpts::default());
    let vm = sys.launch(TenantSpec::new("pheap-ckpt")).unwrap();
    let plane = sys.fault_plane().unwrap().clone();
    let opts = || {
        PheapOptions::new()
            .base(64 << 10)
            .wal_size(16 << 10)
            .root_size(8 << 10)
            .data_size(64 << 10)
            .resident_budget(8 << 10)
            .attach(&sys)
    };

    let mut heap = Pheap::format(vm.frontend(0).clone(), opts()).unwrap();
    let a = heap.alloc(600).unwrap();
    heap.write(a, 0, &[0xA5; 600]).unwrap();
    heap.persist().unwrap(); // committed point

    // Tear the next persist mid-WAL: the rank now holds a torn tail.
    // (Persist faults are keyed by sequence number: seq 2 carries key 1,
    // which is what `Nth(2)` fires on.)
    plane.arm(PHEAP_WAL_TORN_POINT, FaultPlan::Nth(2));
    heap.write(a, 0, &[0x3C; 600]).unwrap();
    let err = heap.persist().unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Injected, "{err}");
    plane.disarm_all();
    drop(heap);

    let rid = vm.devices()[0].backend().linked_rank().unwrap();
    let rank = sys.driver().machine().rank(rid).unwrap();
    let crashed = rank.snapshot();

    // Recovery before the restore: discards the tail, reads the committed
    // payload, and — because discarding writes nothing — leaves the MRAM
    // image untouched.
    let (mut rec, pre_report) = Pheap::recover(vm.frontend(0).clone(), opts()).unwrap();
    assert!(pre_report.discarded_tail && !pre_report.replayed, "{pre_report:?}");
    assert_eq!(pre_report.applied_seq, 1);
    let pre_read = rec.read(a, 0, 600).unwrap();
    assert_eq!(pre_read, vec![0xA5; 600], "torn write leaked");
    drop(rec);
    let post_pre = rank.snapshot();
    assert_eq!(post_pre.diff_bytes(&crashed), 0, "discard recovery must be read-only");

    // Restore the crashed image: bit-exact, torn tail included.
    rank.restore(&crashed).unwrap();
    assert_eq!(rank.snapshot().diff_bytes(&crashed), 0, "restore must be bit-exact");

    // Recovery after the restore truncates identically.
    let (mut rec2, post_report) = Pheap::recover(vm.frontend(0).clone(), opts()).unwrap();
    assert_eq!(post_report, pre_report);
    assert_eq!(rec2.read(a, 0, 600).unwrap(), pre_read);
    assert_eq!(rank.snapshot().diff_bytes(&post_pre), 0, "recoveries must agree bit-exactly");

    // The recovered heap is fully usable: the lost update can be redone.
    rec2.write(a, 0, &[0x3C; 600]).unwrap();
    rec2.persist().unwrap();
    assert_eq!(rec2.read(a, 0, 600).unwrap(), vec![0x3C; 600]);
    drop(rec2);
    drop(vm);
    sys.shutdown();
}
