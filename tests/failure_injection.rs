//! Failure injection across the stack: DPU faults, protocol violations,
//! resource exhaustion — every failure must surface as a typed error, never
//! corrupt state, and leave the system usable.
//!
//! DPU-fault scenarios route through the seeded fault plane
//! (`simkit::inject`, armed via [`FaultSite`]); one legacy kernel-authored
//! fault remains as a guard that real DPU faults still cross the virtio
//! boundary with their message intact.

use std::sync::Arc;

use simkit::{CostModel, ErrorKind, FaultPlan, HasErrorKind};
use upmem_driver::UpmemDriver;
use upmem_sdk::{DpuSet, SdkError};
use upmem_sim::error::DpuFault;
use upmem_sim::kernel::{DpuKernel, KernelImage, SymbolDef};
use upmem_sim::{DpuContext, PimConfig, PimMachine};
use vpim::{FaultSite, StartOpts, TenantSpec, VpimConfig, VpimSystem};

/// Legacy guard: a kernel that faults on demand (division-by-zero style).
/// Every other fault scenario goes through the fault plane; this one stays
/// to prove kernel-raised faults still carry their message across virtio.
struct FaultyKernel;

impl DpuKernel for FaultyKernel {
    fn image(&self) -> KernelImage {
        KernelImage::new("faulty_kernel", 1 << 10).with_symbol(SymbolDef::u32("trigger"))
    }
    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
        let trigger = ctx.host_u32("trigger")?;
        ctx.parallel(|t| {
            if trigger != 0 && t.id() == 3 {
                Err(DpuFault::in_tasklet(t.id(), "injected fault"))
            } else {
                t.charge(10);
                Ok(())
            }
        })
    }
}

/// A benign kernel with a host symbol — the target for plane-routed fault
/// scenarios and symbol-error checks (no bespoke trigger plumbing).
struct SymKernel;

impl DpuKernel for SymKernel {
    fn image(&self) -> KernelImage {
        KernelImage::new("fi_ok", 1 << 10).with_symbol(SymbolDef::u32("knob"))
    }
    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
        ctx.parallel(|t| {
            t.charge(10);
            Ok(())
        })
    }
}

/// A kernel that reads outside its MRAM bank.
struct OobKernel;

impl DpuKernel for OobKernel {
    fn image(&self) -> KernelImage {
        KernelImage::new("oob_kernel", 1 << 10)
    }
    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
        let size = ctx.mram_size();
        ctx.parallel(|t| {
            let mut b = [0u8; 64];
            t.mram_read(size, &mut b)?;
            Ok(())
        })
    }
}

/// A kernel that exhausts WRAM.
struct WramHog;

impl DpuKernel for WramHog {
    fn image(&self) -> KernelImage {
        KernelImage::new("wram_hog", 1 << 10)
    }
    fn run(&self, ctx: &mut DpuContext<'_>) -> Result<(), DpuFault> {
        ctx.parallel(|t| t.wram_alloc(8 << 10))
    }
}

fn host() -> Arc<UpmemDriver> {
    let machine = PimMachine::new(PimConfig::small());
    machine.register_kernel(Arc::new(FaultyKernel));
    machine.register_kernel(Arc::new(SymKernel));
    machine.register_kernel(Arc::new(OobKernel));
    machine.register_kernel(Arc::new(WramHog));
    Arc::new(UpmemDriver::new(machine))
}

fn vm_set(driver: &Arc<UpmemDriver>) -> (VpimSystem, vpim::VpimVm) {
    let sys = VpimSystem::start(driver.clone(), VpimConfig::full(), StartOpts::default());
    let vm = sys.launch(TenantSpec::new("fi")).unwrap();
    (sys, vm)
}

/// A VM whose system has the fault plane enabled (nothing armed yet).
fn chaos_set(driver: &Arc<UpmemDriver>, seed: u64) -> (VpimSystem, vpim::VpimVm) {
    let vcfg = VpimConfig::builder()
        .batching(false)
        .prefetch(false)
        .inject_seed(seed)
        .build();
    let sys = VpimSystem::start(driver.clone(), vcfg, StartOpts::default());
    let vm = sys.launch(TenantSpec::new("fi-chaos")).unwrap();
    (sys, vm)
}

#[test]
fn dpu_fault_crosses_the_virtio_boundary_with_its_message() {
    let driver = host();
    let (sys, vm) = vm_set(&driver);
    let mut set = DpuSet::alloc_vm(vm.frontends(), 8, CostModel::default()).unwrap();
    set.load("faulty_kernel").unwrap();
    for d in 0..8 {
        set.set_symbol_u32(d, "trigger", 1).unwrap();
    }
    let err = set.launch(8).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Fault);
    match err {
        SdkError::Vpim(vpim::VpimError::Sim(upmem_sim::SimError::Fault(f))) => {
            assert!(f.message.contains("injected fault"), "{f}");
        }
        other => panic!("wrong error shape: {other:?}"),
    }
    // The VM and device remain usable after the fault.
    for d in 0..8 {
        set.set_symbol_u32(d, "trigger", 0).unwrap();
    }
    set.launch(8).expect("recovery launch");
    drop(set);
    drop(vm);
    sys.shutdown();
}

#[test]
fn injected_launch_fault_is_typed_and_clears_after_firing() {
    let driver = host();
    let (sys, vm) = chaos_set(&driver, 0xFA01);
    let plane = sys.fault_plane().expect("inject enabled").clone();
    let mut set = DpuSet::alloc_vm(vm.frontends(), 4, CostModel::default()).unwrap();
    set.load("fi_ok").unwrap();

    plane.arm(FaultSite::LaunchFault.name(), FaultPlan::Nth(1));
    let err = set.launch(4).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Fault);
    match err {
        SdkError::Vpim(vpim::VpimError::Sim(upmem_sim::SimError::Fault(f))) => {
            assert!(f.message.contains("sim.launch.fault"), "{f}");
        }
        other => panic!("wrong error shape: {other:?}"),
    }
    // Nth(1) has fired; the very next launch succeeds without re-loading.
    set.launch(4).expect("recovery launch after injected fault");
    let stats = plane.point_stats(FaultSite::LaunchFault.name()).unwrap();
    assert_eq!(stats.fired, 1);
    drop(set);
    drop(vm);
    sys.shutdown();
}

#[test]
fn injected_ci_failure_surfaces_with_a_typed_kind() {
    let driver = host();
    let (sys, vm) = chaos_set(&driver, 0xFA02);
    let plane = sys.fault_plane().expect("inject enabled").clone();
    let mut set = DpuSet::alloc_vm(vm.frontends(), 2, CostModel::default()).unwrap();
    set.load("fi_ok").unwrap();

    // Symbol transfers ride the CI; the first one after arming fails with
    // the injected kind, crossing the virtio ring in the status page.
    plane.arm(FaultSite::CiOp.name(), FaultPlan::Nth(1));
    let err = set.set_symbol_u32(0, "knob", 7).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Injected, "{err}");
    // Transient by construction: the identical retry lands.
    set.set_symbol_u32(0, "knob", 7).expect("retry after injected CI fault");
    set.launch(2).expect("system usable after injected CI fault");
    let stats = plane.point_stats(FaultSite::CiOp.name()).unwrap();
    assert_eq!(stats.fired, 1);
    drop(set);
    drop(vm);
    sys.shutdown();
}

#[test]
fn out_of_bounds_kernel_faults_cleanly() {
    let driver = host();
    let (sys, vm) = vm_set(&driver);
    let mut set = DpuSet::alloc_vm(vm.frontends(), 4, CostModel::default()).unwrap();
    set.load("oob_kernel").unwrap();
    let err = set.launch(2).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::Fault);
    assert!(matches!(
        err,
        SdkError::Vpim(vpim::VpimError::Sim(upmem_sim::SimError::Fault(_)))
    ));
    drop(set);
    drop(vm);
    sys.shutdown();
}

#[test]
fn wram_exhaustion_faults_cleanly() {
    let driver = host();
    let (sys, vm) = vm_set(&driver);
    let mut set = DpuSet::alloc_vm(vm.frontends(), 4, CostModel::default()).unwrap();
    set.load("wram_hog").unwrap();
    // 16 tasklets x 8 KiB > 64 KiB WRAM; the kernel surfaces the overflow
    // as a DPU fault.
    assert_eq!(set.launch(16).unwrap_err().kind(), ErrorKind::Fault);
    // 4 tasklets fit.
    set.launch(4).expect("within wram budget");
    drop(set);
    drop(vm);
    sys.shutdown();
}

#[test]
fn unknown_kernel_name_is_a_typed_error_on_both_transports() {
    let driver = host();
    {
        let mut set = DpuSet::alloc_native(&driver, 4, CostModel::default()).unwrap();
        let err = set.load("no_such_kernel").unwrap_err();
        assert_eq!(err.kind(), ErrorKind::NotFound);
        assert!(matches!(
            err,
            SdkError::Driver(upmem_driver::DriverError::Sim(
                upmem_sim::SimError::UnknownKernel(_)
            ))
        ));
    }
    let (sys, vm) = vm_set(&driver);
    let mut set = DpuSet::alloc_vm(vm.frontends(), 4, CostModel::default()).unwrap();
    // Over the virtio transport the structured cause is gone, but the kind
    // crosses the ring in the status page.
    assert_eq!(set.load("no_such_kernel").unwrap_err().kind(), ErrorKind::NotFound);
    drop(set);
    drop(vm);
    sys.shutdown();
}

#[test]
fn mram_overflow_writes_are_rejected_not_truncated() {
    let driver = host();
    let (sys, vm) = vm_set(&driver);
    let mut set = DpuSet::alloc_vm(vm.frontends(), 2, CostModel::default()).unwrap();
    let mram = set.mram_size();
    // The write is small, so the batch buffer absorbs it (write-back
    // semantics); the error surfaces when the batch flushes — here on the
    // next read.
    let deferred = set.copy_to_heap(0, mram - 4, &[0u8; 64]);
    let err = match deferred {
        Err(e) => e,
        Ok(()) => set
            .copy_from_heap(0, 0, 4)
            .expect_err("flush must surface the out-of-bounds write"),
    };
    assert_eq!(err.kind(), ErrorKind::OutOfBounds, "{err}");
    // Nothing landed at the tail.
    let tail = set.copy_from_heap(0, mram - 4, 4).unwrap();
    assert_eq!(tail, vec![0u8; 4]);
    drop(set);
    drop(vm);
    sys.shutdown();
}

#[test]
fn symbol_errors_cross_the_stack() {
    let driver = host();
    let (sys, vm) = vm_set(&driver);
    let mut set = DpuSet::alloc_vm(vm.frontends(), 2, CostModel::default()).unwrap();
    set.load("fi_ok").unwrap();
    // Unknown symbol.
    assert_eq!(set.set_symbol_u32(0, "missing", 1).unwrap_err().kind(), ErrorKind::NotFound);
    // Size mismatch (knob is 4 bytes; write 8).
    assert_eq!(
        set.set_symbol_u64(0, "knob", 1).unwrap_err().kind(),
        ErrorKind::InvalidInput
    );
    drop(set);
    drop(vm);
    sys.shutdown();
}

#[test]
fn launch_without_load_is_rejected() {
    let driver = host();
    let (sys, vm) = vm_set(&driver);
    let mut set = DpuSet::alloc_vm(vm.frontends(), 2, CostModel::default()).unwrap();
    assert_eq!(set.launch(8).unwrap_err().kind(), ErrorKind::Unavailable);
    drop(set);
    drop(vm);
    sys.shutdown();
}

#[test]
fn guest_memory_exhaustion_is_an_error_not_a_hang() {
    // A tiny VM cannot stage a huge transfer matrix; the frontend must
    // return an allocator error.
    let driver = host();
    let sys = VpimSystem::start(driver, VpimConfig::full(), StartOpts::default());
    let vm = sys
        .launch(TenantSpec::new("tiny").mem_mib(16)) // 16 MiB guest
        .unwrap();
    let mut set = DpuSet::alloc_vm(vm.frontends(), 8, CostModel::default()).unwrap();
    let too_big = vec![0u8; 4 << 20];
    let bufs: Vec<Vec<u8>> = (0..8).map(|_| too_big.clone()).collect();
    let err = set.push_to_heap(0, &bufs).unwrap_err();
    assert_eq!(err.kind(), ErrorKind::ResourceExhausted, "{err}");
    // Small transfers still work afterwards (no leaked pages from the
    // failed attempt).
    for _ in 0..4 {
        set.copy_to_heap(0, 0, &[1u8; 512]).unwrap();
    }
    drop(set);
    drop(vm);
    sys.shutdown();
}
