//! Differential property suite for `vpim::pheap` (no faults).
//!
//! The heap over real rank MRAM is compared against a pure in-memory
//! `BTreeMap` oracle under arbitrary alloc/write/read/free/persist
//! streams; after every operation the heap's own invariants (allocator
//! span disjointness, free-list byte conservation, resident window
//! never over budget) are checked, and at the end the heap is dropped
//! and recovered — twice — to prove WAL-replay idempotence.

use std::collections::BTreeMap;
use std::sync::Arc;

use proptest::prelude::*;
use upmem_driver::UpmemDriver;
use upmem_sim::{PimConfig, PimMachine};
use vpim::prelude::*;

fn host() -> Arc<UpmemDriver> {
    Arc::new(UpmemDriver::new(PimMachine::new(PimConfig::small())))
}

fn system(parallel: bool) -> (VpimSystem, VpimVm) {
    let vcfg = VpimConfig::builder().parallel(parallel).build();
    let sys = VpimSystem::start(host(), vcfg, StartOpts::default());
    let vm = sys.launch(TenantSpec::new("pheap")).unwrap();
    (sys, vm)
}

/// Geometry that fits `PimConfig::small()`'s 1 MiB banks, with a budget
/// small enough that op streams actually exercise eviction and the
/// automatic persist path.
fn opts(sys: &VpimSystem) -> PheapOptions {
    PheapOptions::new()
        .base(64 << 10)
        .wal_size(16 << 10)
        .root_size(8 << 10)
        .data_size(64 << 10)
        .resident_budget(4 << 10)
        .attach(sys)
}

fn pattern(id: u64, off: u64, salt: u64, len: usize) -> Vec<u8> {
    (0..len as u64)
        .map(|i| {
            let x = (id << 40) ^ ((off + i) << 8) ^ salt.wrapping_mul(0x9e37_79b9);
            (x.wrapping_mul(2_654_435_761) >> 13) as u8
        })
        .collect()
}

/// One decoded op of the stream. `sel` picks a live object, `off`/`len`
/// a span inside it (both wrapped to stay in range).
#[derive(Debug, Clone, Copy)]
enum Op {
    Alloc { len: u64 },
    Write { sel: u64, off: u64, len: u64 },
    Read { sel: u64, off: u64, len: u64 },
    Free { sel: u64 },
    PinCycle { sel: u64 },
    Persist,
}

fn decode(kind: u8, sel: u64, off: u64, len: u64) -> Op {
    match kind {
        0 => Op::Alloc { len: 1 + len * 13 % 1500 },
        1 | 2 | 3 => Op::Write { sel, off, len },
        4 => Op::Read { sel, off, len },
        5 => Op::Free { sel },
        6 => Op::PinCycle { sel },
        _ => Op::Persist,
    }
}

/// Applies one op to heap + oracle, asserting agreement. Returns the
/// failure description for `prop_assert!`-style reporting.
fn apply(
    heap: &mut Pheap,
    model: &mut BTreeMap<u64, Vec<u8>>,
    op: Op,
    salt: u64,
) -> Result<(), String> {
    match op {
        Op::Alloc { len } => match heap.alloc(len) {
            Ok(id) => {
                model.insert(id, vec![0; len as usize]);
            }
            // Data-region exhaustion is legal under arbitrary streams;
            // the oracle simply skips the op.
            Err(VpimError::BadRequest(_)) => {}
            Err(e) => return Err(format!("alloc({len}) failed unexpectedly: {e}")),
        },
        Op::Write { sel, off, len } => {
            let Some(&id) = model.keys().nth(sel as usize % model.len().max(1)) else {
                return Ok(());
            };
            let obj_len = model[&id].len() as u64;
            let off = off % obj_len;
            let len = (len % (obj_len - off)).max(1);
            let data = pattern(id, off, salt, len as usize);
            heap.write(id, off, &data).map_err(|e| format!("write({id}) failed: {e}"))?;
            model.get_mut(&id).expect("modeled")[off as usize..(off + len) as usize]
                .copy_from_slice(&data);
        }
        Op::Read { sel, off, len } => {
            let Some(&id) = model.keys().nth(sel as usize % model.len().max(1)) else {
                return Ok(());
            };
            let obj_len = model[&id].len() as u64;
            let off = off % obj_len;
            let len = (len % (obj_len - off)).max(1);
            let got =
                heap.read(id, off, len).map_err(|e| format!("read({id}) failed: {e}"))?;
            let want = &model[&id][off as usize..(off + len) as usize];
            if got != want {
                return Err(format!("read({id}, {off}, {len}) diverged from the oracle"));
            }
        }
        Op::Free { sel } => {
            let Some(&id) = model.keys().nth(sel as usize % model.len().max(1)) else {
                return Ok(());
            };
            heap.free(id).map_err(|e| format!("free({id}) failed: {e}"))?;
            model.remove(&id);
        }
        Op::PinCycle { sel } => {
            let Some(&id) = model.keys().nth(sel as usize % model.len().max(1)) else {
                return Ok(());
            };
            match heap.pin(id) {
                Ok(()) => {
                    // A pinned object is resident and refuses to be freed.
                    if !matches!(heap.free(id), Err(VpimError::BadRequest(_))) {
                        return Err(format!("free({id}) succeeded while pinned"));
                    }
                    heap.unpin(id).map_err(|e| format!("unpin({id}): {e}"))?;
                }
                // The window can legally be too full of dirty bytes.
                Err(VpimError::BadRequest(_)) => {}
                Err(e) => return Err(format!("pin({id}) failed unexpectedly: {e}")),
            }
        }
        Op::Persist => {
            heap.persist().map_err(|e| format!("persist failed: {e}"))?;
        }
    }
    heap.check_invariants()?;
    if heap.resident_bytes() > heap.resident_budget() {
        return Err("resident budget exceeded".to_string());
    }
    Ok(())
}

/// Reads back every object in full (committed view after a recover).
fn dump(heap: &mut Pheap) -> BTreeMap<u64, Vec<u8>> {
    heap.ids()
        .into_iter()
        .map(|id| {
            let len = heap.len_of(id).unwrap();
            (id, heap.read(id, 0, len).unwrap())
        })
        .collect()
}

proptest! {
    /// The tentpole differential property: heap ≡ oracle under arbitrary
    /// op streams, invariants hold after every op, and after a final
    /// persist the heap survives recovery with bit-exact contents —
    /// recovering twice being identical to recovering once.
    #[test]
    fn pheap_matches_oracle_and_recovery_is_idempotent(
        ops in proptest::collection::vec((0u8..8, any::<u64>(), 0u64..2048, 1u64..256), 1..40),
        salt in any::<u64>(),
    ) {
        let (sys, vm) = system(false);
        let mut heap = Pheap::format(vm.frontend(0).clone(), opts(&sys)).unwrap();
        let mut model: BTreeMap<u64, Vec<u8>> = BTreeMap::new();
        for &(kind, sel, off, len) in &ops {
            let op = decode(kind, sel, off, len);
            let outcome = apply(&mut heap, &mut model, op, salt);
            prop_assert!(outcome.is_ok(), "op {op:?}: {outcome:?}");
        }
        heap.persist().unwrap();
        let persisted_seq = heap.applied_seq();
        drop(heap);

        // First recovery: bit-exact against the oracle.
        let (mut r1, rep1) = Pheap::recover(vm.frontend(0).clone(), opts(&sys)).unwrap();
        prop_assert_eq!(rep1.applied_seq, persisted_seq);
        prop_assert!(r1.check_invariants().is_ok());
        let d1 = dump(&mut r1);
        prop_assert_eq!(&d1, &model);
        drop(r1);

        // Second recovery: `recover(); recover()` ≡ `recover()`.
        let (mut r2, rep2) = Pheap::recover(vm.frontend(0).clone(), opts(&sys)).unwrap();
        prop_assert_eq!(rep2.applied_seq, persisted_seq);
        prop_assert!(!rep2.replayed, "nothing left to replay on the second recovery");
        prop_assert_eq!(dump(&mut r2), d1);
        drop(r2);
        drop(vm);
        sys.shutdown();
    }
}

/// A fixed rich stream runs bit-identically under Sequential and
/// Parallel dispatch (the heap's MRAM traffic is all virtual-time
/// scheduled), including the recovered image.
#[test]
fn dispatch_modes_agree_on_heap_state() {
    let mut per_mode = Vec::new();
    for parallel in [false, true] {
        let (sys, vm) = system(parallel);
        let mut heap = Pheap::format(vm.frontend(0).clone(), opts(&sys)).unwrap();
        let mut model = BTreeMap::new();
        for i in 0..60u64 {
            let op = decode((i % 8) as u8, i * 7, i * 129, 1 + i * 37 % 200);
            apply(&mut heap, &mut model, op, 0xD15).unwrap();
        }
        heap.persist().unwrap();
        drop(heap);
        let (mut rec, report) = Pheap::recover(vm.frontend(0).clone(), opts(&sys)).unwrap();
        per_mode.push((dump(&mut rec), report, model.clone()));
        drop(rec);
        drop(vm);
        sys.shutdown();
    }
    assert_eq!(per_mode[0], per_mode[1], "dispatch modes must agree bit-for-bit");
    assert_eq!(per_mode[0].0, per_mode[0].2, "recovered image must equal the oracle");
}

/// The resident budget really bounds guest memory: a stream of writes
/// over many objects with a tiny budget forces automatic persists and
/// evictions without ever exceeding the window.
#[test]
fn tiny_budget_forces_auto_persists_within_bounds() {
    let (sys, vm) = system(false);
    let o = opts(&sys).resident_budget(1 << 10);
    let mut heap = Pheap::format(vm.frontend(0).clone(), o).unwrap();
    let ids: Vec<u64> = (0..8).map(|_| heap.alloc(256).unwrap()).collect();
    for round in 0..6u64 {
        for &id in &ids {
            let data = pattern(id, 0, round, 256);
            heap.write(id, 0, &data).unwrap();
            assert!(heap.dirty_bytes() <= 1 << 10);
            assert!(heap.resident_bytes() <= 1 << 10);
            heap.check_invariants().unwrap();
        }
    }
    // 8 × 256 B dirty per round can never fit a 1 KiB budget: the heap
    // must have persisted on its own.
    let snap = sys.registry().snapshot();
    assert!(snap.count("pheap.persists.auto") > 0, "{snap:?}");
    assert!(snap.count("pheap.cache.evictions") > 0, "{snap:?}");
    // And the data is still correct.
    for &id in &ids {
        assert_eq!(heap.read(id, 0, 256).unwrap(), pattern(id, 0, 5, 256));
    }
    drop(heap);
    drop(vm);
    sys.shutdown();
}
