//! Frontend optimization behaviour observed through the public stack:
//! batching flush triggers, prefetch validity rules, and the §4.1 memory
//! bound.

use std::sync::Arc;

use simkit::CostModel;
use upmem_driver::UpmemDriver;
use upmem_sdk::DpuSet;
use upmem_sim::{PimConfig, PimMachine};
use vpim::{StartOpts, TenantSpec, VpimConfig, VpimSystem};

fn stack() -> (VpimSystem, vpim::VpimVm) {
    let machine = PimMachine::new(PimConfig::small());
    microbench::Checksum::register(&machine);
    let driver = Arc::new(UpmemDriver::new(machine));
    let sys = VpimSystem::start(driver, VpimConfig::full(), StartOpts::default());
    let vm = sys.launch(TenantSpec::new("fb")).unwrap();
    (sys, vm)
}

#[test]
fn small_writes_are_absorbed_until_a_nonwrite_request() {
    let (sys, vm) = stack();
    let fe = vm.frontend(0).clone();
    let mut set = DpuSet::alloc_vm(vm.frontends(), 4, CostModel::default()).unwrap();
    let (_, flushes_before) = fe.batch_stats();
    let writes_before = vm.devices()[0]
        .backend()
        .counters()
        .writes
        .get();

    for i in 0..32u64 {
        set.copy_to_heap(0, i * 128, &[1u8; 128]).unwrap();
    }
    // Nothing reached the backend yet.
    let writes_mid = vm.devices()[0]
        .backend()
        .counters()
        .writes
        .get();
    assert_eq!(writes_mid, writes_before, "small writes must be buffered");

    // A read flushes the batch (§4.1: flush on any non-write request).
    let back = set.copy_from_heap(0, 0, 128).unwrap();
    assert_eq!(back, vec![1u8; 128]);
    let (appends, flushes) = fe.batch_stats();
    assert!(appends >= 32);
    assert!(flushes > flushes_before);
    drop(set);
    drop(vm);
    sys.shutdown();
}

#[test]
fn big_writes_bypass_the_batch_buffer() {
    let (sys, vm) = stack();
    let fe = vm.frontend(0).clone();
    let mut set = DpuSet::alloc_vm(vm.frontends(), 4, CostModel::default()).unwrap();
    let (appends_before, _) = fe.batch_stats();
    set.copy_to_heap(0, 0, &vec![2u8; 64 << 10]).unwrap();
    let (appends_after, _) = fe.batch_stats();
    assert_eq!(appends_after, appends_before, "a 64 KiB write must go direct");
    // And it is immediately visible.
    assert_eq!(set.copy_from_heap(0, 100, 8).unwrap(), vec![2u8; 8]);
    drop(set);
    drop(vm);
    sys.shutdown();
}

#[test]
fn prefetch_cache_is_invalidated_by_writes_and_launches() {
    let (sys, vm) = stack();
    let fe = vm.frontend(0).clone();
    let mut set = DpuSet::alloc_vm(vm.frontends(), 4, CostModel::default()).unwrap();
    set.load(microbench::Checksum::KERNEL).unwrap();
    set.broadcast_symbol_u32("nbytes", 4096).unwrap();
    set.copy_to_heap(0, 4096, &vec![3u8; 4096]).unwrap();

    // Populate the cache.
    let _ = set.copy_from_heap(0, 4096, 64).unwrap();
    let (h1, _) = fe.prefetch_stats();
    let _ = set.copy_from_heap(0, 4160, 64).unwrap();
    let (h2, _) = fe.prefetch_stats();
    assert!(h2 > h1, "second read of the segment must hit");

    // A write invalidates: the next read must miss (correctness: it must
    // also see the new data).
    set.copy_to_heap(0, 4096, &[9u8; 64]).unwrap();
    let back = set.copy_from_heap(0, 4096, 64).unwrap();
    assert_eq!(back, vec![9u8; 64]);

    // A launch invalidates too: the kernel's output must be observed.
    let _ = set.copy_from_heap(0, 0, 4).unwrap(); // repopulate result page
    set.launch(4).unwrap();
    let result = set.copy_from_heap(0, 0, 4).unwrap();
    let checksum = u32::from_le_bytes(result[..4].try_into().unwrap());
    // 64 bytes of 9 + 4032 bytes of 3 = expected sum of the current MRAM.
    assert_eq!(checksum, 64 * 9 + (4096 - 64) * 3);
    drop(set);
    drop(vm);
    sys.shutdown();
}

#[test]
fn frontend_reports_costs_for_every_operation() {
    let (sys, vm) = stack();
    let mut set = DpuSet::alloc_vm(vm.frontends(), 4, CostModel::default()).unwrap();
    let t0 = set.timeline().app_total();
    set.copy_to_heap(0, 0, &[1u8; 256]).unwrap();
    let t1 = set.timeline().app_total();
    assert!(t1 > t0, "even a batched write must cost virtual time");
    let _ = set.copy_from_heap(0, 0, 256).unwrap();
    let t2 = set.timeline().app_total();
    assert!(t2 > t1);
    drop(set);
    drop(vm);
    sys.shutdown();
}
