#!/usr/bin/env sh
# Concurrency stress gate: runs the stress and determinism suites in
# release mode, once with the test harness serialized and once with high
# harness parallelism, so intra-test thread races and cross-test
# interference both get a chance to surface.
#
# Usage: ci/stress-gate.sh
set -eu

cd "$(dirname "$0")/.."

for threads in 1 8; do
    echo "== stress gate: RUST_TEST_THREADS=$threads =="
    RUST_TEST_THREADS=$threads cargo test --release --offline -q \
        --test concurrency_stress --test dispatch_determinism
done

echo "== stress gate: OK =="
