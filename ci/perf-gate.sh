#!/usr/bin/env sh
# Zero-copy data-path gate: proves the pooled transfer path in release
# mode — payload integrity against the seed path's byte layout, PoolGuard
# drop balance (no leaked scratch buffers), deterministic zero-copy byte
# accounting, and an allocation-free steady state (pool hit rate >= 99%).
# Also compile-checks the criterion benches so the `datapath_zero_copy`
# comparison group (seed vs pooled, scalar vs vectorized) cannot rot.
#
# Usage: ci/perf-gate.sh
set -eu

cd "$(dirname "$0")/.."

echo "== perf gate: pooled data-path integrity + leak checks =="
cargo test --release --offline -q --test datapath_pool

echo "== perf gate: fused-interleave equivalence proptests =="
cargo test --release --offline -q -p upmem-sim interleave
cargo test --release --offline -q -p vpim datapath

echo "== perf gate: bench harness compiles =="
cargo bench --offline -p vpim-bench --no-run

echo "== perf gate: OK =="
