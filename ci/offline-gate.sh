#!/usr/bin/env sh
# Tier-1 gate, fully offline: the workspace must build and test without
# touching the network. Dependencies resolve from the checked-in `vendor/`
# shims via `.cargo/config.toml` ([net] offline = true); this script adds
# `--offline` explicitly so it also holds in environments with a different
# cargo config.
#
# Usage: ci/offline-gate.sh
set -eu

cd "$(dirname "$0")/.."

echo "== tier-1 offline gate: build (release) =="
cargo build --release --offline --workspace

echo "== tier-1 offline gate: test =="
cargo test --offline -q

echo "== tier-1 offline gate: OK =="
