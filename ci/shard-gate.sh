#!/usr/bin/env sh
# Shard gate: proves the sharded control plane (ISSUE 7) behaves exactly
# like its single-lock oracles and publishes the contention benchmark.
#
#   1. The oracle-backed differential suite (`control_plane_equivalence`)
#      and the exact-accounting churn suite (`shard_stress`), run under
#      serialized and highly parallel test harnesses;
#   2. a SHARD_SEED sweep of the stress suite (the seed varies every
#      per-thread op mix, so each value exercises different interleavings);
#   3. the `control_plane` criterion bench comparing the sharded table and
#      admission queue against the retained single-lock baselines at 8-64
#      threads; its JSON summary is published as BENCH_control_plane.json
#      at the repo root.
#
# The bench records wall-clock ratios on whatever machine runs the gate
# (single-CPU CI shows the lock-traffic win, not a parallelism win), so
# step 3 publishes the numbers instead of hard-failing on a threshold:
# the benchmark itself only rejects pathological slowdowns.
#
# Usage: ci/shard-gate.sh
set -eu

cd "$(dirname "$0")/.."

for threads in 1 8; do
    echo "== shard gate: RUST_TEST_THREADS=$threads =="
    RUST_TEST_THREADS=$threads cargo test --release --offline -q \
        --test control_plane_equivalence --test shard_stress
done

echo "== shard gate: SHARD_SEED sweep =="
for seed in 1 2 3 5 8 13 21 34; do
    echo "== shard gate: SHARD_SEED=$seed =="
    SHARD_SEED=$seed RUST_TEST_THREADS=8 cargo test --release --offline -q \
        --test shard_stress
done

echo "== shard gate: control-plane contention bench =="
OUT_DIR="${TMPDIR:-/tmp}"
BENCH_OUT="$OUT_DIR/vpim-control-plane-bench.json"
rm -f "$BENCH_OUT"
CONTROL_PLANE_BENCH_OUT="$BENCH_OUT" \
    cargo bench --offline -p vpim-bench --bench control_plane

cp "$BENCH_OUT" BENCH_control_plane.json
echo "== shard gate: OK (BENCH_control_plane.json refreshed) =="
