#!/usr/bin/env sh
# Chaos gate: runs the fault-injection suites in release mode, once with
# the test harness serialized and once with high harness parallelism, then
# sweeps the chaos suite across a seed matrix. The load-bearing assertions
# are (a) every injected fault surfaces as a typed error or is recovered
# transparently, (b) the system stays usable with bit-identical payloads
# afterwards, and (c) `inject.*` / `retry.*` telemetry totals are exact in
# both dispatch modes.
#
# Usage: ci/chaos-gate.sh
set -eu

cd "$(dirname "$0")/.."

for threads in 1 8; do
    echo "== chaos gate: RUST_TEST_THREADS=$threads =="
    RUST_TEST_THREADS=$threads cargo test --release --offline -q \
        --test chaos_suite --test retry_properties --test failure_injection
done

echo "== chaos gate: seed matrix =="
for seed in 1 2 3 5 8 13 21 34; do
    echo "== chaos gate: CHAOS_SEED=$seed =="
    CHAOS_SEED=$seed cargo test --release --offline -q --test chaos_suite
done

echo "== chaos gate: OK =="
