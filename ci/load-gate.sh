#!/usr/bin/env sh
# Load gate: the service-level benchmark every scalability PR regresses
# against. Proves, in release mode:
#   - the load-harness determinism suite (seed sweep across phase-A
#     execution modes and host dispatch modes, exact closed-loop totals,
#     the armed-fault chaos variant);
#   - the 1k-session smoke: >= 1000 tenant sessions concurrent in
#     virtual time, bit-identical LoadReport across dispatch modes, run
#     under RUST_TEST_THREADS=1 and =8 — the two canonical JSON reports
#     must compare byte for byte;
#   - on success the report is published as BENCH_load.json at the repo
#     root (the regression trajectory).
#
# Usage: ci/load-gate.sh
set -eu

cd "$(dirname "$0")/.."

echo "== load gate: harness determinism suite =="
cargo test --release --offline -q --test load_harness

OUT_DIR="${TMPDIR:-/tmp}"
T1="$OUT_DIR/vpim-load-t1.json"
T8="$OUT_DIR/vpim-load-t8.json"
rm -f "$T1" "$T8"

echo "== load gate: 1k-session smoke (RUST_TEST_THREADS=1) =="
LOAD_REPORT_OUT="$T1" RUST_TEST_THREADS=1 \
    cargo test --release --offline -q --test load_harness -- \
    --include-ignored thousand_concurrent_sessions_smoke

echo "== load gate: 1k-session smoke (RUST_TEST_THREADS=8) =="
LOAD_REPORT_OUT="$T8" RUST_TEST_THREADS=8 \
    cargo test --release --offline -q --test load_harness -- \
    --include-ignored thousand_concurrent_sessions_smoke

echo "== load gate: cross-thread-count bit-identity =="
cmp "$T1" "$T8"

cp "$T1" BENCH_load.json
echo "== load gate: OK (BENCH_load.json refreshed) =="
