#!/usr/bin/env sh
# Cluster gate: proves the fleet plane and live rank migration (ISSUE 8)
# are deterministic and publishes the consolidation benchmark.
#
#   1. The migration suite (`cluster_migration`: bit-identity across
#      dispatch modes, pre-copy downtime, fault rollback, the 8-seed
#      chaos sweep and the placement proptest), run under serialized
#      and highly parallel test harnesses — virtual-time results must
#      not depend on harness scheduling;
#   2. the `cluster` criterion bench climbing the consolidation ladder
#      for fleets of 1, 2 and 4 hosts at a fixed p99 sojourn bound; the
#      bench itself asserts the curve is monotone (more hosts never
#      sustain fewer sessions) and its JSON summary is published as
#      BENCH_cluster.json at the repo root.
#
# Usage: ci/cluster-gate.sh
set -eu

cd "$(dirname "$0")/.."

for threads in 1 8; do
    echo "== cluster gate: RUST_TEST_THREADS=$threads =="
    RUST_TEST_THREADS=$threads cargo test --release --offline -q \
        --test cluster_migration
done

echo "== cluster gate: consolidation bench (1 vs 2 vs 4 hosts) =="
OUT_DIR="${TMPDIR:-/tmp}"
BENCH_OUT="$OUT_DIR/vpim-cluster-bench.json"
rm -f "$BENCH_OUT"
CLUSTER_BENCH_OUT="$BENCH_OUT" \
    cargo bench --offline -p vpim-bench --bench cluster

cp "$BENCH_OUT" BENCH_cluster.json
echo "== cluster gate: OK (BENCH_cluster.json refreshed) =="
