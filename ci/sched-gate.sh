#!/usr/bin/env sh
# Scheduler gate: runs the oversubscription stress suite and the sched
# property suite in release mode, once with the test harness serialized
# and once with high harness parallelism. The load-bearing assertion is
# bit-identity: 8 VMs time-shared over 4 ranks must read back exactly the
# bytes a dedicated 8-rank run produces, under constant checkpoint /
# restore churn, in both dispatch modes.
#
# Usage: ci/sched-gate.sh
set -eu

cd "$(dirname "$0")/.."

for threads in 1 8; do
    echo "== sched gate: RUST_TEST_THREADS=$threads =="
    RUST_TEST_THREADS=$threads cargo test --release --offline -q \
        --test oversubscription --test sched_properties
done

echo "== sched gate: OK =="
