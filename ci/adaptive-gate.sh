#!/usr/bin/env sh
# Adaptive-frontend gate (DESIGN.md §16): proves the feedback controller
# closes the telemetry loop without breaking determinism, in release mode:
#
#   1. The adapt determinism suite (`adapt_determinism`: bit-identical
#      payloads, per-request reports and frontend.adapt.* telemetry across
#      Sequential/Parallel dispatch, plus the policy-machine proptests);
#   2. the canonical run's JSON report under RUST_TEST_THREADS=1 and =8 —
#      the two files must compare byte for byte (harness scheduling must
#      not reach virtual time);
#   3. the static-vs-adaptive ablation (`figures adaptive`): RED's
#      Inter-DPU gather and HST-S's DPU->CPU readout must improve >= 2x,
#      checksum / index-search / GEMV must stay within 5% (the asserts
#      live in the experiment itself);
#   4. on success the ablation is published as BENCH_adaptive.json at the
#      repo root (the regression trajectory).
#
# Usage: ci/adaptive-gate.sh
set -eu

cd "$(dirname "$0")/.."

echo "== adaptive gate: determinism suite =="
cargo test --release --offline -q --test adapt_determinism

OUT_DIR="${TMPDIR:-/tmp}"
T1="$OUT_DIR/vpim-adapt-t1.json"
T8="$OUT_DIR/vpim-adapt-t8.json"
rm -f "$T1" "$T8"

echo "== adaptive gate: canonical report (RUST_TEST_THREADS=1) =="
ADAPT_REPORT_OUT="$T1" RUST_TEST_THREADS=1 \
    cargo test --release --offline -q --test adapt_determinism -- \
    canonical_adapt_report

echo "== adaptive gate: canonical report (RUST_TEST_THREADS=8) =="
ADAPT_REPORT_OUT="$T8" RUST_TEST_THREADS=8 \
    cargo test --release --offline -q --test adapt_determinism -- \
    canonical_adapt_report

echo "== adaptive gate: cross-thread-count bit-identity =="
cmp "$T1" "$T8"

echo "== adaptive gate: static-vs-adaptive ablation =="
BENCH_OUT="$OUT_DIR/vpim-adaptive-bench.json"
rm -f "$BENCH_OUT"
cargo build --release --offline -p vpim-bench
ADAPTIVE_BENCH_OUT="$BENCH_OUT" ./target/release/figures adaptive

cp "$BENCH_OUT" BENCH_adaptive.json
echo "== adaptive gate: OK (BENCH_adaptive.json refreshed) =="
