#!/usr/bin/env sh
# Persistent-heap gate (DESIGN.md §17): proves vpim::pheap's crash
# consistency — crash anywhere, restore, recover, and the heap is exactly
# the committed prefix — in release mode:
#
#   1. The pheap suites (`pheap_properties`: differential proptest vs a
#      BTreeMap oracle, allocator invariants, recovery idempotence;
#      `pheap_crash`: op streams x fault schedules x dispatch modes vs a
#      committed-prefix oracle; `rank_checkpoint`: the uncommitted-WAL-tail
#      snapshot/restore regression) under RUST_TEST_THREADS=1 and =8 —
#      harness scheduling must not reach recovered state;
#   2. an 8-seed CHAOS_SEED sweep over the chaos suite's pheap tests
#      (exact injection totals, bit-identical recovery across modes, the
#      crash matrix);
#   3. the durability bench (`figures pheap`): lossless repair-free
#      recovery, bit-identical state *and* virtual-time costs across
#      dispatch modes (the asserts live in the experiment itself);
#   4. on success the bench is published as BENCH_pheap.json at the repo
#      root (the regression trajectory).
#
# Usage: ci/pheap-gate.sh
set -eu

cd "$(dirname "$0")/.."

echo "== pheap gate: crash-consistency suites (RUST_TEST_THREADS=1) =="
RUST_TEST_THREADS=1 cargo test --release --offline -q \
    --test pheap_properties --test pheap_crash --test rank_checkpoint

echo "== pheap gate: crash-consistency suites (RUST_TEST_THREADS=8) =="
RUST_TEST_THREADS=8 cargo test --release --offline -q \
    --test pheap_properties --test pheap_crash --test rank_checkpoint

echo "== pheap gate: 8-seed chaos sweep =="
for seed in 3 17 111 1009 4242 31337 77777 900001; do
    echo "-- CHAOS_SEED=$seed"
    CHAOS_SEED=$seed cargo test --release --offline -q --test chaos_suite -- pheap
done

echo "== pheap gate: durability bench =="
OUT_DIR="${TMPDIR:-/tmp}"
BENCH_OUT="$OUT_DIR/vpim-pheap-bench.json"
rm -f "$BENCH_OUT"
cargo build --release --offline -p vpim-bench
PHEAP_BENCH_OUT="$BENCH_OUT" ./target/release/figures pheap

cp "$BENCH_OUT" BENCH_pheap.json
echo "== pheap gate: OK (BENCH_pheap.json refreshed) =="
