//! # vpim-system — workspace umbrella for the vPIM reproduction
//!
//! This crate hosts the cross-crate integration tests (`tests/`) and the
//! runnable examples (`examples/`). The substance lives in the member
//! crates:
//!
//! * [`upmem_sim`] — the UPMEM hardware simulator,
//! * [`upmem_driver`] — the host kernel driver model,
//! * [`pim_virtio`] / [`pim_vmm`] — the virtio + Firecracker substrate,
//! * [`vpim`] — the paper's contribution (frontend, backend, manager),
//! * [`upmem_sdk`] — the host SDK mirror,
//! * [`prim`] / [`microbench`] — the evaluation workloads.

pub mod loadmix;

pub use microbench;
pub use pim_virtio;
pub use pim_vmm;
pub use prim;
pub use simkit;
pub use upmem_driver;
pub use upmem_sdk;
pub use upmem_sim;
pub use vpim;
