//! Concrete tenant mixes for the load harness ([`vpim::load`]).
//!
//! The harness itself is workload-agnostic; this module binds it to the
//! evaluation workloads: sessions scripted from the PrIM applications
//! (through [`prim::run_on_vm`]) and the UPIS phrase search (through
//! [`microbench::IndexSearch::run_vm`], at the paper's full 445-query
//! scale in [`paper_mix`]). It lives in the umbrella crate because `prim`
//! and `microbench` already depend on `vpim` — defining the mixes here
//! keeps the dependency graph acyclic.
//!
//! Use [`register_workloads`] on the machine before `VpimSystem::start`,
//! then hand a mix to `LoadHarness::run`.

use std::sync::Arc;

use microbench::{IndexSearch, IndexSearchParams};
use prim::ScaleParams;
use upmem_sdk::SdkError;
use upmem_sim::{PimConfig, PimMachine};
use vpim::load::{OpOutcome, TenantMix, TenantOp, TenantProfile};
use vpim::{Pheap, PheapOptions, TenantSpec, VpimError};

/// Registers every kernel the mixes need (all 16 PrIM applications plus
/// the UPIS index-search kernel). Call before starting the system.
pub fn register_workloads(machine: &PimMachine) {
    prim::register_all(machine);
    IndexSearch::register(machine);
}

/// A host geometry sized for the mixes: `ranks` ranks of 16 DPUs with
/// full 64 MB MRAM banks (the UPIS index needs real bank capacity;
/// `MramBank` is sparse, so unused space costs nothing).
#[must_use]
pub fn load_host_config(ranks: usize) -> PimConfig {
    PimConfig {
        ranks,
        functional_dpus: vec![16; ranks],
        ..PimConfig::default()
    }
}

/// Maps SDK-level failures into the harness's error type. vPIM-originated
/// errors pass through untouched so the session retry/giveup logic still
/// sees `NoRankAvailable` & co.; pure SDK errors (sizing, verification)
/// become `BadRequest`.
fn to_vpim(e: SdkError) -> VpimError {
    match e {
        SdkError::Vpim(v) => v,
        other => VpimError::BadRequest(other.to_string()),
    }
}

/// A [`TenantOp`] running PrIM application `name` over `nr_dpus` DPUs at
/// `scale`. The op's report key is `prim.<name>`.
///
/// # Panics
///
/// Panics when `name` is not in [`prim::catalog`].
#[must_use]
pub fn prim_op(name: &str, nr_dpus: usize, scale: ScaleParams) -> TenantOp {
    let app = prim::by_name(name).unwrap_or_else(|| panic!("unknown PrIM app {name}"));
    TenantOp::new(
        format!("prim.{}", name.to_ascii_lowercase()),
        Arc::new(move |vm, seed| {
            let run =
                prim::run_on_vm(&*app, vm.frontends(), nr_dpus, &scale, seed).map_err(to_vpim)?;
            Ok(OpOutcome::new(run.cost, run.app.checksum))
        }),
    )
}

/// A [`TenantOp`] running the UPIS phrase search over `nr_dpus` DPUs at
/// `params` scale. The checksum folds the verified flag and total hits so
/// a wrong answer anywhere poisons the report checksum.
#[must_use]
pub fn upis_op(nr_dpus: usize, params: IndexSearchParams) -> TenantOp {
    TenantOp::new(
        "upis.search",
        Arc::new(move |vm, seed| {
            let (run, cost) =
                IndexSearch::run_vm(vm.frontends(), nr_dpus, &params, seed).map_err(to_vpim)?;
            let checksum = (run.total_hits as u64) << 1 | u64::from(run.verified);
            Ok(OpOutcome::new(cost, checksum))
        }),
    )
}

/// The seeded value of KV entry `i` for an episode keyed by `seed`.
fn kv_value(seed: u64, i: usize, len: usize) -> Vec<u8> {
    (0..len)
        .map(|j| {
            let x = seed ^ ((i as u64) << 32) ^ (j as u64).wrapping_mul(0x9e37_79b9);
            (x.wrapping_mul(2_654_435_761) >> 11) as u8
        })
        .collect()
}

fn fold_bytes(acc: u64, bytes: &[u8]) -> u64 {
    bytes.iter().fold(acc, |h, &b| (h ^ u64::from(b)).wrapping_mul(0x100_0000_01b3))
}

/// A [`TenantOp`] running one persistent-KV episode over [`vpim::pheap`]:
/// format a heap in the tenant's rank MRAM, insert `entries` values of
/// `value_len` bytes derived from the op seed (persisting every third
/// insert and once at the end), drop the handle as a simulated crash,
/// [`Pheap::recover`], and verify every committed value bit-exactly. The
/// checksum folds all recovered bytes plus the recovery report, so data
/// loss, leakage, or a replay divergence anywhere poisons the session
/// report; the cost is the heap's accumulated virtual-time MRAM traffic.
/// With `pheap.wal.torn`/`pheap.persist.drop` armed, the persist calls
/// fail typed (keyed purely by transaction sequence) and the episode
/// surfaces as a deterministic op failure. The report key is `pheap.kv`.
#[must_use]
pub fn pheap_kv_op(opts: PheapOptions, entries: usize, value_len: usize) -> TenantOp {
    TenantOp::new(
        "pheap.kv",
        Arc::new(move |vm, seed| {
            let front = vm.frontend(0).clone();
            let mut heap = Pheap::format(front.clone(), opts.clone())?;
            let mut ids = Vec::with_capacity(entries);
            for i in 0..entries {
                let id = heap.alloc(value_len as u64)?;
                heap.write(id, 0, &kv_value(seed, i, value_len))?;
                ids.push(id);
                if i % 3 == 2 {
                    heap.persist()?;
                }
            }
            heap.persist()?;
            let mut cost = heap.drain_cost();
            drop(heap); // crash: the resident window dies with the guest

            let (mut rec, report) = Pheap::recover(front, opts.clone())?;
            let mut checksum = 0xcbf2_9ce4_8422_2325u64;
            for (i, &id) in ids.iter().enumerate() {
                let got = rec.read(id, 0, value_len as u64)?;
                if got != kv_value(seed, i, value_len) {
                    return Err(VpimError::BadRequest(format!(
                        "pheap.kv: recovered value {i} diverged from the committed write"
                    )));
                }
                checksum = fold_bytes(checksum, &got);
            }
            checksum ^= (report.applied_seq << 1) | u64::from(report.replayed);
            cost += rec.drain_cost();
            Ok(OpOutcome::new(cost, checksum))
        }),
    )
}

/// A persistent-KV tenant: sessions run one [`pheap_kv_op`] episode at a
/// size that exercises multiple WAL transactions per episode.
#[must_use]
pub fn pheap_kv_profile(opts: PheapOptions) -> TenantProfile {
    TenantProfile::new("pheap-kv", TenantSpec::new("pheap-kv").mem_mib(16))
        .op(pheap_kv_op(opts, 12, 512))
        .think_mean_ns(2_500)
        .weight(2)
}

/// The PrIM-derived session mix at the given scale, following the suite's
/// domain spread (Gómez-Luna et al.): dense linear algebra dominates,
/// with analytics, search and parallel-primitive tenants behind it.
#[must_use]
pub fn prim_mix(nr_dpus: usize, scale: ScaleParams) -> TenantMix {
    TenantMix::new()
        .profile(
            TenantProfile::new("linalg", TenantSpec::new("linalg").mem_mib(16))
                .op(prim_op("va", nr_dpus, scale))
                .op(prim_op("gemv", nr_dpus, scale))
                .think_mean_ns(2_000)
                .weight(4),
        )
        .profile(
            TenantProfile::new("analytics", TenantSpec::new("analytics").mem_mib(16))
                .op(prim_op("red", nr_dpus, scale))
                .op(prim_op("hst-s", nr_dpus, scale))
                .think_mean_ns(3_000)
                .weight(3),
        )
        .profile(
            TenantProfile::new("search", TenantSpec::new("search").mem_mib(16))
                .op(prim_op("bs", nr_dpus, scale))
                .op(prim_op("ts", nr_dpus, scale))
                .think_mean_ns(1_500)
                .weight(2),
        )
}

/// The full evaluation mix: the PrIM spread at benchmark scale plus an
/// occasional UPIS tenant at the paper's full 445-query scale. Meant for
/// the offline figure harness, not the CI gate — one UPIS session costs
/// real wall-clock time.
#[must_use]
pub fn paper_mix(nr_dpus: usize) -> TenantMix {
    prim_mix(nr_dpus, ScaleParams::default_bench()).profile(
        TenantProfile::new("upis", TenantSpec::new("upis").mem_mib(128))
            .op(upis_op(nr_dpus, IndexSearchParams::paper()))
            .think_mean_ns(10_000),
    )
}

/// The CI smoke mix: the same session shapes at test scale (tiny PrIM
/// problems, the small UPIS corpus) so a thousand sessions finish in CI
/// time while still exercising every code path the paper mix does.
#[must_use]
pub fn smoke_mix(nr_dpus: usize) -> TenantMix {
    prim_mix(nr_dpus, ScaleParams::tiny()).profile(
        TenantProfile::new("upis", TenantSpec::new("upis").mem_mib(16))
            .op(upis_op(nr_dpus, IndexSearchParams::small()))
            .think_mean_ns(5_000),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use upmem_driver::UpmemDriver;
    use vpim::load::{Arrival, Execution, LoadHarness, LoadSpec};
    use vpim::{StartOpts, VpimConfig, VpimSystem};

    fn host(ranks: usize) -> Arc<VpimSystem> {
        let machine = PimMachine::new(load_host_config(ranks));
        register_workloads(&machine);
        Arc::new(VpimSystem::start(
            Arc::new(UpmemDriver::new(machine)),
            VpimConfig::full(),
            StartOpts::default(),
        ))
    }

    #[test]
    fn smoke_mix_runs_and_is_deterministic_across_modes() {
        let spec = LoadSpec::new(11, 8).arrival(Arrival::Poisson { mean_gap_ns: 5_000 });
        let a = LoadHarness::run(
            &host(2),
            &spec.execution(Execution::Sequential),
            &smoke_mix(4),
        );
        let b = LoadHarness::run(&host(2), &spec.execution(Execution::Pooled), &smoke_mix(4));
        assert_eq!(a, b);
        assert_eq!(a.completed, 8);
        assert_eq!(a.op_failures, 0, "workloads must verify: {a:?}");
        assert!(a.checksum != 0);
    }

    #[test]
    fn paper_upis_session_verifies_at_full_scale() {
        let sys = host(1);
        let vm = sys.launch(TenantSpec::new("upis-full").mem_mib(128)).unwrap();
        let op = upis_op(16, IndexSearchParams::paper());
        let out = op.run(&vm, 7).expect("full-scale UPIS run");
        assert_eq!(out.checksum & 1, 1, "paper-scale search must verify");
        assert!(out.cost > simkit::VirtualNanos::ZERO);
        drop(vm);
    }
}
